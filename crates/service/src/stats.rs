//! Live telemetry: the windowed stats hub behind `Service::stats_snapshot`,
//! `ma-cli serve --stats-every` and `ma-cli top`.
//!
//! [`StatsHub`] aggregates three kinds of live state, all driven by the
//! logical [`TelemetryClock`](crate::clock::TelemetryClock) so two runs
//! with the same seed produce byte-identical stats streams:
//!
//! * **Pipeline stages** — every job flows admit → queue → pilot → walk →
//!   estimate → settle, and each stage owns a rotating
//!   [`WindowedHistogram`] of its latencies. Admit/queue/settle are
//!   recorded directly by the engine; pilot/walk/estimate are correlated
//!   from the `pilot`, `tarw_instance` and `estimate` trace spans by
//!   [`StatsHub::observe`].
//! * **Conserved counters** — submissions, outcomes, charges, cache
//!   traffic and samples, tracked as cumulative totals plus a
//!   per-emission delta. Every `stats`/`window` event carries both
//!   (`d_*` and `t_*`), and the deltas telescope: summed over all window
//!   events in a stream they equal the final totals. `ma-verify
//!   --check stats-conservation` audits exactly that.
//! * **Per-query convergence** — running charge/step progress from
//!   checkpoint events, the latest Geweke z-score, and on settlement the
//!   final estimate with its 95% CI half-width per charged call.
//!
//! Emissions flow through the ordinary [`Tracer`] as `Category::Stats`
//! events (`window`, `gauges`, `query` — part of the closed
//! `microblog_obs::schema` vocabulary), so a stats stream is itself a
//! legal trace. [`StatsSink`] splits the event flow: stats events are
//! rendered to the configured writer as JSONL, everything else feeds
//! back into the hub for span correlation (and optionally forwards to an
//! inner sink for full-trace capture).

use crate::metrics::JobMetrics;
use microblog_analyzer::Estimate;
use microblog_obs::window::{percentile, WindowedHistogram, WindowedSeries};
use microblog_obs::{to_json_line, Category, EventKind, FieldValue, TraceEvent, TraceSink, Tracer};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

/// The pipeline stages a job is attributed to, in flow order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Admission control: quota reservation + journaling in `submit`.
    Admit,
    /// Queued, waiting for a free worker.
    Queue,
    /// Pilot walks selecting the MA-TARW interval (the `pilot` span).
    Pilot,
    /// Random-walk instances (the `tarw_instance` span).
    Walk,
    /// The whole estimator run (the `estimate` span).
    Estimate,
    /// Settlement: quota refund, journaling, outcome publication.
    Settle,
}

impl Stage {
    /// Number of stages; sizes per-stage arrays.
    pub const COUNT: usize = 6;

    /// All stages, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Admit,
        Stage::Queue,
        Stage::Pilot,
        Stage::Walk,
        Stage::Estimate,
        Stage::Settle,
    ];

    /// Stable index into per-stage arrays.
    pub fn index(self) -> usize {
        match self {
            Stage::Admit => 0,
            Stage::Queue => 1,
            Stage::Pilot => 2,
            Stage::Walk => 3,
            Stage::Estimate => 4,
            Stage::Settle => 5,
        }
    }

    /// Short lowercase name used in snapshots and the dashboard.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Admit => "admit",
            Stage::Queue => "queue",
            Stage::Pilot => "pilot",
            Stage::Walk => "walk",
            Stage::Estimate => "estimate",
            Stage::Settle => "settle",
        }
    }
}

/// Number of conserved counters carried by every `window` event.
pub const CONSERVED_COUNT: usize = 11;

/// Conserved counter names, in emission order. The list lives in
/// [`microblog_obs::schema`] so `ma-verify` audits the same vocabulary
/// this hub emits.
pub const CONSERVED_KEYS: [&str; CONSERVED_COUNT] = microblog_obs::schema::STATS_CONSERVED_KEYS;

/// Field names of the per-emission deltas (`d_*`), aligned with
/// [`CONSERVED_KEYS`].
pub const CONSERVED_DELTA_KEYS: [&str; CONSERVED_COUNT] = [
    "d_jobs_submitted",
    "d_jobs_succeeded",
    "d_jobs_degraded",
    "d_jobs_failed",
    "d_charged_calls",
    "d_refunded_calls",
    "d_actual_calls",
    "d_local_hits",
    "d_shared_hits",
    "d_cache_misses",
    "d_walk_samples",
];

/// Field names of the cumulative totals (`t_*`), aligned with
/// [`CONSERVED_KEYS`].
pub const CONSERVED_TOTAL_KEYS: [&str; CONSERVED_COUNT] = [
    "t_jobs_submitted",
    "t_jobs_succeeded",
    "t_jobs_degraded",
    "t_jobs_failed",
    "t_charged_calls",
    "t_refunded_calls",
    "t_actual_calls",
    "t_local_hits",
    "t_shared_hits",
    "t_cache_misses",
    "t_walk_samples",
];

const C_SUBMITTED: usize = 0;
const C_SUCCEEDED: usize = 1;
const C_DEGRADED: usize = 2;
const C_FAILED: usize = 3;
const C_CHARGED: usize = 4;
const C_REFUNDED: usize = 5;
const C_ACTUAL: usize = 6;
const C_LOCAL_HITS: usize = 7;
const C_SHARED_HITS: usize = 8;
const C_MISSES: usize = 9;
const C_SAMPLES: usize = 10;

/// Windowing layout of a [`StatsHub`].
#[derive(Clone, Copy, Debug)]
pub struct StatsConfig {
    /// Width of one window in telemetry-clock ticks (logical µs).
    pub window_ticks: u64,
    /// Windows retained per series/histogram.
    pub retain: usize,
}

impl Default for StatsConfig {
    fn default() -> Self {
        StatsConfig {
            window_ticks: microblog_obs::window::DEFAULT_WINDOW_TICKS,
            retain: microblog_obs::window::DEFAULT_RETAIN,
        }
    }
}

/// Instantaneous operational gauges, sampled by the engine at emission
/// time and attached to every `gauges` event.
#[derive(Clone, Copy, Debug, Default)]
pub struct GaugeReading {
    /// Calls settled against the global quota.
    pub quota_consumed: u64,
    /// Calls reserved by admitted-but-unsettled jobs.
    pub quota_reserved: u64,
    /// Uncommitted calls left (`None` = unlimited quota).
    pub quota_remaining: Option<u64>,
    /// Jobs admitted but not yet settled.
    pub inflight: u64,
    /// Circuit-breaker open transitions, service-wide.
    pub breaker_opens: u64,
    /// Calls refused fast by an open breaker, service-wide.
    pub breaker_fast_fails: u64,
    /// Coalesced-miss flights led (backend fetches performed).
    pub coalesce_leads: u64,
    /// Requests that parked on an in-flight fetch.
    pub coalesce_waits: u64,
    /// Flights aborted after a failed fetch.
    pub coalesce_aborts: u64,
    /// Most requesters ever coalesced onto one flight.
    pub coalesce_peak_inflight: u64,
    /// Fetch-pipeline keys accepted for prefetch (0 with the pipeline
    /// off).
    pub sched_announced: u64,
    /// Fetch-pipeline backend calls issued by prefetcher threads.
    pub sched_prefetched: u64,
    /// Walker fetches served from a completed prefetch.
    pub sched_hits: u64,
    /// Walker fetches that parked on an in-flight prefetch.
    pub sched_waits: u64,
    /// Queued keys the walker claimed and fetched inline.
    pub sched_claimed: u64,
    /// Announced keys abandoned by walk-ending breaks (rolled back on
    /// the fault schedule).
    pub sched_stranded: u64,
    /// Most prefetches ever in flight at once on one worker.
    pub sched_peak_inflight: u64,
}

/// Live convergence state of one query.
#[derive(Clone, Debug, Default)]
pub struct QueryStats {
    /// Latest per-phase step marker from checkpoints.
    pub steps: u64,
    /// Cumulative budget spend (checkpoints, then final settlement).
    pub charged: u64,
    /// Samples kept by the final estimate (0 until settled).
    pub samples: u64,
    /// The settled estimate value.
    pub estimate: Option<f64>,
    /// 95% confidence-interval half-width of the settled estimate.
    pub ci_half: Option<f64>,
    /// Latest Geweke z attributed to this query (single-job runs only).
    pub geweke_z: Option<f64>,
    /// Whether the job settled; settled entries are dropped after the
    /// next emission reports them once.
    pub done: bool,
}

struct Inner {
    stages: [WindowedHistogram; Stage::COUNT],
    submitted_rate: WindowedSeries,
    settled_rate: WindowedSeries,
    charged_rate: WindowedSeries,
    totals: [u64; CONSERVED_COUNT],
    emitted: [u64; CONSERVED_COUNT],
    queries: BTreeMap<u64, QueryStats>,
    /// span id → (start tick, stage) for pilot/walk/estimate spans.
    open_stage_spans: HashMap<u64, (u64, Stage)>,
    /// span id → job id for open `job` spans; Geweke attribution.
    open_job_spans: HashMap<u64, u64>,
    latest_geweke: Option<f64>,
    settled_since_emit: u64,
    emissions: u64,
}

impl Inner {
    /// The windowed latency histogram for `stage`.
    fn stage(&mut self, stage: Stage) -> &mut WindowedHistogram {
        // ma-lint: allow(panic-safety) reason="Stage::index() is < Stage::COUNT, the array length"
        &mut self.stages[stage.index()]
    }

    /// Bumps the conserved counter at `counter` (one of the `C_*` consts).
    fn bump(&mut self, counter: usize, amount: u64) {
        // ma-lint: allow(panic-safety) reason="callers pass the C_* consts, all < CONSERVED_COUNT"
        self.totals[counter] += amount;
    }
}

/// The live-telemetry aggregator. Cheap to share (`Arc`), all state
/// behind one mutex; every mutation is a short critical section and
/// emissions release the lock before touching the tracer, so the hub can
/// never deadlock against its own sink.
pub struct StatsHub {
    config: StatsConfig,
    inner: Mutex<Inner>,
    /// Serializes emissions so window events in a shared stream stay in
    /// telescoping order even with concurrent workers.
    emit_lock: Mutex<()>,
}

impl std::fmt::Debug for StatsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsHub")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl StatsHub {
    /// Creates a hub with the given windowing layout.
    pub fn new(config: StatsConfig) -> Self {
        let window = config.window_ticks;
        let retain = config.retain;
        StatsHub {
            config,
            inner: Mutex::new(Inner {
                stages: std::array::from_fn(|_| WindowedHistogram::new(window, retain)),
                submitted_rate: WindowedSeries::new(window, retain),
                settled_rate: WindowedSeries::new(window, retain),
                charged_rate: WindowedSeries::new(window, retain),
                totals: [0; CONSERVED_COUNT],
                emitted: [0; CONSERVED_COUNT],
                queries: BTreeMap::new(),
                open_stage_spans: HashMap::new(),
                open_job_spans: HashMap::new(),
                latest_geweke: None,
                settled_since_emit: 0,
                emissions: 0,
            }),
            emit_lock: Mutex::new(()),
        }
    }

    /// The windowing layout in force.
    pub fn config(&self) -> StatsConfig {
        self.config
    }

    /// Records an admission: the `admit` stage latency plus the
    /// `jobs_submitted` conserved counter and submission rate.
    pub fn record_admit(&self, tick: u64, micros: u64) {
        let mut inner = self.inner.lock();
        inner.stage(Stage::Admit).record(tick, micros);
        inner.bump(C_SUBMITTED, 1);
        inner.submitted_rate.record(tick, 1);
    }

    /// Records a settlement: queue/settle stage latencies, outcome and
    /// traffic counters, and the query's final convergence reading.
    pub fn record_settled(
        &self,
        tick: u64,
        job: u64,
        metrics: &JobMetrics,
        estimate: Option<&Estimate>,
        settle: Duration,
    ) {
        let mut inner = self.inner.lock();
        inner
            .stage(Stage::Queue)
            .record(tick, metrics.queue_wait.as_micros() as u64);
        inner
            .stage(Stage::Settle)
            .record(tick, settle.as_micros() as u64);
        if metrics.succeeded {
            inner.bump(C_SUCCEEDED, 1);
            if metrics.degraded {
                inner.bump(C_DEGRADED, 1);
            }
        } else {
            inner.bump(C_FAILED, 1);
        }
        inner.bump(C_CHARGED, metrics.charged_calls);
        inner.bump(C_REFUNDED, metrics.refunded_calls);
        inner.bump(C_ACTUAL, metrics.cache.actual_calls);
        inner.bump(C_LOCAL_HITS, metrics.cache.local_hits);
        inner.bump(C_SHARED_HITS, metrics.cache.shared_hits);
        inner.bump(C_MISSES, metrics.cache.misses);
        inner.bump(C_SAMPLES, metrics.samples);
        inner.settled_rate.record(tick, 1);
        inner.charged_rate.record(tick, metrics.charged_calls);
        let entry = inner.queries.entry(job).or_default();
        entry.charged = entry.charged.max(metrics.charged_calls);
        entry.done = true;
        if let Some(est) = estimate {
            entry.estimate = Some(est.value);
            entry.samples = est.samples as u64;
            entry.ci_half = est.std_err.map(|se| 1.96 * se);
        }
        inner.settled_since_emit += 1;
    }

    /// Feeds one non-stats trace event through the hub: span correlation
    /// for the pilot/walk/estimate stages, checkpoint progress, and
    /// Geweke readings. Called by [`StatsSink`]; cheap and non-blocking.
    pub fn observe(&self, event: &TraceEvent) {
        if event.category == Category::Stats {
            return; // our own emissions; never re-enter
        }
        match (event.kind, event.category, event.name) {
            (EventKind::SpanStart, Category::Walk, "pilot")
            | (EventKind::SpanStart, Category::Walk, "tarw_instance")
            | (EventKind::SpanStart, Category::Job, "estimate") => {
                let stage = match event.name {
                    "pilot" => Stage::Pilot,
                    "tarw_instance" => Stage::Walk,
                    _ => Stage::Estimate,
                };
                if let Some(id) = event.span {
                    self.inner
                        .lock()
                        .open_stage_spans
                        .insert(id, (event.tick, stage));
                }
            }
            (EventKind::SpanEnd, Category::Walk, "pilot")
            | (EventKind::SpanEnd, Category::Walk, "tarw_instance")
            | (EventKind::SpanEnd, Category::Job, "estimate") => {
                if let Some(id) = event.span {
                    let mut inner = self.inner.lock();
                    if let Some((start, stage)) = inner.open_stage_spans.remove(&id) {
                        let micros = event.tick.saturating_sub(start);
                        inner.stage(stage).record(event.tick, micros);
                    }
                }
            }
            (EventKind::SpanStart, Category::Job, "job") => {
                if let (Some(id), Some(job)) = (event.span, event.u64_field("job_id")) {
                    self.inner.lock().open_job_spans.insert(id, job);
                }
            }
            (EventKind::SpanEnd, Category::Job, "job") => {
                if let Some(id) = event.span {
                    self.inner.lock().open_job_spans.remove(&id);
                }
            }
            (EventKind::Event, Category::Checkpoint, "checkpoint") => {
                if let Some(job) = event.u64_field("job_id") {
                    let mut inner = self.inner.lock();
                    let entry = inner.queries.entry(job).or_default();
                    if let Some(steps) = event.u64_field("steps") {
                        entry.steps = steps;
                    }
                    if let Some(charged) = event.u64_field("charged") {
                        entry.charged = entry.charged.max(charged);
                    }
                }
            }
            (EventKind::Event, Category::Diag, "geweke") => {
                if let Some(z) = event.f64_field("z") {
                    let mut inner = self.inner.lock();
                    inner.latest_geweke = Some(z);
                    // Attribute to a query only when exactly one job span
                    // is open — with concurrent workers the reading is
                    // ambiguous and stays global-only.
                    if inner.open_job_spans.len() == 1 {
                        let job = *inner.open_job_spans.values().next().unwrap_or(&0);
                        inner.queries.entry(job).or_default().geweke_z = Some(z);
                    }
                }
            }
            _ => {}
        }
    }

    /// Emits one stats emission when at least `every` settlements
    /// happened since the last one (`every == 0` disables the cadence).
    /// `gauges` is only evaluated when an emission actually fires.
    pub fn maybe_emit(&self, tracer: &Tracer, every: u64, gauges: impl FnOnce() -> GaugeReading) {
        if every == 0 || !tracer.is_enabled() {
            return;
        }
        let due = self.inner.lock().settled_since_emit >= every;
        if due {
            self.emit(tracer, gauges());
        }
    }

    /// Emits one stats emission unconditionally: a `window` event with
    /// conserved deltas/totals, a `gauges` event, and one `query` event
    /// per tracked query (settled queries are dropped after this report).
    pub fn emit(&self, tracer: &Tracer, gauges: GaugeReading) {
        if !tracer.is_enabled() {
            return;
        }
        // Serialize whole emissions: the conservation invariant needs
        // window events in telescoping order within a shared stream.
        let _ordered = self.emit_lock.lock();
        // Compute every field vector under the inner lock, release it,
        // then emit — the tracer's sink feeds back into `observe`.
        let (window_fields, gauge_fields, query_fields) = {
            let mut inner = self.inner.lock();
            inner.settled_since_emit = 0;
            let win = inner.emissions;
            inner.emissions += 1;
            let mut window: Vec<(&'static str, FieldValue)> =
                Vec::with_capacity(1 + 2 * CONSERVED_COUNT);
            window.push(("win", FieldValue::U64(win)));
            let keys = CONSERVED_DELTA_KEYS.iter().zip(CONSERVED_TOTAL_KEYS.iter());
            let counters = inner.totals.iter().zip(inner.emitted.iter());
            for ((total, prev), (dkey, tkey)) in counters.zip(keys) {
                window.push((*dkey, FieldValue::U64(total - prev)));
                window.push((*tkey, FieldValue::U64(*total)));
            }
            inner.emitted = inner.totals;
            let gauge = gauge_fields(&inner, &gauges);
            let queries: Vec<Vec<(&'static str, FieldValue)>> = inner
                .queries
                .iter()
                .map(|(job, q)| query_fields_for(*job, q))
                .collect();
            inner.queries.retain(|_, q| !q.done);
            (window, gauge, queries)
        };
        tracer.emit(Category::Stats, "window", &window_fields);
        tracer.emit(Category::Stats, "gauges", &gauge_fields);
        for fields in &query_fields {
            tracer.emit(Category::Stats, "query", fields);
        }
    }

    /// A point-in-time stable-JSON snapshot of the hub: conserved
    /// totals, per-stage latency percentiles over the retained horizon,
    /// window histories for the rate series, per-query convergence and
    /// the supplied gauges. Field order is fixed, floats use shortest
    /// round-trip formatting — byte-stable for goldens.
    pub fn snapshot_json(&self, gauges: &GaugeReading) -> String {
        let inner = self.inner.lock();
        let mut out = String::with_capacity(1024);
        out.push_str("{\"totals\":{");
        for (i, (key, total)) in CONSERVED_KEYS.iter().zip(inner.totals.iter()).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{key}\":{total}"));
        }
        out.push_str("},\"stages\":{");
        for (i, (stage, hist)) in Stage::ALL.iter().zip(inner.stages.iter()).enumerate() {
            if i > 0 {
                out.push(',');
            }
            let merged = hist.merged();
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                stage.as_str(),
                hist.count(),
                percentile(&merged, 0.50),
                percentile(&merged, 0.90),
                percentile(&merged, 0.99),
                hist.max(),
            ));
        }
        out.push_str("},\"rates\":{");
        for (i, (name, series)) in [
            ("submitted", &inner.submitted_rate),
            ("settled", &inner.settled_rate),
            ("charged", &inner.charged_rate),
        ]
        .iter()
        .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":["));
            for (j, w) in series.snapshot().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&w.sum.to_string());
            }
            out.push(']');
        }
        out.push_str("},\"queries\":[");
        for (i, (job, q)) in inner.queries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"job\":{job},\"steps\":{},\"charged\":{},\"samples\":{},\
                 \"estimate\":{},\"ci_half\":{},\"geweke_z\":{},\"done\":{}}}",
                q.steps,
                q.charged,
                q.samples,
                json_f64_opt(q.estimate),
                json_f64_opt(q.ci_half),
                json_f64_opt(q.geweke_z),
                q.done,
            ));
        }
        out.push_str("],\"gauges\":{");
        out.push_str(&format!(
            "\"quota_consumed\":{},\"quota_reserved\":{},\"quota_remaining\":{},\
             \"inflight\":{},\"cache_hit_rate\":{},\"breaker_opens\":{},\
             \"breaker_fast_fails\":{},\"coalesce_leads\":{},\"coalesce_waits\":{},\
             \"coalesce_aborts\":{},\"coalesce_peak_inflight\":{},\
             \"sched_announced\":{},\"sched_prefetched\":{},\"sched_hits\":{},\
             \"sched_waits\":{},\"sched_claimed\":{},\"sched_stranded\":{},\
             \"sched_peak_inflight\":{},\"geweke_z\":{}",
            gauges.quota_consumed,
            gauges.quota_reserved,
            gauges
                .quota_remaining
                .map_or("null".to_string(), |v| v.to_string()),
            gauges.inflight,
            json_f64(hit_rate(&inner.totals)),
            gauges.breaker_opens,
            gauges.breaker_fast_fails,
            gauges.coalesce_leads,
            gauges.coalesce_waits,
            gauges.coalesce_aborts,
            gauges.coalesce_peak_inflight,
            gauges.sched_announced,
            gauges.sched_prefetched,
            gauges.sched_hits,
            gauges.sched_waits,
            gauges.sched_claimed,
            gauges.sched_stranded,
            gauges.sched_peak_inflight,
            json_f64_opt(inner.latest_geweke),
        ));
        out.push_str(&format!("}},\"emissions\":{}}}", inner.emissions));
        out
    }

    /// Per-query convergence entries, in job-id order.
    pub fn queries(&self) -> Vec<(u64, QueryStats)> {
        self.inner
            .lock()
            .queries
            .iter()
            .map(|(j, q)| (*j, q.clone()))
            .collect()
    }

    /// The conserved cumulative totals, aligned with [`CONSERVED_KEYS`].
    pub fn totals(&self) -> [u64; CONSERVED_COUNT] {
        self.inner.lock().totals
    }

    /// Emissions performed so far.
    pub fn emissions(&self) -> u64 {
        self.inner.lock().emissions
    }
}

/// Shared-cache hit rate over the conserved totals (0 when no lookups).
fn hit_rate(totals: &[u64; CONSERVED_COUNT]) -> f64 {
    // ma-lint: allow(panic-safety) reason="C_* consts are < CONSERVED_COUNT, the array length"
    let hits = totals[C_LOCAL_HITS] + totals[C_SHARED_HITS];
    // ma-lint: allow(panic-safety) reason="C_* consts are < CONSERVED_COUNT, the array length"
    let lookups = hits + totals[C_MISSES];
    if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    }
}

fn gauge_fields(inner: &Inner, g: &GaugeReading) -> Vec<(&'static str, FieldValue)> {
    let mut fields: Vec<(&'static str, FieldValue)> = vec![
        ("quota_consumed", FieldValue::U64(g.quota_consumed)),
        ("quota_reserved", FieldValue::U64(g.quota_reserved)),
        (
            "quota_unlimited",
            FieldValue::U64(u64::from(g.quota_remaining.is_none())),
        ),
        (
            "quota_remaining",
            FieldValue::U64(g.quota_remaining.unwrap_or(0)),
        ),
        ("inflight", FieldValue::U64(g.inflight)),
        ("cache_hit_rate", FieldValue::F64(hit_rate(&inner.totals))),
        ("breaker_opens", FieldValue::U64(g.breaker_opens)),
        ("breaker_fast_fails", FieldValue::U64(g.breaker_fast_fails)),
        ("coalesce_leads", FieldValue::U64(g.coalesce_leads)),
        ("coalesce_waits", FieldValue::U64(g.coalesce_waits)),
        ("coalesce_aborts", FieldValue::U64(g.coalesce_aborts)),
        (
            "coalesce_peak_inflight",
            FieldValue::U64(g.coalesce_peak_inflight),
        ),
        ("sched_announced", FieldValue::U64(g.sched_announced)),
        ("sched_prefetched", FieldValue::U64(g.sched_prefetched)),
        ("sched_hits", FieldValue::U64(g.sched_hits)),
        ("sched_waits", FieldValue::U64(g.sched_waits)),
        ("sched_claimed", FieldValue::U64(g.sched_claimed)),
        ("sched_stranded", FieldValue::U64(g.sched_stranded)),
        (
            "sched_peak_inflight",
            FieldValue::U64(g.sched_peak_inflight),
        ),
    ];
    if let Some(z) = inner.latest_geweke {
        fields.push(("geweke_z", FieldValue::F64(z)));
    }
    fields
}

fn query_fields_for(job: u64, q: &QueryStats) -> Vec<(&'static str, FieldValue)> {
    let mut fields: Vec<(&'static str, FieldValue)> = vec![
        ("job_id", FieldValue::U64(job)),
        ("steps", FieldValue::U64(q.steps)),
        ("charged", FieldValue::U64(q.charged)),
        ("samples", FieldValue::U64(q.samples)),
    ];
    if let Some(v) = q.estimate {
        fields.push(("estimate", FieldValue::F64(v)));
    }
    if let Some(ci) = q.ci_half {
        fields.push(("ci_half", FieldValue::F64(ci)));
        if q.charged > 0 {
            fields.push(("ci_per_call", FieldValue::F64(ci / q.charged as f64)));
        }
    }
    if let Some(z) = q.geweke_z {
        fields.push(("geweke_z", FieldValue::F64(z)));
    }
    fields.push(("done", FieldValue::U64(u64::from(q.done))));
    fields
}

/// Shortest-round-trip float rendering matching `microblog_obs::export`:
/// a forced `.0` for integral values, `null` for non-finite ones.
fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let mut s = format!("{v}");
    if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
        s.push_str(".0");
    }
    s
}

fn json_f64_opt(v: Option<f64>) -> String {
    v.map_or("null".to_string(), json_f64)
}

/// A [`TraceSink`] that splits the event flow for live telemetry:
/// `Category::Stats` emissions are rendered as JSONL to the configured
/// writer (the stats stream `ma-cli top` consumes), every other event
/// feeds [`StatsHub::observe`] for span correlation, and the whole flow
/// optionally forwards to an inner sink for full-trace capture.
pub struct StatsSink {
    hub: Arc<StatsHub>,
    out: Option<Mutex<Box<dyn Write + Send>>>,
    forward: Option<Arc<dyn TraceSink>>,
}

impl StatsSink {
    /// A sink that only feeds the hub (no stats stream is written).
    pub fn new(hub: Arc<StatsHub>) -> Self {
        StatsSink {
            hub,
            out: None,
            forward: None,
        }
    }

    /// Renders stats emissions to `out` as JSON lines, flushed per line
    /// so a piped `ma-cli top` refreshes promptly.
    pub fn with_output(mut self, out: Box<dyn Write + Send>) -> Self {
        self.out = Some(Mutex::new(out));
        self
    }

    /// Forwards every event (stats included) to `sink` as well.
    pub fn with_forward(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.forward = Some(sink);
        self
    }

    /// The hub this sink feeds.
    pub fn hub(&self) -> &Arc<StatsHub> {
        &self.hub
    }
}

impl TraceSink for StatsSink {
    fn record(&self, event: TraceEvent) {
        if event.category == Category::Stats {
            if let Some(out) = &self.out {
                let mut line = to_json_line(&event);
                line.push('\n');
                let mut w = out.lock();
                // A broken pipe must never take the engine down.
                let _ = w.write_all(line.as_bytes());
                let _ = w.flush();
            }
        } else {
            self.hub.observe(&event);
        }
        if let Some(inner) = &self.forward {
            inner.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microblog_obs::{TelemetryClock, TelemetryMode, WalkPhase};

    fn hub() -> StatsHub {
        StatsHub::new(StatsConfig {
            window_ticks: 64,
            retain: 4,
        })
    }

    #[test]
    fn delta_and_total_field_names_align_with_the_schema_vocabulary() {
        for (i, key) in CONSERVED_KEYS.iter().enumerate() {
            assert_eq!(CONSERVED_DELTA_KEYS[i], format!("d_{key}"));
            assert_eq!(CONSERVED_TOTAL_KEYS[i], format!("t_{key}"));
        }
    }

    fn metrics(charged: u64, succeeded: bool) -> JobMetrics {
        JobMetrics {
            succeeded,
            degraded: false,
            charged_calls: charged,
            refunded_calls: 10,
            samples: 5,
            cache: Default::default(),
            retries: 0,
            wasted_calls: 0,
            backoff_secs: 0,
            rate_limited_hits: 0,
            breaker_opens: 0,
            breaker_fast_fails: 0,
            queue_wait: Duration::from_micros(7),
            exec: Duration::from_micros(100),
        }
    }

    fn event(kind: EventKind, category: Category, name: &'static str, tick: u64) -> TraceEvent {
        TraceEvent {
            tick,
            seq: 0,
            kind,
            category,
            name,
            span: Some(1),
            phase: WalkPhase::Idle,
            level: None,
            fields: Vec::new(),
        }
    }

    /// Collects everything a tracer emits, for emission-shape asserts.
    struct VecSink(Mutex<Vec<TraceEvent>>);

    impl TraceSink for VecSink {
        fn record(&self, event: TraceEvent) {
            self.0.lock().push(event);
        }
    }

    fn tracer_with_sink() -> (Tracer, Arc<VecSink>) {
        let sink = Arc::new(VecSink(Mutex::new(Vec::new())));
        let clock = Arc::new(TelemetryClock::new(TelemetryMode::Logical));
        (
            Tracer::new(Arc::clone(&sink) as Arc<dyn TraceSink>, clock),
            sink,
        )
    }

    #[test]
    fn admit_and_settle_feed_stages_and_totals() {
        let hub = hub();
        hub.record_admit(10, 3);
        hub.record_settled(200, 0, &metrics(40, true), None, Duration::from_micros(2));
        let totals = hub.totals();
        assert_eq!(totals[C_SUBMITTED], 1);
        assert_eq!(totals[C_SUCCEEDED], 1);
        assert_eq!(totals[C_CHARGED], 40);
        let snap = hub.snapshot_json(&GaugeReading::default());
        assert!(snap.contains("\"admit\":{\"count\":1"));
        assert!(snap.contains("\"queue\":{\"count\":1"));
        assert!(snap.contains("\"settle\":{\"count\":1"));
    }

    #[test]
    fn span_correlation_measures_pilot_walk_estimate_stages() {
        let hub = hub();
        for (cat, name) in [
            (Category::Walk, "pilot"),
            (Category::Walk, "tarw_instance"),
            (Category::Job, "estimate"),
        ] {
            hub.observe(&event(EventKind::SpanStart, cat, name, 100));
            hub.observe(&event(EventKind::SpanEnd, cat, name, 130));
        }
        let snap = hub.snapshot_json(&GaugeReading::default());
        // 30 ticks lands in the [28,31] log-linear sub-bucket; a lone
        // occupant reports the inclusive upper bound.
        assert!(snap.contains("\"pilot\":{\"count\":1,\"p50\":31"));
        assert!(snap.contains("\"walk\":{\"count\":1,\"p50\":31"));
        assert!(snap.contains("\"estimate\":{\"count\":1,\"p50\":31"));
    }

    #[test]
    fn checkpoints_and_geweke_drive_query_convergence() {
        let hub = hub();
        let mut job_span = event(EventKind::SpanStart, Category::Job, "job", 5);
        job_span.fields.push(("job_id", FieldValue::U64(9)));
        hub.observe(&job_span);
        let mut ckpt = event(EventKind::Event, Category::Checkpoint, "checkpoint", 10);
        ckpt.fields.push(("job_id", FieldValue::U64(9)));
        ckpt.fields.push(("steps", FieldValue::U64(500)));
        ckpt.fields.push(("charged", FieldValue::U64(120)));
        hub.observe(&ckpt);
        let mut gw = event(EventKind::Event, Category::Diag, "geweke", 11);
        gw.fields.push(("z", FieldValue::F64(0.5)));
        hub.observe(&gw);
        let queries = hub.queries();
        assert_eq!(queries.len(), 1);
        let (job, q) = &queries[0];
        assert_eq!(*job, 9);
        assert_eq!(q.steps, 500);
        assert_eq!(q.charged, 120);
        assert_eq!(q.geweke_z, Some(0.5));
        assert!(!q.done);
    }

    #[test]
    fn emission_deltas_telescope_to_totals() {
        let hub = hub();
        let (tracer, sink) = tracer_with_sink();
        hub.record_admit(1, 1);
        hub.record_settled(50, 0, &metrics(30, true), None, Duration::from_micros(1));
        hub.emit(&tracer, GaugeReading::default());
        hub.record_admit(60, 1);
        hub.record_settled(90, 1, &metrics(12, false), None, Duration::from_micros(1));
        hub.emit(&tracer, GaugeReading::default());
        let events = sink.0.lock();
        let windows: Vec<&TraceEvent> = events.iter().filter(|e| e.name == "window").collect();
        assert_eq!(windows.len(), 2);
        let totals = hub.totals();
        for i in 0..CONSERVED_COUNT {
            let sum: u64 = windows
                .iter()
                .map(|w| w.u64_field(CONSERVED_DELTA_KEYS[i]).unwrap())
                .sum();
            assert_eq!(sum, totals[i], "delta sum for {}", CONSERVED_KEYS[i]);
            assert_eq!(
                windows[1].u64_field(CONSERVED_TOTAL_KEYS[i]).unwrap(),
                totals[i]
            );
        }
        assert_eq!(windows[0].u64_field("win"), Some(0));
        assert_eq!(windows[1].u64_field("win"), Some(1));
    }

    #[test]
    fn settled_queries_are_reported_once_then_dropped() {
        let hub = hub();
        let (tracer, sink) = tracer_with_sink();
        let est = Estimate {
            value: 1000.0,
            std_err: Some(50.0),
            cost: 200,
            samples: 40,
            instances: 4,
        };
        hub.record_settled(
            10,
            3,
            &metrics(200, true),
            Some(&est),
            Duration::from_micros(1),
        );
        hub.emit(&tracer, GaugeReading::default());
        hub.emit(&tracer, GaugeReading::default());
        let events = sink.0.lock();
        let queries: Vec<&TraceEvent> = events.iter().filter(|e| e.name == "query").collect();
        assert_eq!(queries.len(), 1, "settled query reported exactly once");
        let q = queries[0];
        assert_eq!(q.u64_field("job_id"), Some(3));
        assert_eq!(q.f64_field("estimate"), Some(1000.0));
        assert_eq!(q.f64_field("ci_half"), Some(1.96 * 50.0));
        assert_eq!(q.f64_field("ci_per_call"), Some(1.96 * 50.0 / 200.0));
        assert_eq!(q.u64_field("done"), Some(1));
    }

    #[test]
    fn maybe_emit_honors_the_cadence() {
        let hub = hub();
        let (tracer, sink) = tracer_with_sink();
        hub.record_settled(5, 0, &metrics(1, true), None, Duration::from_micros(1));
        hub.maybe_emit(&tracer, 2, GaugeReading::default);
        assert_eq!(hub.emissions(), 0, "one settle < every=2");
        hub.record_settled(9, 1, &metrics(1, true), None, Duration::from_micros(1));
        hub.maybe_emit(&tracer, 2, GaugeReading::default);
        assert_eq!(hub.emissions(), 1);
        assert!(sink.0.lock().iter().any(|e| e.name == "gauges"));
    }

    #[test]
    fn stats_sink_splits_stream_from_observation() {
        let hub = Arc::new(hub());
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = StatsSink::new(Arc::clone(&hub)).with_output(Box::new(Shared(Arc::clone(&buf))));
        let clock = Arc::new(TelemetryClock::new(TelemetryMode::Logical));
        let tracer = Tracer::new(Arc::new(sink), clock);
        // A non-stats event reaches the hub, not the stream.
        tracer.span_start(Category::Walk, "pilot", &[]);
        assert!(buf.lock().is_empty());
        // A stats emission reaches the stream as JSONL.
        hub.emit(&tracer, GaugeReading::default());
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        assert!(text.lines().count() >= 2, "window + gauges lines");
        assert!(text.contains("\"cat\":\"stats\""));
        assert!(text.contains("\"name\":\"window\""));
    }

    #[test]
    fn snapshot_json_is_stable_across_identical_hubs() {
        let build = || {
            let hub = hub();
            hub.record_admit(10, 3);
            hub.record_settled(300, 0, &metrics(25, true), None, Duration::from_micros(4));
            hub.snapshot_json(&GaugeReading {
                quota_consumed: 25,
                quota_remaining: Some(975),
                ..GaugeReading::default()
            })
        };
        assert_eq!(build(), build());
    }
}
