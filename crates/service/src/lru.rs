// ma-lint: allow-file(panic-safety) reason="intrusive LRU slots are validated indices into its own arena"
//! A bounded LRU map.
//!
//! Safe-code doubly-linked list over a slab of nodes (indices instead of
//! pointers), with a `HashMap` for key lookup. Used by each shard of the
//! shared API cache; not thread-safe on its own — shards wrap it in a
//! mutex.

use std::collections::HashMap;
use std::hash::Hash;

const NONE: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A map that holds at most `capacity` entries, evicting the least
/// recently used (read or written) entry on overflow.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache evicting beyond `capacity` entries (capacity 0 stores
    /// nothing and every `get` misses).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            capacity,
        }
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, marking the entry most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.detach(idx);
        self.attach_front(idx);
        Some(&self.nodes[idx].value)
    }

    /// Inserts or replaces `key`, marking it most recently used. Returns
    /// `true` when an older entry was evicted to make room.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.nodes[idx].value = value;
            self.detach(idx);
            self.attach_front(idx);
            return false;
        }
        let mut evicted = false;
        if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NONE, "full cache has a tail");
            self.detach(lru);
            self.map.remove(&self.nodes[lru].key);
            self.free.push(lru);
            evicted = true;
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.nodes[idx] = Node {
                    key: key.clone(),
                    value,
                    prev: NONE,
                    next: NONE,
                };
                idx
            }
            None => {
                self.nodes.push(Node {
                    key: key.clone(),
                    value,
                    prev: NONE,
                    next: NONE,
                });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
        evicted
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NONE {
            self.nodes[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NONE {
            self.nodes[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx].prev = NONE;
        self.nodes[idx].next = NONE;
    }

    fn attach_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NONE;
        self.nodes[idx].next = self.head;
        if self.head != NONE {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NONE {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        assert!(!c.insert("a", 1));
        assert!(!c.insert("b", 2));
        assert_eq!(c.get(&"a"), Some(&1)); // "a" is now most recent
        assert!(c.insert("c", 3), "capacity 2 evicts");
        assert_eq!(c.get(&"b"), None, "b was the LRU");
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replace_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert(1u32, "x");
        c.insert(2u32, "y");
        assert!(!c.insert(1u32, "z"), "replacement needs no eviction");
        assert_eq!(c.get(&1), Some(&"z"));
        assert_eq!(c.get(&2), Some(&"y"));
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut c = LruCache::new(0);
        assert!(!c.insert(1u8, 1u8));
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn single_slot_cycles() {
        let mut c = LruCache::new(1);
        for i in 0..10u32 {
            c.insert(i, i * 2);
            assert_eq!(c.len(), 1);
            assert_eq!(c.get(&i), Some(&(i * 2)));
            if i > 0 {
                assert_eq!(c.get(&(i - 1)), None);
            }
        }
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let mut c = LruCache::new(3);
        for i in 0..100u32 {
            c.insert(i, i);
        }
        assert_eq!(c.len(), 3);
        // Evicted slots are recycled, so the slab never outgrows capacity.
        assert_eq!(c.nodes.len(), 3);
        for i in 97..100u32 {
            assert_eq!(c.get(&i), Some(&i));
        }
    }
}
