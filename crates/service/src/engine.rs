//! The multi-query estimation engine.
//!
//! [`Service`] owns a worker pool, the [`SharedApiCache`], the
//! [`GlobalQuota`], and a [`MetricsRegistry`]. [`Service::submit`]
//! performs admission control — the job's full budget is reserved from
//! the global quota up front, so an admitted job can always run to its
//! budget — and hands back a [`JobHandle`] whose [`JobHandle::join`]
//! blocks until a worker has finished the job.
//!
//! Workers pull jobs from a single `mpsc` channel behind a mutex (the
//! classic shared-receiver pool), run the estimator with the shared
//! cache layered under the per-query client, settle the quota
//! reservation down to what the job actually charged, and publish the
//! outcome through the handle's condvar.
//!
//! # Crash-only operation
//!
//! With [`ServiceConfig::journal`] set, the engine is crash-safe:
//! admission, reservation, walker checkpoints (every
//! [`ServiceConfig::checkpoint_every`] steps), and settlement are
//! journaled write-ahead (see [`crate::journal`]), and
//! [`Service::start`] replays the journal on boot — settled jobs adopt
//! their consumption into the quota, unsettled jobs are requeued from
//! their latest checkpoint. A resumed job produces bit-identical
//! estimates, charged totals, and quota settlement to an uninterrupted
//! run, and settle records are idempotent, so a crash can never
//! double-charge.
//!
//! In-process, a supervisor thread watches for workers killed by crash
//! injection ([`ServiceConfig::crash_plan`]): it respawns the dead
//! worker and requeues its job from the last in-memory checkpoint —
//! the job's reservation travels with it, so recovery needs no quota
//! surgery. [`Service::shutdown`] drains with an optional
//! [`ServiceConfig::drain_timeout`]; jobs still running at the deadline
//! are journaled as interrupted and their handles fail with
//! [`ServiceError::Interrupted`] instead of blocking shutdown forever.

use crate::cache::{CoalescingSharedCache, SharedApiCache, SharedCacheConfig, SharedCacheSnapshot};
use crate::clock::{TelemetryClock, TelemetryMode};
use crate::journal::{Journal, JournalRecord, ReplaySummary};
use crate::metrics::{JobMetrics, MetricsRegistry, MetricsSnapshot};
use crate::quota::{GlobalQuota, Reservation};
use crate::request::JobSpec;
use crate::stats::{GaugeReading, StatsConfig, StatsHub};
use microblog_analyzer::checkpoint::{CheckpointCtl, CheckpointSink};
use microblog_analyzer::{Estimate, EstimateError, MicroblogAnalyzer, RunReport, WalkerCheckpoint};
use microblog_api::cache::{CacheLayer, CacheStats, CoalesceStats, CoalescingLayer};
use microblog_api::{
    ApiProfile, FetchScheduler, InflightPolicy, PrefetchSink, ResilienceStats, RetryPolicy,
    SchedCloseGuard, SchedCounters, SchedStats,
};
use microblog_obs::{Category, FieldValue, Tracer};
use microblog_platform::{
    crash_point, ApiBackend, CrashInjector, CrashMode, CrashPlan, FaultPlan, FaultyPlatform,
    Platform, CRASH_PANIC_PREFIX,
};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// Sizing of a [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Service-wide API-call cap (`None` = unlimited; admission always
    /// succeeds).
    pub global_quota: Option<u64>,
    /// Shared cache layout.
    pub cache: SharedCacheConfig,
    /// Default retry policy for jobs that don't carry their own
    /// ([`JobSpec::retry`]). Faults a policy absorbs never touch the
    /// walk's budget or RNG, so estimates stay bit-identical to
    /// fault-free runs.
    pub retry: RetryPolicy,
    /// When set, all platform traffic flows through a
    /// [`FaultyPlatform`] injecting failures per this plan — the chaos
    /// knob behind `ma-cli serve --fault-plan`.
    pub fault_plan: Option<FaultPlan>,
    /// Time source for `queue_wait`/`exec` telemetry. The default
    /// logical clock keeps serve runs deterministic; `ma-cli serve
    /// --wall-telemetry` opts into real latencies.
    pub telemetry: TelemetryMode,
    /// Structured-trace handle. The default disabled tracer costs
    /// nothing; `ma-cli trace` passes an enabled one to record every
    /// job's walk/charge/resilience events. When the tracer is enabled
    /// its clock also drives `queue_wait`/`exec` telemetry, so traces
    /// and metrics share one tick stream.
    pub tracer: Tracer,
    /// Coalesce concurrent misses on the same cache key into one
    /// platform fetch (waiters park and receive the filled entry,
    /// charged exactly as a shared hit). On by default; the bench
    /// harness turns it off to measure the uncoalesced baseline.
    pub coalesce: bool,
    /// Override backend all platform traffic flows through — the bench
    /// harness plugs in a latency-simulating wrapper here so in-flight
    /// windows are as wide as a real network round-trip would make
    /// them. `fault_plan` takes precedence when both are set; `None`
    /// means the pristine platform.
    pub backend: Option<Arc<dyn ApiBackend>>,
    /// Directory of the write-ahead job journal; `None` runs without
    /// durability. `ma-cli serve --journal <dir>` sets it; on startup
    /// the journal is replayed and unsettled jobs are requeued from
    /// their latest checkpoint.
    pub journal: Option<PathBuf>,
    /// Walker steps between checkpoints (0 disables checkpointing).
    /// Checkpoints flow to the journal (when configured) and to the
    /// in-memory slot crash requeues resume from.
    pub checkpoint_every: u64,
    /// Deterministic crash injection: kill a worker (or tear the
    /// journal tail) at a named crashpoint. The chaos knob behind
    /// `ma-cli serve --crash-plan`.
    pub crash_plan: Option<CrashPlan>,
    /// Shutdown drain deadline: jobs still running when it expires are
    /// journaled as interrupted and their handles fail with
    /// [`ServiceError::Interrupted`]. `None` waits forever (the
    /// pre-deadline behavior — a hung estimator blocks shutdown).
    pub drain_timeout: Option<Duration>,
    /// Live-telemetry hub. `None` (the default) makes the service create
    /// a private hub, so [`Service::stats_snapshot`] always works;
    /// `ma-cli serve --stats-every` passes the hub its [`StatsSink`]
    /// already feeds so stream and snapshot agree.
    pub stats: Option<Arc<StatsHub>>,
    /// Emit a stats emission (`window`/`gauges`/`query` events through
    /// the tracer) after every N settled jobs; 0 emits only on demand
    /// ([`Service::emit_stats`]).
    pub stats_every: u64,
    /// Pipeline announced fetches through a per-worker
    /// [`FetchScheduler`]: walkers announce the calls their next steps
    /// will need and [`InflightPolicy::depth`] prefetcher threads keep
    /// them in flight. Purely a latency optimization — estimates,
    /// charged totals, sample sequences and checkpoints are
    /// bit-identical with the pipeline on or off.
    pub pipeline: bool,
    /// How many announced fetches the pipeline keeps outstanding at
    /// once (per worker). Ignored unless [`ServiceConfig::pipeline`].
    pub inflight: InflightPolicy,
    /// Interleaved walker chains per SRW-family job (1 = the classic
    /// solo walk). Chains interleave on the worker thread and share the
    /// job's budget; with the pipeline on, one chain's compute overlaps
    /// the other chains' fetch RTTs.
    pub chains: usize,
    /// Optional per-chain step cap for SRW-family jobs: clamps the walk
    /// config's `max_steps`. Bounds worker CPU once a walk's neighborhood
    /// is fully memoized and steps stop costing API calls. `None` leaves
    /// each algorithm's own limit in force.
    pub step_cap: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            global_quota: None,
            cache: SharedCacheConfig::default(),
            retry: RetryPolicy::resilient(),
            fault_plan: None,
            telemetry: TelemetryMode::default(),
            tracer: Tracer::disabled(),
            coalesce: true,
            backend: None,
            journal: None,
            checkpoint_every: 1_000,
            crash_plan: None,
            drain_timeout: None,
            stats: None,
            stats_every: 0,
            pipeline: false,
            inflight: InflightPolicy::default(),
            chains: 1,
            step_cap: None,
        }
    }
}

/// Why a job produced no estimate.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// Admission control refused the job: the uncommitted quota cannot
    /// cover its budget.
    Rejected {
        /// The budget the job asked for.
        requested: u64,
        /// Uncommitted calls left in the pool at refusal time.
        available: u64,
    },
    /// The estimator ran and failed.
    Estimation(EstimateError),
    /// The estimator panicked; the payload is the panic message.
    WorkerPanicked(String),
    /// The service is shutting down and no longer accepts jobs.
    ShuttingDown,
    /// The job was interrupted (shutdown drain deadline or a torn
    /// journal) before finishing; with a journal configured it will be
    /// recovered on the next startup.
    Interrupted,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Rejected {
                requested,
                available,
            } => write!(
                f,
                "rejected: budget {requested} exceeds the {available} uncommitted \
                 calls left in the global quota"
            ),
            ServiceError::Estimation(e) => write!(f, "estimation failed: {e}"),
            ServiceError::WorkerPanicked(msg) => write!(f, "estimator panicked: {msg}"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Interrupted => {
                write!(
                    f,
                    "interrupted before finishing; recoverable from the journal"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// A finished job's results.
#[derive(Clone, Debug)]
pub struct JobOutput {
    /// The service-assigned job id.
    pub job: u64,
    /// The estimate.
    pub estimate: Estimate,
    /// API calls charged to the job's budget; the unspent remainder of
    /// the reservation was refunded to the global quota.
    pub charged: u64,
    /// The job client's cache traffic.
    pub cache: CacheStats,
    /// Retry/backoff/breaker accounting for the job's client.
    pub resilience: ResilienceStats,
    /// Time spent queued before a worker picked the job up.
    pub queue_wait: Duration,
    /// Time spent executing.
    pub exec: Duration,
}

/// How a job ended: fully, partially, or not at all. Every variant
/// settles the job's quota reservation down to what it actually charged
/// — unused calls go back to the pool either way.
#[must_use = "a JobOutcome carries the estimate (or failure) the job's budget paid for"]
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// Ran to its budget (or cache exhaustion) without giving up.
    Complete(JobOutput),
    /// A fatal resilience error (retries exhausted, deadline, breaker)
    /// ended the walk early, but the samples collected before it still
    /// produced an estimate. The error trail is in
    /// [`JobOutput::resilience`].
    Degraded(JobOutput),
    /// No estimate.
    Failed {
        /// The service-assigned job id.
        job: u64,
        /// What went wrong.
        error: ServiceError,
        /// API calls charged before the failure (the rest of the
        /// reservation was refunded).
        charged: u64,
        /// Retry/backoff/breaker accounting up to the failure.
        resilience: ResilienceStats,
    },
}

impl JobOutcome {
    /// The output, when an estimate exists (complete or degraded).
    pub fn output(&self) -> Option<&JobOutput> {
        match self {
            JobOutcome::Complete(out) | JobOutcome::Degraded(out) => Some(out),
            JobOutcome::Failed { .. } => None,
        }
    }

    /// `true` for [`JobOutcome::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, JobOutcome::Complete(_))
    }

    /// `true` for [`JobOutcome::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, JobOutcome::Degraded(_))
    }

    /// API calls the job charged (and settled against the quota).
    pub fn charged(&self) -> u64 {
        match self {
            JobOutcome::Complete(out) | JobOutcome::Degraded(out) => out.charged,
            JobOutcome::Failed { charged, .. } => *charged,
        }
    }

    /// The resilience accounting, whatever the ending.
    pub fn resilience(&self) -> &ResilienceStats {
        match self {
            JobOutcome::Complete(out) | JobOutcome::Degraded(out) => &out.resilience,
            JobOutcome::Failed { resilience, .. } => resilience,
        }
    }

    /// Collapses to a `Result`, treating a degraded estimate as success.
    pub fn into_result(self) -> Result<JobOutput, ServiceError> {
        match self {
            JobOutcome::Complete(out) | JobOutcome::Degraded(out) => Ok(out),
            JobOutcome::Failed { error, .. } => Err(error),
        }
    }
}

#[derive(Default)]
struct JobState {
    outcome: Mutex<Option<JobOutcome>>,
    ready: Condvar,
}

/// A ticket for an admitted job; [`join`](JobHandle::join) blocks until
/// the outcome is in. Handles are cheap to clone and joinable from any
/// thread, any number of times.
#[derive(Clone)]
pub struct JobHandle {
    job: u64,
    state: Arc<JobState>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("job", &self.job)
            .field("finished", &self.state.outcome.lock().is_some())
            .finish()
    }
}

impl JobHandle {
    /// The service-assigned job id.
    pub fn id(&self) -> u64 {
        self.job
    }

    /// Blocks until the job finishes and returns its outcome.
    pub fn join(&self) -> JobOutcome {
        let mut slot = self.state.outcome.lock();
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            self.state.ready.wait(&mut slot);
        }
    }

    /// The outcome, if the job already finished.
    pub fn try_outcome(&self) -> Option<JobOutcome> {
        self.state.outcome.lock().clone()
    }
}

struct Job {
    id: u64,
    spec: JobSpec,
    reservation: Reservation,
    state: Arc<JobState>,
    /// Telemetry-clock reading at admission.
    submitted: Duration,
    /// Checkpoint to resume from (journal replay or crash requeue).
    resume: Option<Box<WalkerCheckpoint>>,
}

/// Tracks in-flight jobs so shutdown can wait for the pool to drain
/// (and fail the stragglers when the deadline expires).
#[derive(Default)]
struct Outstanding {
    count: Mutex<u64>,
    zero: Condvar,
}

impl Outstanding {
    fn inc(&self) {
        *self.count.lock() += 1;
    }

    fn dec(&self) {
        let mut count = self.count.lock();
        *count = count.saturating_sub(1);
        if *count == 0 {
            self.zero.notify_all();
        }
    }

    /// Waits until no jobs are in flight; with a deadline, returns
    /// whether the pool actually drained.
    fn wait_drained(&self, timeout: Option<Duration>) -> bool {
        let mut count = self.count.lock();
        match timeout {
            None => {
                while *count > 0 {
                    self.zero.wait(&mut count);
                }
                true
            }
            Some(timeout) => {
                // ma-lint: allow(wall-clock) reason="the drain deadline is an operator real-time bound; it never feeds estimates"
                let deadline = std::time::Instant::now() + timeout;
                while *count > 0 {
                    // ma-lint: allow(wall-clock) reason="the drain deadline is an operator real-time bound; it never feeds estimates"
                    let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                    if remaining.is_zero() {
                        return false;
                    }
                    self.zero.wait_for(&mut count, remaining);
                }
                true
            }
        }
    }
}

/// What [`Service::shutdown`] did.
#[derive(Clone, Debug, Default)]
pub struct ShutdownReport {
    /// Whether every in-flight job finished before the deadline.
    pub clean: bool,
    /// Jobs journaled as interrupted when the drain deadline expired;
    /// their handles failed with [`ServiceError::Interrupted`].
    pub interrupted: Vec<u64>,
}

/// What startup journal replay recovered; see [`Service::recovery`].
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Valid journal records replayed.
    pub records: u64,
    /// Bytes dropped repairing a torn tail.
    pub dropped_bytes: u64,
    /// Jobs the journal showed as settled.
    pub settled_jobs: u64,
    /// Calls those settled jobs had consumed (adopted into the quota).
    pub adopted_calls: u64,
    /// Unsettled jobs requeued (from their latest checkpoint, when one
    /// was journaled).
    pub resumed_jobs: u64,
    /// Unsettled jobs that could not be re-admitted (quota shrank);
    /// they stay unsettled in the journal for the next startup.
    pub abandoned_jobs: u64,
}

/// Everything a worker (and the supervisor that respawns workers) needs,
/// shared behind one `Arc` so respawning is a single clone + spawn.
struct WorkerCtx {
    receiver: Arc<Mutex<mpsc::Receiver<Job>>>,
    platform: Arc<Platform>,
    api: ApiProfile,
    shared_layer: Arc<dyn CacheLayer>,
    quota: GlobalQuota,
    metrics: Arc<MetricsRegistry>,
    clock: Arc<TelemetryClock>,
    faulty: Option<Arc<FaultyPlatform>>,
    custom_backend: Option<Arc<dyn ApiBackend>>,
    default_retry: RetryPolicy,
    tracer: Tracer,
    journal: Option<Arc<Journal>>,
    injector: Option<Arc<CrashInjector>>,
    checkpoint_every: u64,
    outstanding: Arc<Outstanding>,
    inflight: Arc<Mutex<HashMap<u64, Arc<JobState>>>>,
    supervisor: mpsc::Sender<SupervisorMsg>,
    stats: Arc<StatsHub>,
    stats_every: u64,
    coalescer: Option<Arc<CoalescingSharedCache>>,
    pipeline: bool,
    inflight_policy: InflightPolicy,
    chains: usize,
    step_cap: Option<usize>,
    sched_counters: Arc<SchedCounters>,
}

enum SupervisorMsg {
    /// A worker died at a crashpoint; `job` is present unless the job
    /// had already published its outcome (post-settlement crash).
    Crashed {
        point: String,
        job: Option<Box<Job>>,
    },
    Shutdown,
}

/// The long-running engine. Dropping it (or calling
/// [`shutdown`](Service::shutdown)) drains in-flight jobs and joins the
/// workers.
pub struct Service {
    platform: Arc<Platform>,
    api: ApiProfile,
    cache: Arc<SharedApiCache>,
    coalescer: Option<Arc<CoalescingSharedCache>>,
    quota: GlobalQuota,
    metrics: Arc<MetricsRegistry>,
    clock: Arc<TelemetryClock>,
    faulty: Option<Arc<FaultyPlatform>>,
    tracer: Tracer,
    journal: Option<Arc<Journal>>,
    injector: Option<Arc<CrashInjector>>,
    sender: Option<mpsc::Sender<Job>>,
    supervisor: Option<(mpsc::Sender<SupervisorMsg>, JoinHandle<()>)>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    outstanding: Arc<Outstanding>,
    inflight: Arc<Mutex<HashMap<u64, Arc<JobState>>>>,
    next_id: AtomicU64,
    drain_timeout: Option<Duration>,
    recovery: Option<RecoveryReport>,
    recovered_handles: Vec<JobHandle>,
    drained: bool,
    stats: Arc<StatsHub>,
    sched_counters: Arc<SchedCounters>,
}

impl Service {
    /// Starts a service over `platform` accessed through `api`,
    /// panicking if the journal directory cannot be opened; use
    /// [`Service::start`] to handle journal I/O errors.
    pub fn new(platform: Arc<Platform>, api: ApiProfile, config: ServiceConfig) -> Self {
        // ma-lint: allow(panic-safety) reason="documented contract: new() panics when the journal cannot open; start() is the fallible path"
        Service::start(platform, api, config).expect("journal directory opens")
    }

    /// Starts a service, replaying the journal (when configured) and
    /// requeueing the jobs a previous process left unsettled.
    pub fn start(
        platform: Arc<Platform>,
        api: ApiProfile,
        config: ServiceConfig,
    ) -> io::Result<Self> {
        let cache = Arc::new(SharedApiCache::new(config.cache).with_tracer(config.tracer.clone()));
        // When coalescing is on, every job sees the cache through one
        // shared singleflight combinator, so concurrent misses on a key
        // collapse into a single platform fetch service-wide.
        let coalescer = config.coalesce.then(|| {
            Arc::new(CoalescingLayer::new(Arc::clone(&cache)).with_tracer(config.tracer.clone()))
        });
        let shared_layer: Arc<dyn CacheLayer> = match &coalescer {
            Some(layer) => Arc::clone(layer) as Arc<dyn CacheLayer>,
            None => Arc::clone(&cache) as Arc<dyn CacheLayer>,
        };
        let quota = match config.global_quota {
            Some(limit) => GlobalQuota::limited(limit),
            None => GlobalQuota::unlimited(),
        };
        let metrics = Arc::new(MetricsRegistry::with_mode(config.telemetry));
        // An enabled tracer's clock doubles as the telemetry clock, so
        // trace ticks and queue/exec totals come from one stream.
        let clock = config
            .tracer
            .clock()
            .cloned()
            .unwrap_or_else(|| Arc::new(TelemetryClock::new(config.telemetry)));
        // One injector shared by all workers, so fault counters and the
        // per-key attempt history are service-wide.
        let faulty = config
            .fault_plan
            .map(|plan| Arc::new(FaultyPlatform::new(Arc::clone(&platform), plan)));
        let injector = config
            .crash_plan
            .map(|plan| Arc::new(CrashInjector::new(plan)));
        let (journal, replayed): (Option<Arc<Journal>>, Option<ReplaySummary>) =
            match &config.journal {
                Some(dir) => {
                    let (journal, summary) = Journal::open(dir, Arc::clone(&clock))?;
                    (Some(Arc::new(journal)), Some(summary))
                }
                None => (None, None),
            };
        let stats = config
            .stats
            .unwrap_or_else(|| Arc::new(StatsHub::new(StatsConfig::default())));
        let (sender, receiver) = mpsc::channel::<Job>();
        let (sup_sender, sup_receiver) = mpsc::channel::<SupervisorMsg>();
        // One counter block shared by every worker's scheduler, so the
        // pipeline gauges are service-wide like the fault counters.
        let sched_counters = Arc::new(SchedCounters::default());
        let ctx = Arc::new(WorkerCtx {
            receiver: Arc::new(Mutex::new(receiver)),
            platform: Arc::clone(&platform),
            api: api.clone(),
            shared_layer,
            quota: quota.clone(),
            metrics: Arc::clone(&metrics),
            clock: Arc::clone(&clock),
            faulty: faulty.clone(),
            custom_backend: config.backend.clone(),
            default_retry: config.retry,
            tracer: config.tracer.clone(),
            journal: journal.clone(),
            injector: injector.clone(),
            checkpoint_every: config.checkpoint_every,
            outstanding: Arc::new(Outstanding::default()),
            inflight: Arc::new(Mutex::new(HashMap::new())),
            supervisor: sup_sender.clone(),
            stats: Arc::clone(&stats),
            stats_every: config.stats_every,
            coalescer: coalescer.clone(),
            pipeline: config.pipeline,
            inflight_policy: config.inflight,
            chains: config.chains.max(1),
            step_cap: config.step_cap,
            sched_counters: Arc::clone(&sched_counters),
        });
        let workers = Arc::new(Mutex::new(
            (0..config.workers.max(1))
                .map(|_| spawn_worker(Arc::clone(&ctx)))
                .collect::<Vec<_>>(),
        ));
        let supervisor_handle = {
            let ctx = Arc::clone(&ctx);
            let workers = Arc::clone(&workers);
            let jobs = sender.clone();
            std::thread::spawn(move || supervisor_loop(ctx, sup_receiver, workers, jobs))
        };
        let mut service = Service {
            platform,
            api,
            cache,
            coalescer,
            quota,
            metrics,
            clock,
            faulty,
            tracer: config.tracer,
            journal,
            injector,
            sender: Some(sender),
            supervisor: Some((sup_sender, supervisor_handle)),
            workers,
            outstanding: Arc::clone(&ctx.outstanding),
            inflight: Arc::clone(&ctx.inflight),
            next_id: AtomicU64::new(0),
            drain_timeout: config.drain_timeout,
            recovery: None,
            recovered_handles: Vec::new(),
            drained: false,
            stats,
            sched_counters: Arc::clone(&ctx.sched_counters),
        };
        if let Some(summary) = replayed {
            service.recover(summary);
        }
        Ok(service)
    }

    /// Folds a journal replay into the running service: adopt consumed
    /// quota for settled jobs, requeue unsettled jobs from their latest
    /// checkpoint.
    fn recover(&mut self, summary: ReplaySummary) {
        self.next_id.store(summary.next_job_id, Ordering::Relaxed);
        self.quota.adopt(summary.consumed);
        if summary.dropped_bytes > 0 {
            self.metrics.record_journal_dropped(1);
        }
        let mut report = RecoveryReport {
            records: summary.records,
            dropped_bytes: summary.dropped_bytes,
            settled_jobs: summary.settled_jobs,
            adopted_calls: summary.consumed,
            ..RecoveryReport::default()
        };
        for recovered in summary.recovered {
            let Ok(reservation) = self.quota.try_reserve(recovered.spec.budget) else {
                // The quota shrank under the journal; leave the job
                // unsettled so the next startup can retry it.
                report.abandoned_jobs += 1;
                self.metrics.record_interrupted();
                continue;
            };
            self.metrics.record_submitted();
            self.metrics.record_resumed();
            let state = Arc::new(JobState::default());
            self.recovered_handles.push(JobHandle {
                job: recovered.job,
                state: Arc::clone(&state),
            });
            self.inflight
                .lock()
                .insert(recovered.job, Arc::clone(&state));
            self.outstanding.inc();
            report.resumed_jobs += 1;
            let submitted = self.clock.now();
            // A requeue re-enters the pipeline at the admit stage with
            // zero admission latency (the reservation already exists).
            self.stats.record_admit(submitted.as_micros() as u64, 0);
            let job = Job {
                id: recovered.job,
                spec: recovered.spec,
                reservation,
                state,
                submitted,
                resume: recovered.checkpoint,
            };
            if let Some(sender) = &self.sender {
                if let Err(mpsc::SendError(job)) = sender.send(job) {
                    let id = job.id;
                    self.quota.settle(job.reservation, 0);
                    self.outstanding.dec();
                    trace_settle(&self.tracer, id, 0, "send_failed");
                }
            }
        }
        if self.tracer.is_enabled() {
            self.tracer.emit(
                Category::Recovery,
                "replay",
                &[
                    ("records", FieldValue::U64(report.records)),
                    ("dropped_bytes", FieldValue::U64(report.dropped_bytes)),
                    ("settled_jobs", FieldValue::U64(report.settled_jobs)),
                    ("resumed_jobs", FieldValue::U64(report.resumed_jobs)),
                ],
            );
        }
        self.recovery = Some(report);
    }

    /// Admits `spec` if the global quota can cover its budget, queueing
    /// it for the next free worker.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, ServiceError> {
        let admit_start = self.clock.now();
        let reservation = self.quota.try_reserve(spec.budget).map_err(|available| {
            self.metrics.record_rejected();
            ServiceError::Rejected {
                requested: spec.budget,
                available,
            }
        })?;
        self.metrics.record_submitted();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Write-ahead: admission and reservation are journaled before
        // the job can run, so a crash at any later point finds them.
        if let Some(journal) = &self.journal {
            let _ = journal.append(&JournalRecord::Admit {
                job: id,
                spec: spec.clone(),
            });
            let _ = journal.append(&JournalRecord::Reserve {
                job: id,
                amount: reservation.amount(),
            });
        }
        let state = Arc::new(JobState::default());
        let handle = JobHandle {
            job: id,
            state: Arc::clone(&state),
        };
        self.inflight.lock().insert(id, Arc::clone(&state));
        self.outstanding.inc();
        let submitted = self.clock.now();
        self.stats.record_admit(
            submitted.as_micros() as u64,
            submitted.saturating_sub(admit_start).as_micros() as u64,
        );
        let job = Job {
            id,
            spec,
            reservation,
            state,
            submitted,
            resume: None,
        };
        let send_failed = |job: Job| {
            // Workers are gone; release the reservation untouched.
            self.inflight.lock().remove(&job.id);
            self.outstanding.dec();
            let id = job.id;
            self.quota.settle(job.reservation, 0);
            trace_settle(&self.tracer, id, 0, "send_failed");
            ServiceError::ShuttingDown
        };
        let Some(sender) = self.sender.as_ref() else {
            return Err(send_failed(job));
        };
        if let Err(mpsc::SendError(job)) = sender.send(job) {
            return Err(send_failed(job));
        }
        Ok(handle)
    }

    /// Drains queued jobs and joins the workers. With a
    /// [`ServiceConfig::drain_timeout`], jobs still running at the
    /// deadline are journaled as interrupted and their handles fail with
    /// [`ServiceError::Interrupted`] instead of blocking forever.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.drain()
    }

    fn drain(&mut self) -> ShutdownReport {
        self.drained = true;
        // Closing the channel lets workers finish the queue and exit.
        self.sender.take();
        let clean = self.outstanding.wait_drained(self.drain_timeout);
        let mut interrupted = Vec::new();
        if !clean {
            // Deadline expired: fail the stragglers' handles and journal
            // them as interrupted so the next startup recovers them.
            // Their reservations are owned by hung workers and stay
            // booked — accurate, since the work may still be running.
            let stranded: Vec<(u64, Arc<JobState>)> = self.inflight.lock().drain().collect();
            for (id, state) in stranded {
                let failed = JobOutcome::Failed {
                    job: id,
                    error: ServiceError::Interrupted,
                    charged: 0,
                    resilience: ResilienceStats::default(),
                };
                // ma-lint: allow(lock-order) reason="the inflight guard above is a temporary released when `stranded` finishes collecting; only the Vec outlives that statement"
                let mut slot = state.outcome.lock();
                if slot.is_none() {
                    *slot = Some(failed);
                    state.ready.notify_all();
                    drop(slot);
                    if let Some(journal) = &self.journal {
                        let _ = journal.append(&JournalRecord::Interrupted { job: id });
                    }
                    self.metrics.record_interrupted();
                    self.outstanding.dec();
                    interrupted.push(id);
                }
            }
        }
        if let Some((sender, handle)) = self.supervisor.take() {
            let _ = sender.send(SupervisorMsg::Shutdown);
            let _ = handle.join();
        }
        let workers = std::mem::take(&mut *self.workers.lock());
        if interrupted.is_empty() {
            for worker in workers {
                let _ = worker.join();
            }
        }
        // else: some workers are hung on interrupted jobs — detach them;
        // the process is exiting and the journal has what recovery needs.
        if let Some(journal) = &self.journal {
            let _ = journal.sync();
        }
        ShutdownReport { clean, interrupted }
    }

    /// The world being estimated over.
    pub fn platform(&self) -> &Arc<Platform> {
        &self.platform
    }

    /// The API profile in force.
    pub fn api_profile(&self) -> &ApiProfile {
        &self.api
    }

    /// The shared cross-query cache.
    pub fn cache(&self) -> &Arc<SharedApiCache> {
        &self.cache
    }

    /// A point-in-time view of the shared cache.
    pub fn cache_snapshot(&self) -> SharedCacheSnapshot {
        self.cache.snapshot()
    }

    /// The fault injector, when the service was configured with a
    /// [`ServiceConfig::fault_plan`]. Its counters report how many
    /// failures the resilience stack had to absorb.
    pub fn fault_injector(&self) -> Option<&Arc<FaultyPlatform>> {
        self.faulty.as_ref()
    }

    /// The crash injector, when the service was configured with a
    /// [`ServiceConfig::crash_plan`].
    pub fn crash_injector(&self) -> Option<&Arc<CrashInjector>> {
        self.injector.as_ref()
    }

    /// The write-ahead journal, when configured.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// What startup journal replay recovered, when a journal was
    /// configured.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Handles of the jobs startup replay requeued, in admission order;
    /// join them like freshly submitted jobs.
    pub fn recovered_jobs(&self) -> &[JobHandle] {
        &self.recovered_handles
    }

    /// The global quota accountant.
    pub fn quota(&self) -> &GlobalQuota {
        &self.quota
    }

    /// The time source behind `queue_wait`/`exec` telemetry.
    pub fn telemetry_clock(&self) -> &Arc<TelemetryClock> {
        &self.clock
    }

    /// Miss-coalescing counters, when coalescing is enabled.
    pub fn coalesce_stats(&self) -> Option<CoalesceStats> {
        self.coalescer.as_ref().map(|layer| layer.stats())
    }

    /// A point-in-time copy of the service counters. Coalescing counters
    /// live on the singleflight layer and journal drop counters on the
    /// journal (they are service-wide, not per-job), so the snapshot
    /// overlays them here.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        if let Some(stats) = self.coalesce_stats() {
            snap.coalesce_leads = stats.leads;
            snap.coalesce_waits = stats.waits;
            snap.coalesce_aborts = stats.aborts;
            snap.coalesce_peak_inflight = stats.peak_inflight;
        }
        if let Some(journal) = &self.journal {
            snap.journal_records_dropped += journal.dropped_appends();
        }
        snap
    }

    /// Worker thread count (including supervisor respawns).
    pub fn workers(&self) -> usize {
        self.workers.lock().len()
    }

    /// The live-telemetry hub (DESIGN.md §14).
    pub fn stats_hub(&self) -> &Arc<StatsHub> {
        &self.stats
    }

    /// A stable-JSON snapshot of the live telemetry: conserved totals,
    /// per-stage latency percentiles, rate-window histories, per-query
    /// convergence and current operational gauges.
    pub fn stats_snapshot(&self) -> String {
        self.stats.snapshot_json(&self.gauges())
    }

    /// Emits one stats emission (`window`/`gauges`/`query` events)
    /// through the service tracer; no-op when the tracer is disabled.
    pub fn emit_stats(&self) {
        self.stats.emit(&self.tracer, self.gauges());
    }

    /// A point-in-time copy of the fetch-pipeline counters (all zero
    /// when [`ServiceConfig::pipeline`] is off).
    pub fn sched_stats(&self) -> SchedStats {
        self.sched_counters.snapshot()
    }

    fn gauges(&self) -> GaugeReading {
        gauges_from(
            &self.quota,
            &self.inflight,
            &self.metrics,
            self.coalescer.as_ref(),
            &self.sched_counters,
        )
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        if !self.drained {
            let _ = self.drain();
        }
    }
}

fn spawn_worker(ctx: Arc<WorkerCtx>) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let backend: &dyn ApiBackend = match (&ctx.faulty, &ctx.custom_backend) {
            (Some(injector), _) => &**injector,
            (None, Some(custom)) => &**custom,
            (None, None) => &*ctx.platform,
        };
        if !ctx.pipeline {
            let mut analyzer =
                MicroblogAnalyzer::with_backend(backend, ctx.api.clone()).with_chains(ctx.chains);
            if let Some(cap) = ctx.step_cap {
                analyzer = analyzer.with_step_cap(cap);
            }
            worker_loop(&analyzer, &ctx, None);
            return;
        }
        // Pipelined: this worker's jobs announce upcoming fetches to a
        // scheduler whose prefetcher threads keep `depth` calls in
        // flight. The scheduler outlives the scope so the prefetchers
        // can borrow it; the guard closes it on every exit path
        // (including unwinds), so the scope join cannot hang on a
        // parked prefetcher.
        let sched = FetchScheduler::new(backend, Arc::clone(&ctx.sched_counters));
        std::thread::scope(|scope| {
            let _guard = SchedCloseGuard(&sched);
            for _ in 0..ctx.inflight_policy.depth() {
                scope.spawn(|| sched.run_prefetcher());
            }
            let mut analyzer = MicroblogAnalyzer::with_backend(&sched, ctx.api.clone())
                .with_chains(ctx.chains)
                .with_prefetch(&sched);
            if let Some(cap) = ctx.step_cap {
                analyzer = analyzer.with_step_cap(cap);
            }
            worker_loop(&analyzer, &ctx, Some(&sched));
        });
    })
}

/// The worker's job loop: pull, run, and — when pipelining — scrub the
/// scheduler between jobs.
fn worker_loop(
    analyzer: &MicroblogAnalyzer<'_>,
    ctx: &Arc<WorkerCtx>,
    sched: Option<&FetchScheduler<'_>>,
) {
    loop {
        // Hold the lock only to pull the next job; when the channel
        // closes (all senders dropped) the worker exits.
        let job = match ctx.receiver.lock().recv() {
            Ok(job) => job,
            Err(_) => break,
        };
        let end = run_job(analyzer, ctx, job);
        // Between jobs the scheduler must be empty. Keys a walk-ending
        // break stranded are dropped, and their speculative fetches are
        // rolled back on the shared fault schedule — so the next job
        // (and a crash-requeued resume of this one) sees exactly the
        // per-key attempt counters a sequential run would.
        if let Some(sched) = sched {
            let stranded = sched.reset();
            if let Some(faulty) = &ctx.faulty {
                for key in &stranded {
                    faulty.forget_attempt(key.endpoint(), key.fault_key());
                }
            }
        }
        match end {
            RunEnd::Done => {}
            RunEnd::Crashed { point, job } => {
                // A crashpoint killed this worker: hand the job to
                // the supervisor (which respawns a replacement) and
                // die.
                let _ = ctx.supervisor.send(SupervisorMsg::Crashed { point, job });
                return;
            }
        }
    }
}

/// Watches for crashed workers: respawns each one and requeues its job
/// from the last checkpoint. Exits on [`SupervisorMsg::Shutdown`],
/// dropping its job-sender clone so draining workers can see the
/// channel close.
fn supervisor_loop(
    ctx: Arc<WorkerCtx>,
    inbox: mpsc::Receiver<SupervisorMsg>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    jobs: mpsc::Sender<Job>,
) {
    while let Ok(msg) = inbox.recv() {
        let SupervisorMsg::Crashed { point, job } = msg else {
            break;
        };
        ctx.metrics.record_respawned();
        // ma-lint: allow(lock-across-call) reason="spawn_worker only spawns; the fetch it reaches runs on the new worker thread, not under this guard"
        workers.lock().push(spawn_worker(Arc::clone(&ctx)));
        if ctx.tracer.is_enabled() {
            ctx.tracer.emit(
                Category::Recovery,
                "respawn",
                &[
                    ("point", FieldValue::Str(point.clone())),
                    (
                        "job_id",
                        FieldValue::U64(job.as_ref().map_or(u64::MAX, |j| j.id)),
                    ),
                ],
            );
        }
        let Some(job) = job else { continue };
        if job.state.outcome.lock().is_some() {
            continue; // settled and published before dying
        }
        // A torn-tail crash invalidates the journal for this process:
        // requeueing would run the job without durable settlement, so
        // park it for the next startup instead.
        let torn = ctx.injector.as_ref().is_some_and(|inj| {
            inj.plan().point == point && matches!(inj.plan().mode, CrashMode::TornTail { .. })
        });
        if torn {
            let job = *job;
            let id = job.id;
            interrupt_job(&ctx, id, &job.state);
            ctx.quota.settle(job.reservation, 0);
            trace_settle(&ctx.tracer, id, 0, "torn_tail");
            continue;
        }
        if let Err(mpsc::SendError(job)) = jobs.send(*job) {
            // Shutdown raced the requeue; park the job for recovery.
            let id = job.id;
            interrupt_job(&ctx, id, &job.state);
            ctx.quota.settle(job.reservation, 0);
            trace_settle(&ctx.tracer, id, 0, "requeue_raced");
        }
    }
}

/// Emits the `settle` job event right after the quota settlement. A job
/// id settles at most once per process lifetime (crash requeues carry
/// the reservation instead of settling it) — `ma-verify` replays traces
/// and asserts exactly that.
fn trace_settle(tracer: &Tracer, job: u64, used: u64, reason: &str) {
    if !tracer.is_enabled() {
        return;
    }
    tracer.emit(
        Category::Job,
        "settle",
        &[
            ("job_id", FieldValue::U64(job)),
            ("used", FieldValue::U64(used)),
            ("reason", FieldValue::Str(reason.to_string())),
        ],
    );
}

/// Fails a job's handle with [`ServiceError::Interrupted`] and journals
/// the interruption so the next startup recovers it.
fn interrupt_job(ctx: &WorkerCtx, id: u64, state: &Arc<JobState>) {
    let mut slot = state.outcome.lock();
    if slot.is_some() {
        return;
    }
    *slot = Some(JobOutcome::Failed {
        job: id,
        error: ServiceError::Interrupted,
        charged: 0,
        resilience: ResilienceStats::default(),
    });
    state.ready.notify_all();
    drop(slot);
    if let Some(journal) = &ctx.journal {
        let _ = journal.append(&JournalRecord::Interrupted { job: id });
    }
    ctx.metrics.record_interrupted();
    ctx.inflight.lock().remove(&id);
    ctx.outstanding.dec();
}

/// The per-job checkpoint sink: journals every checkpoint, keeps the
/// latest in memory for crash requeues, and hosts the `checkpoint`
/// crashpoint.
struct JobSink {
    job: u64,
    journal: Option<Arc<Journal>>,
    injector: Option<Arc<CrashInjector>>,
    metrics: Arc<MetricsRegistry>,
    tracer: Tracer,
    latest: std::sync::Mutex<Option<Box<WalkerCheckpoint>>>,
}

impl JobSink {
    fn new(job: u64, ctx: &WorkerCtx) -> Self {
        JobSink {
            job,
            journal: ctx.journal.clone(),
            injector: ctx.injector.clone(),
            metrics: Arc::clone(&ctx.metrics),
            tracer: ctx.tracer.clone(),
            latest: std::sync::Mutex::new(None),
        }
    }

    fn take_latest(&self) -> Option<Box<WalkerCheckpoint>> {
        // The sink's own panics (crash injection) can poison this lock;
        // the checkpoint inside is still whole.
        self.latest.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

impl CheckpointSink for JobSink {
    fn record(&self, checkpoint: &WalkerCheckpoint) {
        if let Some(journal) = &self.journal {
            let _ = journal.append(&JournalRecord::Checkpoint {
                job: self.job,
                checkpoint: Box::new(checkpoint.clone()),
            });
        }
        self.metrics.record_checkpoint();
        if self.tracer.is_enabled() {
            self.tracer.emit(
                Category::Checkpoint,
                "checkpoint",
                &[
                    ("job_id", FieldValue::U64(self.job)),
                    ("steps", FieldValue::U64(checkpoint.steps)),
                    // `steps` is a per-phase marker (pilot candidates,
                    // then walk instances); `charged` is the cumulative
                    // budget spend at capture — the counter that must
                    // never run backwards, across phases and resumes
                    // alike. `ma-verify` audits it.
                    ("charged", FieldValue::U64(checkpoint.client.charged)),
                ],
            );
        }
        *self.latest.lock().unwrap_or_else(|e| e.into_inner()) = Some(Box::new(checkpoint.clone()));
        // The checkpoint is durable (journaled above) before the
        // crashpoint fires, so a kill here resumes from *this*
        // checkpoint.
        crash_check(&self.injector, &self.journal, "checkpoint");
    }
}

/// Evaluates a crashpoint: kills the calling thread (and, for torn-tail
/// shots, tears the journal first) when the armed plan fires.
fn crash_check(injector: &Option<Arc<CrashInjector>>, journal: &Option<Arc<Journal>>, point: &str) {
    let Some(injector) = injector else { return };
    match injector.check(point) {
        None => {}
        Some(CrashMode::Kill) => {
            // ma-lint: allow(panic-safety) reason="deliberate crash injection; the supervisor catches this panic by prefix"
            panic!("{CRASH_PANIC_PREFIX}{point}");
        }
        Some(CrashMode::TornTail { drop }) => {
            if let Some(journal) = journal {
                let _ = journal.truncate_tail(drop);
            }
            // ma-lint: allow(panic-safety) reason="deliberate crash injection; the supervisor catches this panic by prefix"
            panic!("{CRASH_PANIC_PREFIX}{point}");
        }
    }
}

enum RunEnd {
    Done,
    /// A crashpoint killed the job mid-run; `job` is `None` when the
    /// outcome was already published (nothing to requeue).
    Crashed {
        point: String,
        job: Option<Box<Job>>,
    },
}

fn run_job(analyzer: &MicroblogAnalyzer<'_>, ctx: &WorkerCtx, mut job: Job) -> RunEnd {
    let started = ctx.clock.now();
    let queue_wait = started.saturating_sub(job.submitted);
    let shared: Arc<dyn CacheLayer> = Arc::clone(&ctx.shared_layer);
    let policy = job.spec.retry.unwrap_or(ctx.default_retry);
    let tracer = &ctx.tracer;
    let span = if tracer.is_enabled() {
        tracer.span_start(
            Category::Job,
            "job",
            &[
                ("job_id", FieldValue::U64(job.id)),
                ("algorithm", FieldValue::from(job.spec.algorithm.name())),
                ("budget", FieldValue::U64(job.spec.budget)),
                ("seed", FieldValue::U64(job.spec.seed)),
                (
                    "queue_wait_micros",
                    FieldValue::U64(queue_wait.as_micros() as u64),
                ),
                ("resumed", FieldValue::U64(job.resume.is_some() as u64)),
            ],
        )
    } else {
        0
    };
    let sink = JobSink::new(job.id, ctx);
    let checkpoints_on =
        ctx.checkpoint_every > 0 && (ctx.journal.is_some() || ctx.injector.is_some());
    // A panicking estimator must not strand joiners: catch it, settle the
    // reservation, and surface it as an outcome like any other failure.
    // Crash-injection panics are the exception — they unwind through
    // here and are handed to the supervisor for requeue.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        crash_check(&ctx.injector, &ctx.journal, "post_admit");
        crash_check(&ctx.injector, &ctx.journal, "post_reserve");
        let mut ctl = if checkpoints_on {
            CheckpointCtl::new(ctx.checkpoint_every, &sink)
        } else {
            CheckpointCtl::disabled()
        };
        let report = analyzer.run_recoverable(
            &job.spec.query,
            job.spec.budget,
            job.spec.algorithm,
            job.spec.seed,
            Some(shared),
            &policy,
            tracer.clone(),
            &mut ctl,
            job.resume.as_deref(),
        );
        crash_check(&ctx.injector, &ctx.journal, "pre_settle");
        report
    }));
    let exec = ctx.clock.now().saturating_sub(started);
    if tracer.is_enabled() {
        let (outcome, charged) = match &result {
            Ok(report) => (
                match &report.outcome {
                    Ok(_) => "ok".to_string(),
                    Err(e) => e.to_string(),
                },
                report.charged,
            ),
            Err(payload) => match crash_point(payload.as_ref()) {
                Some(point) => (format!("crash:{point}"), 0),
                None => ("panic".to_string(), job.reservation.amount()),
            },
        };
        tracer.span_end(
            Category::Job,
            "job",
            span,
            &[
                ("job_id", FieldValue::U64(job.id)),
                ("charged", FieldValue::U64(charged)),
                ("outcome", FieldValue::Str(outcome)),
                ("exec_micros", FieldValue::U64(exec.as_micros() as u64)),
            ],
        );
    }
    // Alongside the outcome, both settling paths hand the stats hub
    // their settlement facts (crash requeues carry their reservation
    // onward instead of settling, so they report nothing yet).
    let (outcome, stats_settle) = match result {
        Ok(report) => {
            // Settle down to what the run actually charged — success or
            // not, the unused remainder goes back to the pool. The
            // settle record is journaled before the outcome is
            // published, so recovery and the caller agree.
            let refunded = job.reservation.amount().saturating_sub(report.charged);
            ctx.quota.settle(job.reservation, report.charged);
            trace_settle(tracer, job.id, report.charged, "completed");
            if let Some(journal) = &ctx.journal {
                let _ = journal.append(&JournalRecord::Settle {
                    job: job.id,
                    used: report.charged,
                });
            }
            let jm = job_metrics(&report, refunded, queue_wait, exec);
            ctx.metrics.record_job(&jm);
            let settled = (jm, report.outcome.as_ref().ok().copied());
            let RunReport {
                outcome,
                charged,
                cache,
                resilience,
                degraded,
            } = report;
            let published = match outcome {
                Ok(estimate) => {
                    let output = JobOutput {
                        job: job.id,
                        estimate,
                        charged,
                        cache,
                        resilience,
                        queue_wait,
                        exec,
                    };
                    if degraded {
                        JobOutcome::Degraded(output)
                    } else {
                        JobOutcome::Complete(output)
                    }
                }
                Err(err) => JobOutcome::Failed {
                    job: job.id,
                    error: ServiceError::Estimation(err),
                    charged,
                    resilience,
                },
            };
            (published, Some(settled))
        }
        Err(panic) => {
            if let Some(point) = crash_point(panic.as_ref()) {
                // Deliberate crash: resume from the freshest checkpoint
                // this run emitted, falling back to the one it started
                // from. The reservation travels with the job — never
                // settled, so recovery cannot double-charge.
                let point = point.to_string();
                job.resume = sink.take_latest().or(job.resume);
                return RunEnd::Crashed {
                    point,
                    job: Some(Box::new(job)),
                };
            }
            // A real panic leaves no report, so nothing can be refunded:
            // the whole reservation is conservatively treated as consumed.
            let amount = job.reservation.amount();
            ctx.quota.settle(job.reservation, amount);
            trace_settle(tracer, job.id, amount, "panic");
            if let Some(journal) = &ctx.journal {
                let _ = journal.append(&JournalRecord::Settle {
                    job: job.id,
                    used: amount,
                });
            }
            let jm = JobMetrics {
                succeeded: false,
                degraded: false,
                charged_calls: amount,
                refunded_calls: 0,
                samples: 0,
                cache: CacheStats::default(),
                retries: 0,
                wasted_calls: 0,
                backoff_secs: 0,
                rate_limited_hits: 0,
                breaker_opens: 0,
                breaker_fast_fails: 0,
                queue_wait,
                exec,
            };
            ctx.metrics.record_job(&jm);
            (
                JobOutcome::Failed {
                    job: job.id,
                    error: ServiceError::WorkerPanicked(panic_message(panic.as_ref())),
                    charged: amount,
                    resilience: ResilienceStats::default(),
                },
                Some((jm, None)),
            )
        }
    };
    // Settlement stats (and any emission they trigger) must complete
    // before the outcome is published: once `join` returns the caller
    // may submit the next job, and its admission events would otherwise
    // race this job's stats on the shared logical clock — breaking the
    // byte-identical stats-stream guarantee.
    if let Some((jm, estimate)) = stats_settle {
        let settled_at = ctx.clock.now();
        let settle = settled_at.saturating_sub(started.saturating_add(exec));
        ctx.stats.record_settled(
            settled_at.as_micros() as u64,
            job.id,
            &jm,
            estimate.as_ref(),
            settle,
        );
        ctx.stats
            .maybe_emit(&ctx.tracer, ctx.stats_every, || gauge_reading(ctx));
    }
    let mut slot = job.state.outcome.lock();
    let fresh = slot.is_none();
    if fresh {
        // De-registration happens before the joiner wakes, for the same
        // reason stats do: a caller acting on `join` must observe this
        // job gone from the inflight gauge. Same outcome → inflight
        // nesting as `interrupt_job`.
        ctx.inflight.lock().remove(&job.id);
        ctx.outstanding.dec();
        *slot = Some(outcome);
        job.state.ready.notify_all();
    }
    drop(slot);
    // The worker may still be shot after full completion; recovery then
    // sees a settled job and reruns nothing.
    let post = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        crash_check(&ctx.injector, &ctx.journal, "post_settle");
    }));
    if post.is_err() {
        return RunEnd::Crashed {
            point: "post_settle".to_string(),
            job: None,
        };
    }
    RunEnd::Done
}

fn job_metrics(
    report: &RunReport,
    refunded: u64,
    queue_wait: Duration,
    exec: Duration,
) -> JobMetrics {
    let r = &report.resilience;
    JobMetrics {
        succeeded: report.outcome.is_ok(),
        degraded: report.degraded,
        charged_calls: report.charged,
        refunded_calls: refunded,
        samples: report.outcome.as_ref().map_or(0, |est| est.samples as u64),
        cache: report.cache,
        retries: r.retries,
        wasted_calls: r.wasted_calls(),
        backoff_secs: r.total_wait().0.max(0) as u64,
        rate_limited_hits: r.rate_limited_hits,
        breaker_opens: r.breaker_opens,
        breaker_fast_fails: r.breaker_fast_fails,
        queue_wait,
        exec,
    }
}

/// Samples the operational gauges one stats emission reports.
fn gauges_from(
    quota: &GlobalQuota,
    inflight: &Mutex<HashMap<u64, Arc<JobState>>>,
    metrics: &MetricsRegistry,
    coalescer: Option<&Arc<CoalescingSharedCache>>,
    sched: &SchedCounters,
) -> GaugeReading {
    let snap = metrics.snapshot();
    let coalesce = coalescer.map(|layer| layer.stats());
    let sched = sched.snapshot();
    GaugeReading {
        quota_consumed: quota.consumed(),
        quota_reserved: quota.reserved(),
        quota_remaining: quota.remaining(),
        inflight: inflight.lock().len() as u64,
        breaker_opens: snap.breaker_opens,
        breaker_fast_fails: snap.breaker_fast_fails,
        coalesce_leads: coalesce.as_ref().map_or(0, |c| c.leads),
        coalesce_waits: coalesce.as_ref().map_or(0, |c| c.waits),
        coalesce_aborts: coalesce.as_ref().map_or(0, |c| c.aborts),
        coalesce_peak_inflight: coalesce.as_ref().map_or(0, |c| c.peak_inflight),
        sched_announced: sched.announced,
        sched_prefetched: sched.prefetched,
        sched_hits: sched.hits,
        sched_waits: sched.waits,
        sched_claimed: sched.claimed,
        sched_stranded: sched.stranded,
        sched_peak_inflight: sched.peak_inflight,
    }
}

fn gauge_reading(ctx: &WorkerCtx) -> GaugeReading {
    gauges_from(
        &ctx.quota,
        &ctx.inflight,
        &ctx.metrics,
        ctx.coalescer.as_ref(),
        &ctx.sched_counters,
    )
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::JobSpec;
    use microblog_analyzer::query::parse::parse_query;
    use microblog_analyzer::Algorithm;
    use microblog_platform::scenario::{twitter_2013, Scale};

    fn tiny_service(quota: Option<u64>, workers: usize) -> Service {
        let scenario = twitter_2013(Scale::Tiny, 2014);
        Service::new(
            Arc::new(scenario.platform),
            ApiProfile::twitter(),
            ServiceConfig {
                workers,
                global_quota: quota,
                cache: SharedCacheConfig {
                    capacity: 4096,
                    shards: 4,
                },
                ..ServiceConfig::default()
            },
        )
    }

    fn spec(service: &Service, budget: u64, seed: u64) -> JobSpec {
        let query = parse_query(
            "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'",
            service.platform().keywords(),
        )
        .expect("query parses");
        JobSpec::new(query, Algorithm::MaTarw { interval: None }, budget, seed)
    }

    #[test]
    fn submit_join_produces_estimate_and_settles_quota() {
        let service = tiny_service(Some(50_000), 2);
        let spec = spec(&service, 4_000, 7);
        let handle = service.submit(spec).expect("admitted");
        let output = handle.join().into_result().expect("estimates");
        assert!(output.estimate.cost <= 4_000);
        assert_eq!(output.charged, output.estimate.cost);
        assert_eq!(service.quota().consumed(), output.charged);
        assert_eq!(service.quota().reserved(), 0);
        let snap = service.metrics_snapshot();
        assert_eq!(snap.jobs_submitted, 1);
        assert_eq!(snap.jobs_succeeded, 1);
        assert_eq!(snap.charged_calls, output.charged);
        let report = service.shutdown();
        assert!(report.clean);
        assert!(report.interrupted.is_empty());
    }

    #[test]
    fn admission_control_rejects_over_quota() {
        let service = tiny_service(Some(1_000), 1);
        let err = service.submit(spec(&service, 5_000, 7)).unwrap_err();
        assert_eq!(
            err,
            ServiceError::Rejected {
                requested: 5_000,
                available: 1_000
            }
        );
        assert_eq!(service.metrics_snapshot().jobs_rejected, 1);
        // A job the quota can cover is still admitted afterwards.
        let handle = service.submit(spec(&service, 1_000, 7)).expect("fits");
        assert!(handle.join().into_result().is_ok());
    }

    #[test]
    fn identical_jobs_share_the_cache() {
        let service = tiny_service(None, 2);
        let first = service.submit(spec(&service, 3_000, 11)).unwrap();
        let a = first.join().into_result().expect("first run");
        let second = service.submit(spec(&service, 3_000, 11)).unwrap();
        let b = second.join().into_result().expect("second run");
        // Logical charging keeps replays bit-identical...
        assert_eq!(a.estimate.value.to_bits(), b.estimate.value.to_bits());
        assert_eq!(a.estimate.cost, b.estimate.cost);
        // ...while the platform sees strictly fewer actual calls.
        assert!(b.cache.actual_calls < a.cache.actual_calls);
        assert!(b.cache.shared_hits > 0);
        assert!(service.cache_snapshot().hits() > 0);
    }

    #[test]
    fn logical_telemetry_is_reproducible() {
        let run = || {
            let service = tiny_service(None, 1);
            let out = service
                .submit(spec(&service, 2_000, 5))
                .unwrap()
                .join()
                .into_result()
                .expect("estimates");
            (out.queue_wait, out.exec)
        };
        let (first, second) = (run(), run());
        assert_eq!(first, second, "logical telemetry must replay identically");
        assert!(first.1 > Duration::ZERO);
    }

    #[test]
    fn handle_is_joinable_multiple_times() {
        let service = tiny_service(None, 1);
        let handle = service.submit(spec(&service, 2_000, 3)).unwrap();
        let first = handle.join().into_result().expect("ok");
        let again = handle.join().into_result().expect("still ok");
        assert_eq!(
            first.estimate.value.to_bits(),
            again.estimate.value.to_bits()
        );
        assert!(handle.try_outcome().is_some());
    }

    #[test]
    fn failed_jobs_refund_their_unused_reservation() {
        // A total outage: every fetch faults forever, so the job fails
        // before charging anything — the old behavior of burning the
        // whole reservation would leave the pool at 12_000 consumed.
        let scenario = twitter_2013(Scale::Tiny, 2014);
        let service = Service::new(
            Arc::new(scenario.platform),
            ApiProfile::twitter(),
            ServiceConfig {
                workers: 1,
                global_quota: Some(20_000),
                fault_plan: Some(FaultPlan::outage(7)),
                retry: RetryPolicy::resilient().with_max_attempts(2),
                ..ServiceConfig::default()
            },
        );
        let handle = service.submit(spec(&service, 12_000, 3)).expect("admitted");
        let outcome = handle.join();
        match &outcome {
            JobOutcome::Failed {
                error,
                charged,
                resilience,
                ..
            } => {
                assert!(matches!(error, ServiceError::Estimation(_)));
                assert_eq!(*charged, 0, "failed attempts charge the waste meter");
                assert!(resilience.fatal_errors > 0);
                assert!(!resilience.trail.is_empty());
            }
            other => panic!("expected Failed under a total outage, got {other:?}"),
        }
        assert_eq!(service.quota().consumed(), 0, "full refund");
        assert_eq!(service.quota().reserved(), 0);
        assert_eq!(service.quota().remaining(), Some(20_000));
        let snap = service.metrics_snapshot();
        assert_eq!(snap.jobs_failed, 1);
        assert_eq!(snap.refunded_calls, 12_000);
        assert!(snap.retries > 0);
    }

    #[test]
    fn absorbed_faults_leave_estimates_bit_identical() {
        let clean = tiny_service(None, 1);
        let baseline = clean
            .submit(spec(&clean, 3_000, 21))
            .unwrap()
            .join()
            .into_result()
            .expect("clean run");

        let scenario = twitter_2013(Scale::Tiny, 2014);
        let service = Service::new(
            Arc::new(scenario.platform),
            ApiProfile::twitter(),
            ServiceConfig {
                workers: 1,
                fault_plan: Some(FaultPlan::mixed(5, 0.2).with_max_consecutive(2)),
                retry: RetryPolicy::patient(),
                ..ServiceConfig::default()
            },
        );
        let outcome = service.submit(spec(&service, 3_000, 21)).unwrap().join();
        assert!(outcome.is_complete(), "all faults absorbed: {outcome:?}");
        let out = outcome.into_result().unwrap();
        assert_eq!(
            out.estimate.value.to_bits(),
            baseline.estimate.value.to_bits()
        );
        assert_eq!(out.estimate.cost, baseline.estimate.cost);
        assert_eq!(out.charged, baseline.charged);
        assert!(out.resilience.retries > 0, "a 20% plan must force retries");
        let injector = service.fault_injector().expect("configured");
        assert!(injector.injected().total() > 0);
    }
}
