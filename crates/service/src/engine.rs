//! The multi-query estimation engine.
//!
//! [`Service`] owns a worker pool, the [`SharedApiCache`], the
//! [`GlobalQuota`], and a [`MetricsRegistry`]. [`Service::submit`]
//! performs admission control — the job's full budget is reserved from
//! the global quota up front, so an admitted job can always run to its
//! budget — and hands back a [`JobHandle`] whose [`JobHandle::join`]
//! blocks until a worker has finished the job.
//!
//! Workers pull jobs from a single `mpsc` channel behind a mutex (the
//! classic shared-receiver pool), run the estimator with the shared
//! cache layered under the per-query client, settle the quota
//! reservation down to what the job actually charged, and publish the
//! outcome through the handle's condvar.

use crate::cache::{CoalescingSharedCache, SharedApiCache, SharedCacheConfig, SharedCacheSnapshot};
use crate::clock::{TelemetryClock, TelemetryMode};
use crate::metrics::{JobMetrics, MetricsRegistry, MetricsSnapshot};
use crate::quota::{GlobalQuota, Reservation};
use crate::request::JobSpec;
use microblog_analyzer::{Estimate, EstimateError, MicroblogAnalyzer, RunReport};
use microblog_api::cache::{CacheLayer, CacheStats, CoalesceStats, CoalescingLayer};
use microblog_api::{ApiProfile, ResilienceStats, RetryPolicy};
use microblog_obs::{Category, FieldValue, Tracer};
use microblog_platform::{ApiBackend, FaultPlan, FaultyPlatform, Platform};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// Sizing of a [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Service-wide API-call cap (`None` = unlimited; admission always
    /// succeeds).
    pub global_quota: Option<u64>,
    /// Shared cache layout.
    pub cache: SharedCacheConfig,
    /// Default retry policy for jobs that don't carry their own
    /// ([`JobSpec::retry`]). Faults a policy absorbs never touch the
    /// walk's budget or RNG, so estimates stay bit-identical to
    /// fault-free runs.
    pub retry: RetryPolicy,
    /// When set, all platform traffic flows through a
    /// [`FaultyPlatform`] injecting failures per this plan — the chaos
    /// knob behind `ma-cli serve --fault-plan`.
    pub fault_plan: Option<FaultPlan>,
    /// Time source for `queue_wait`/`exec` telemetry. The default
    /// logical clock keeps serve runs deterministic; `ma-cli serve
    /// --wall-telemetry` opts into real latencies.
    pub telemetry: TelemetryMode,
    /// Structured-trace handle. The default disabled tracer costs
    /// nothing; `ma-cli trace` passes an enabled one to record every
    /// job's walk/charge/resilience events. When the tracer is enabled
    /// its clock also drives `queue_wait`/`exec` telemetry, so traces
    /// and metrics share one tick stream.
    pub tracer: Tracer,
    /// Coalesce concurrent misses on the same cache key into one
    /// platform fetch (waiters park and receive the filled entry,
    /// charged exactly as a shared hit). On by default; the bench
    /// harness turns it off to measure the uncoalesced baseline.
    pub coalesce: bool,
    /// Override backend all platform traffic flows through — the bench
    /// harness plugs in a latency-simulating wrapper here so in-flight
    /// windows are as wide as a real network round-trip would make
    /// them. `fault_plan` takes precedence when both are set; `None`
    /// means the pristine platform.
    pub backend: Option<Arc<dyn ApiBackend>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            global_quota: None,
            cache: SharedCacheConfig::default(),
            retry: RetryPolicy::resilient(),
            fault_plan: None,
            telemetry: TelemetryMode::default(),
            tracer: Tracer::disabled(),
            coalesce: true,
            backend: None,
        }
    }
}

/// Why a job produced no estimate.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// Admission control refused the job: the uncommitted quota cannot
    /// cover its budget.
    Rejected {
        /// The budget the job asked for.
        requested: u64,
        /// Uncommitted calls left in the pool at refusal time.
        available: u64,
    },
    /// The estimator ran and failed.
    Estimation(EstimateError),
    /// The estimator panicked; the payload is the panic message.
    WorkerPanicked(String),
    /// The service is shutting down and no longer accepts jobs.
    ShuttingDown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Rejected {
                requested,
                available,
            } => write!(
                f,
                "rejected: budget {requested} exceeds the {available} uncommitted \
                 calls left in the global quota"
            ),
            ServiceError::Estimation(e) => write!(f, "estimation failed: {e}"),
            ServiceError::WorkerPanicked(msg) => write!(f, "estimator panicked: {msg}"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A finished job's results.
#[derive(Clone, Debug)]
pub struct JobOutput {
    /// The service-assigned job id.
    pub job: u64,
    /// The estimate.
    pub estimate: Estimate,
    /// API calls charged to the job's budget; the unspent remainder of
    /// the reservation was refunded to the global quota.
    pub charged: u64,
    /// The job client's cache traffic.
    pub cache: CacheStats,
    /// Retry/backoff/breaker accounting for the job's client.
    pub resilience: ResilienceStats,
    /// Time spent queued before a worker picked the job up.
    pub queue_wait: Duration,
    /// Time spent executing.
    pub exec: Duration,
}

/// How a job ended: fully, partially, or not at all. Every variant
/// settles the job's quota reservation down to what it actually charged
/// — unused calls go back to the pool either way.
#[must_use = "a JobOutcome carries the estimate (or failure) the job's budget paid for"]
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// Ran to its budget (or cache exhaustion) without giving up.
    Complete(JobOutput),
    /// A fatal resilience error (retries exhausted, deadline, breaker)
    /// ended the walk early, but the samples collected before it still
    /// produced an estimate. The error trail is in
    /// [`JobOutput::resilience`].
    Degraded(JobOutput),
    /// No estimate.
    Failed {
        /// The service-assigned job id.
        job: u64,
        /// What went wrong.
        error: ServiceError,
        /// API calls charged before the failure (the rest of the
        /// reservation was refunded).
        charged: u64,
        /// Retry/backoff/breaker accounting up to the failure.
        resilience: ResilienceStats,
    },
}

impl JobOutcome {
    /// The output, when an estimate exists (complete or degraded).
    pub fn output(&self) -> Option<&JobOutput> {
        match self {
            JobOutcome::Complete(out) | JobOutcome::Degraded(out) => Some(out),
            JobOutcome::Failed { .. } => None,
        }
    }

    /// `true` for [`JobOutcome::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, JobOutcome::Complete(_))
    }

    /// `true` for [`JobOutcome::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, JobOutcome::Degraded(_))
    }

    /// API calls the job charged (and settled against the quota).
    pub fn charged(&self) -> u64 {
        match self {
            JobOutcome::Complete(out) | JobOutcome::Degraded(out) => out.charged,
            JobOutcome::Failed { charged, .. } => *charged,
        }
    }

    /// The resilience accounting, whatever the ending.
    pub fn resilience(&self) -> &ResilienceStats {
        match self {
            JobOutcome::Complete(out) | JobOutcome::Degraded(out) => &out.resilience,
            JobOutcome::Failed { resilience, .. } => resilience,
        }
    }

    /// Collapses to a `Result`, treating a degraded estimate as success.
    pub fn into_result(self) -> Result<JobOutput, ServiceError> {
        match self {
            JobOutcome::Complete(out) | JobOutcome::Degraded(out) => Ok(out),
            JobOutcome::Failed { error, .. } => Err(error),
        }
    }
}

#[derive(Default)]
struct JobState {
    outcome: Mutex<Option<JobOutcome>>,
    ready: Condvar,
}

/// A ticket for an admitted job; [`join`](JobHandle::join) blocks until
/// the outcome is in. Handles are cheap to clone and joinable from any
/// thread, any number of times.
#[derive(Clone)]
pub struct JobHandle {
    job: u64,
    state: Arc<JobState>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("job", &self.job)
            .field("finished", &self.state.outcome.lock().is_some())
            .finish()
    }
}

impl JobHandle {
    /// The service-assigned job id.
    pub fn id(&self) -> u64 {
        self.job
    }

    /// Blocks until the job finishes and returns its outcome.
    pub fn join(&self) -> JobOutcome {
        let mut slot = self.state.outcome.lock();
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            self.state.ready.wait(&mut slot);
        }
    }

    /// The outcome, if the job already finished.
    pub fn try_outcome(&self) -> Option<JobOutcome> {
        self.state.outcome.lock().clone()
    }
}

struct Job {
    id: u64,
    spec: JobSpec,
    reservation: Reservation,
    state: Arc<JobState>,
    /// Telemetry-clock reading at admission.
    submitted: Duration,
}

/// The long-running engine. Dropping it (or calling
/// [`shutdown`](Service::shutdown)) drains in-flight jobs and joins the
/// workers.
pub struct Service {
    platform: Arc<Platform>,
    api: ApiProfile,
    cache: Arc<SharedApiCache>,
    coalescer: Option<Arc<CoalescingSharedCache>>,
    quota: GlobalQuota,
    metrics: Arc<MetricsRegistry>,
    clock: Arc<TelemetryClock>,
    faulty: Option<Arc<FaultyPlatform>>,
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Service {
    /// Starts a service over `platform` accessed through `api`.
    pub fn new(platform: Arc<Platform>, api: ApiProfile, config: ServiceConfig) -> Self {
        let cache = Arc::new(SharedApiCache::new(config.cache).with_tracer(config.tracer.clone()));
        // When coalescing is on, every job sees the cache through one
        // shared singleflight combinator, so concurrent misses on a key
        // collapse into a single platform fetch service-wide.
        let coalescer = config.coalesce.then(|| {
            Arc::new(CoalescingLayer::new(Arc::clone(&cache)).with_tracer(config.tracer.clone()))
        });
        let shared_layer: Arc<dyn CacheLayer> = match &coalescer {
            Some(layer) => Arc::clone(layer) as Arc<dyn CacheLayer>,
            None => Arc::clone(&cache) as Arc<dyn CacheLayer>,
        };
        let quota = match config.global_quota {
            Some(limit) => GlobalQuota::limited(limit),
            None => GlobalQuota::unlimited(),
        };
        let metrics = Arc::new(MetricsRegistry::with_mode(config.telemetry));
        // An enabled tracer's clock doubles as the telemetry clock, so
        // trace ticks and queue/exec totals come from one stream.
        let clock = config
            .tracer
            .clock()
            .cloned()
            .unwrap_or_else(|| Arc::new(TelemetryClock::new(config.telemetry)));
        // One injector shared by all workers, so fault counters and the
        // per-key attempt history are service-wide.
        let faulty = config
            .fault_plan
            .map(|plan| Arc::new(FaultyPlatform::new(Arc::clone(&platform), plan)));
        let custom_backend = config.backend.clone();
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                let platform = Arc::clone(&platform);
                let api = api.clone();
                let shared_layer = Arc::clone(&shared_layer);
                let quota = quota.clone();
                let metrics = Arc::clone(&metrics);
                let clock = Arc::clone(&clock);
                let faulty = faulty.clone();
                let custom_backend = custom_backend.clone();
                let default_retry = config.retry;
                let tracer = config.tracer.clone();
                std::thread::spawn(move || {
                    let analyzer = match (&faulty, &custom_backend) {
                        (Some(injector), _) => MicroblogAnalyzer::with_backend(&**injector, api),
                        (None, Some(custom)) => MicroblogAnalyzer::with_backend(&**custom, api),
                        (None, None) => MicroblogAnalyzer::new(&platform, api),
                    };
                    loop {
                        // Hold the lock only to pull the next job; when the
                        // channel closes (sender dropped) the worker exits.
                        let job = match receiver.lock().recv() {
                            Ok(job) => job,
                            Err(_) => break,
                        };
                        run_job(
                            &analyzer,
                            &shared_layer,
                            &quota,
                            &metrics,
                            &clock,
                            &default_retry,
                            &tracer,
                            job,
                        );
                    }
                })
            })
            .collect();
        Service {
            platform,
            api,
            cache,
            coalescer,
            quota,
            metrics,
            clock,
            faulty,
            sender: Some(sender),
            workers,
            next_id: AtomicU64::new(0),
        }
    }

    /// Admits `spec` if the global quota can cover its budget, queueing
    /// it for the next free worker.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, ServiceError> {
        let reservation = self.quota.try_reserve(spec.budget).map_err(|available| {
            self.metrics.record_rejected();
            ServiceError::Rejected {
                requested: spec.budget,
                available,
            }
        })?;
        self.metrics.record_submitted();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(JobState::default());
        let handle = JobHandle {
            job: id,
            state: Arc::clone(&state),
        };
        let job = Job {
            id,
            spec,
            reservation,
            state,
            submitted: self.clock.now(),
        };
        let sender = self.sender.as_ref().ok_or(ServiceError::ShuttingDown)?;
        if let Err(mpsc::SendError(job)) = sender.send(job) {
            // Workers are gone; release the reservation untouched.
            self.quota.settle(job.reservation, 0);
            return Err(ServiceError::ShuttingDown);
        }
        Ok(handle)
    }

    /// Drains queued jobs and joins the workers.
    pub fn shutdown(self) {
        // Drop runs the actual shutdown.
    }

    /// The world being estimated over.
    pub fn platform(&self) -> &Arc<Platform> {
        &self.platform
    }

    /// The API profile in force.
    pub fn api_profile(&self) -> &ApiProfile {
        &self.api
    }

    /// The shared cross-query cache.
    pub fn cache(&self) -> &Arc<SharedApiCache> {
        &self.cache
    }

    /// A point-in-time view of the shared cache.
    pub fn cache_snapshot(&self) -> SharedCacheSnapshot {
        self.cache.snapshot()
    }

    /// The fault injector, when the service was configured with a
    /// [`ServiceConfig::fault_plan`]. Its counters report how many
    /// failures the resilience stack had to absorb.
    pub fn fault_injector(&self) -> Option<&Arc<FaultyPlatform>> {
        self.faulty.as_ref()
    }

    /// The global quota accountant.
    pub fn quota(&self) -> &GlobalQuota {
        &self.quota
    }

    /// The time source behind `queue_wait`/`exec` telemetry.
    pub fn telemetry_clock(&self) -> &Arc<TelemetryClock> {
        &self.clock
    }

    /// Miss-coalescing counters, when coalescing is enabled.
    pub fn coalesce_stats(&self) -> Option<CoalesceStats> {
        self.coalescer.as_ref().map(|layer| layer.stats())
    }

    /// A point-in-time copy of the service counters. Coalescing counters
    /// live on the singleflight layer (they are service-wide, not
    /// per-job), so the snapshot overlays them here.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        if let Some(stats) = self.coalesce_stats() {
            snap.coalesce_leads = stats.leads;
            snap.coalesce_waits = stats.waits;
            snap.coalesce_aborts = stats.aborts;
            snap.coalesce_peak_inflight = stats.peak_inflight;
        }
        snap
    }

    /// Worker thread count.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.sender.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_job(
    analyzer: &MicroblogAnalyzer<'_>,
    shared_layer: &Arc<dyn CacheLayer>,
    quota: &GlobalQuota,
    metrics: &MetricsRegistry,
    clock: &TelemetryClock,
    default_retry: &RetryPolicy,
    tracer: &Tracer,
    job: Job,
) {
    let started = clock.now();
    let queue_wait = started.saturating_sub(job.submitted);
    let shared: Arc<dyn CacheLayer> = Arc::clone(shared_layer);
    let policy = job.spec.retry.unwrap_or(*default_retry);
    let span = if tracer.is_enabled() {
        tracer.span_start(
            Category::Job,
            "job",
            &[
                ("job_id", FieldValue::U64(job.id)),
                ("algorithm", FieldValue::from(job.spec.algorithm.name())),
                ("budget", FieldValue::U64(job.spec.budget)),
                ("seed", FieldValue::U64(job.spec.seed)),
                (
                    "queue_wait_micros",
                    FieldValue::U64(queue_wait.as_micros() as u64),
                ),
            ],
        )
    } else {
        0
    };
    // A panicking estimator must not strand joiners: catch it, settle the
    // reservation, and surface it as an outcome like any other failure.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        analyzer.run_traced(
            &job.spec.query,
            job.spec.budget,
            job.spec.algorithm,
            job.spec.seed,
            Some(shared),
            &policy,
            tracer.clone(),
        )
    }));
    let exec = clock.now().saturating_sub(started);
    if tracer.is_enabled() {
        let (outcome, charged) = match &result {
            Ok(report) => (
                match &report.outcome {
                    Ok(_) => "ok".to_string(),
                    Err(e) => e.to_string(),
                },
                report.charged,
            ),
            Err(_) => ("panic".to_string(), job.reservation.amount()),
        };
        tracer.span_end(
            Category::Job,
            "job",
            span,
            &[
                ("job_id", FieldValue::U64(job.id)),
                ("charged", FieldValue::U64(charged)),
                ("outcome", FieldValue::Str(outcome)),
                ("exec_micros", FieldValue::U64(exec.as_micros() as u64)),
            ],
        );
    }
    let outcome = match result {
        Ok(report) => {
            // Settle down to what the run actually charged — success or
            // not, the unused remainder goes back to the pool.
            let refunded = job.reservation.amount().saturating_sub(report.charged);
            quota.settle(job.reservation, report.charged);
            metrics.record_job(&job_metrics(&report, refunded, queue_wait, exec));
            let RunReport {
                outcome,
                charged,
                cache,
                resilience,
                degraded,
            } = report;
            match outcome {
                Ok(estimate) => {
                    let output = JobOutput {
                        job: job.id,
                        estimate,
                        charged,
                        cache,
                        resilience,
                        queue_wait,
                        exec,
                    };
                    if degraded {
                        JobOutcome::Degraded(output)
                    } else {
                        JobOutcome::Complete(output)
                    }
                }
                Err(err) => JobOutcome::Failed {
                    job: job.id,
                    error: ServiceError::Estimation(err),
                    charged,
                    resilience,
                },
            }
        }
        Err(panic) => {
            // A panic leaves no report, so nothing can be refunded: the
            // whole reservation is conservatively treated as consumed.
            let amount = job.reservation.amount();
            quota.settle(job.reservation, amount);
            metrics.record_job(&JobMetrics {
                succeeded: false,
                degraded: false,
                charged_calls: amount,
                refunded_calls: 0,
                samples: 0,
                cache: CacheStats::default(),
                retries: 0,
                wasted_calls: 0,
                backoff_secs: 0,
                rate_limited_hits: 0,
                breaker_opens: 0,
                breaker_fast_fails: 0,
                queue_wait,
                exec,
            });
            JobOutcome::Failed {
                job: job.id,
                error: ServiceError::WorkerPanicked(panic_message(panic.as_ref())),
                charged: amount,
                resilience: ResilienceStats::default(),
            }
        }
    };
    let mut slot = job.state.outcome.lock();
    *slot = Some(outcome);
    job.state.ready.notify_all();
}

fn job_metrics(
    report: &RunReport,
    refunded: u64,
    queue_wait: Duration,
    exec: Duration,
) -> JobMetrics {
    let r = &report.resilience;
    JobMetrics {
        succeeded: report.outcome.is_ok(),
        degraded: report.degraded,
        charged_calls: report.charged,
        refunded_calls: refunded,
        samples: report.outcome.as_ref().map_or(0, |est| est.samples as u64),
        cache: report.cache,
        retries: r.retries,
        wasted_calls: r.wasted_calls(),
        backoff_secs: r.total_wait().0.max(0) as u64,
        rate_limited_hits: r.rate_limited_hits,
        breaker_opens: r.breaker_opens,
        breaker_fast_fails: r.breaker_fast_fails,
        queue_wait,
        exec,
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::JobSpec;
    use microblog_analyzer::query::parse::parse_query;
    use microblog_analyzer::Algorithm;
    use microblog_platform::scenario::{twitter_2013, Scale};

    fn tiny_service(quota: Option<u64>, workers: usize) -> Service {
        let scenario = twitter_2013(Scale::Tiny, 2014);
        Service::new(
            Arc::new(scenario.platform),
            ApiProfile::twitter(),
            ServiceConfig {
                workers,
                global_quota: quota,
                cache: SharedCacheConfig {
                    capacity: 4096,
                    shards: 4,
                },
                ..ServiceConfig::default()
            },
        )
    }

    fn spec(service: &Service, budget: u64, seed: u64) -> JobSpec {
        let query = parse_query(
            "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'",
            service.platform().keywords(),
        )
        .expect("query parses");
        JobSpec::new(query, Algorithm::MaTarw { interval: None }, budget, seed)
    }

    #[test]
    fn submit_join_produces_estimate_and_settles_quota() {
        let service = tiny_service(Some(50_000), 2);
        let spec = spec(&service, 4_000, 7);
        let handle = service.submit(spec).expect("admitted");
        let output = handle.join().into_result().expect("estimates");
        assert!(output.estimate.cost <= 4_000);
        assert_eq!(output.charged, output.estimate.cost);
        assert_eq!(service.quota().consumed(), output.charged);
        assert_eq!(service.quota().reserved(), 0);
        let snap = service.metrics_snapshot();
        assert_eq!(snap.jobs_submitted, 1);
        assert_eq!(snap.jobs_succeeded, 1);
        assert_eq!(snap.charged_calls, output.charged);
        service.shutdown();
    }

    #[test]
    fn admission_control_rejects_over_quota() {
        let service = tiny_service(Some(1_000), 1);
        let err = service.submit(spec(&service, 5_000, 7)).unwrap_err();
        assert_eq!(
            err,
            ServiceError::Rejected {
                requested: 5_000,
                available: 1_000
            }
        );
        assert_eq!(service.metrics_snapshot().jobs_rejected, 1);
        // A job the quota can cover is still admitted afterwards.
        let handle = service.submit(spec(&service, 1_000, 7)).expect("fits");
        assert!(handle.join().into_result().is_ok());
    }

    #[test]
    fn identical_jobs_share_the_cache() {
        let service = tiny_service(None, 2);
        let first = service.submit(spec(&service, 3_000, 11)).unwrap();
        let a = first.join().into_result().expect("first run");
        let second = service.submit(spec(&service, 3_000, 11)).unwrap();
        let b = second.join().into_result().expect("second run");
        // Logical charging keeps replays bit-identical...
        assert_eq!(a.estimate.value.to_bits(), b.estimate.value.to_bits());
        assert_eq!(a.estimate.cost, b.estimate.cost);
        // ...while the platform sees strictly fewer actual calls.
        assert!(b.cache.actual_calls < a.cache.actual_calls);
        assert!(b.cache.shared_hits > 0);
        assert!(service.cache_snapshot().hits() > 0);
    }

    #[test]
    fn logical_telemetry_is_reproducible() {
        let run = || {
            let service = tiny_service(None, 1);
            let out = service
                .submit(spec(&service, 2_000, 5))
                .unwrap()
                .join()
                .into_result()
                .expect("estimates");
            (out.queue_wait, out.exec)
        };
        let (first, second) = (run(), run());
        assert_eq!(first, second, "logical telemetry must replay identically");
        assert!(first.1 > Duration::ZERO);
    }

    #[test]
    fn handle_is_joinable_multiple_times() {
        let service = tiny_service(None, 1);
        let handle = service.submit(spec(&service, 2_000, 3)).unwrap();
        let first = handle.join().into_result().expect("ok");
        let again = handle.join().into_result().expect("still ok");
        assert_eq!(
            first.estimate.value.to_bits(),
            again.estimate.value.to_bits()
        );
        assert!(handle.try_outcome().is_some());
    }

    #[test]
    fn failed_jobs_refund_their_unused_reservation() {
        // A total outage: every fetch faults forever, so the job fails
        // before charging anything — the old behavior of burning the
        // whole reservation would leave the pool at 12_000 consumed.
        let scenario = twitter_2013(Scale::Tiny, 2014);
        let service = Service::new(
            Arc::new(scenario.platform),
            ApiProfile::twitter(),
            ServiceConfig {
                workers: 1,
                global_quota: Some(20_000),
                fault_plan: Some(FaultPlan::outage(7)),
                retry: RetryPolicy::resilient().with_max_attempts(2),
                ..ServiceConfig::default()
            },
        );
        let handle = service.submit(spec(&service, 12_000, 3)).expect("admitted");
        let outcome = handle.join();
        match &outcome {
            JobOutcome::Failed {
                error,
                charged,
                resilience,
                ..
            } => {
                assert!(matches!(error, ServiceError::Estimation(_)));
                assert_eq!(*charged, 0, "failed attempts charge the waste meter");
                assert!(resilience.fatal_errors > 0);
                assert!(!resilience.trail.is_empty());
            }
            other => panic!("expected Failed under a total outage, got {other:?}"),
        }
        assert_eq!(service.quota().consumed(), 0, "full refund");
        assert_eq!(service.quota().reserved(), 0);
        assert_eq!(service.quota().remaining(), Some(20_000));
        let snap = service.metrics_snapshot();
        assert_eq!(snap.jobs_failed, 1);
        assert_eq!(snap.refunded_calls, 12_000);
        assert!(snap.retries > 0);
    }

    #[test]
    fn absorbed_faults_leave_estimates_bit_identical() {
        let clean = tiny_service(None, 1);
        let baseline = clean
            .submit(spec(&clean, 3_000, 21))
            .unwrap()
            .join()
            .into_result()
            .expect("clean run");

        let scenario = twitter_2013(Scale::Tiny, 2014);
        let service = Service::new(
            Arc::new(scenario.platform),
            ApiProfile::twitter(),
            ServiceConfig {
                workers: 1,
                fault_plan: Some(FaultPlan::mixed(5, 0.2).with_max_consecutive(2)),
                retry: RetryPolicy::patient(),
                ..ServiceConfig::default()
            },
        );
        let outcome = service.submit(spec(&service, 3_000, 21)).unwrap().join();
        assert!(outcome.is_complete(), "all faults absorbed: {outcome:?}");
        let out = outcome.into_result().unwrap();
        assert_eq!(
            out.estimate.value.to_bits(),
            baseline.estimate.value.to_bits()
        );
        assert_eq!(out.estimate.cost, baseline.estimate.cost);
        assert_eq!(out.charged, baseline.charged);
        assert!(out.resilience.retries > 0, "a 20% plan must force retries");
        let injector = service.fault_injector().expect("configured");
        assert!(injector.injected().total() > 0);
    }
}
