//! The multi-query estimation engine.
//!
//! [`Service`] owns a worker pool, the [`SharedApiCache`], the
//! [`GlobalQuota`], and a [`MetricsRegistry`]. [`Service::submit`]
//! performs admission control — the job's full budget is reserved from
//! the global quota up front, so an admitted job can always run to its
//! budget — and hands back a [`JobHandle`] whose [`JobHandle::join`]
//! blocks until a worker has finished the job.
//!
//! Workers pull jobs from a single `mpsc` channel behind a mutex (the
//! classic shared-receiver pool), run the estimator with the shared
//! cache layered under the per-query client, settle the quota
//! reservation down to what the job actually charged, and publish the
//! outcome through the handle's condvar.

use crate::cache::{SharedApiCache, SharedCacheConfig, SharedCacheSnapshot};
use crate::metrics::{JobMetrics, MetricsRegistry, MetricsSnapshot};
use crate::quota::{GlobalQuota, Reservation};
use crate::request::JobSpec;
use microblog_analyzer::{Estimate, EstimateError, MicroblogAnalyzer};
use microblog_api::cache::{CacheLayer, CacheStats};
use microblog_api::ApiProfile;
use microblog_platform::Platform;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sizing of a [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Service-wide API-call cap (`None` = unlimited; admission always
    /// succeeds).
    pub global_quota: Option<u64>,
    /// Shared cache layout.
    pub cache: SharedCacheConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            global_quota: None,
            cache: SharedCacheConfig::default(),
        }
    }
}

/// Why a job produced no estimate.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// Admission control refused the job: the uncommitted quota cannot
    /// cover its budget.
    Rejected {
        /// The budget the job asked for.
        requested: u64,
        /// Uncommitted calls left in the pool at refusal time.
        available: u64,
    },
    /// The estimator ran and failed.
    Estimation(EstimateError),
    /// The estimator panicked; the payload is the panic message.
    WorkerPanicked(String),
    /// The service is shutting down and no longer accepts jobs.
    ShuttingDown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Rejected {
                requested,
                available,
            } => write!(
                f,
                "rejected: budget {requested} exceeds the {available} uncommitted \
                 calls left in the global quota"
            ),
            ServiceError::Estimation(e) => write!(f, "estimation failed: {e}"),
            ServiceError::WorkerPanicked(msg) => write!(f, "estimator panicked: {msg}"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A finished job's results.
#[derive(Clone, Debug)]
pub struct JobOutput {
    /// The service-assigned job id.
    pub job: u64,
    /// The estimate.
    pub estimate: Estimate,
    /// The job client's cache traffic.
    pub cache: CacheStats,
    /// Time spent queued before a worker picked the job up.
    pub queue_wait: Duration,
    /// Time spent executing.
    pub exec: Duration,
}

#[derive(Default)]
struct JobState {
    outcome: Mutex<Option<Result<JobOutput, ServiceError>>>,
    ready: Condvar,
}

/// A ticket for an admitted job; [`join`](JobHandle::join) blocks until
/// the outcome is in. Handles are cheap to clone and joinable from any
/// thread, any number of times.
#[derive(Clone)]
pub struct JobHandle {
    job: u64,
    state: Arc<JobState>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("job", &self.job)
            .field("finished", &self.state.outcome.lock().is_some())
            .finish()
    }
}

impl JobHandle {
    /// The service-assigned job id.
    pub fn id(&self) -> u64 {
        self.job
    }

    /// Blocks until the job finishes and returns its outcome.
    pub fn join(&self) -> Result<JobOutput, ServiceError> {
        let mut slot = self.state.outcome.lock();
        while slot.is_none() {
            self.state.ready.wait(&mut slot);
        }
        slot.as_ref().expect("outcome present").clone()
    }

    /// The outcome, if the job already finished.
    pub fn try_outcome(&self) -> Option<Result<JobOutput, ServiceError>> {
        self.state.outcome.lock().clone()
    }
}

struct Job {
    id: u64,
    spec: JobSpec,
    reservation: Reservation,
    state: Arc<JobState>,
    submitted: Instant,
}

/// The long-running engine. Dropping it (or calling
/// [`shutdown`](Service::shutdown)) drains in-flight jobs and joins the
/// workers.
pub struct Service {
    platform: Arc<Platform>,
    api: ApiProfile,
    cache: Arc<SharedApiCache>,
    quota: GlobalQuota,
    metrics: Arc<MetricsRegistry>,
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Service {
    /// Starts a service over `platform` accessed through `api`.
    pub fn new(platform: Arc<Platform>, api: ApiProfile, config: ServiceConfig) -> Self {
        let cache = Arc::new(SharedApiCache::new(config.cache));
        let quota = match config.global_quota {
            Some(limit) => GlobalQuota::limited(limit),
            None => GlobalQuota::unlimited(),
        };
        let metrics = Arc::new(MetricsRegistry::new());
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                let platform = Arc::clone(&platform);
                let api = api.clone();
                let cache = Arc::clone(&cache);
                let quota = quota.clone();
                let metrics = Arc::clone(&metrics);
                std::thread::spawn(move || {
                    let analyzer = MicroblogAnalyzer::new(&platform, api);
                    loop {
                        // Hold the lock only to pull the next job; when the
                        // channel closes (sender dropped) the worker exits.
                        let job = match receiver.lock().recv() {
                            Ok(job) => job,
                            Err(_) => break,
                        };
                        run_job(&analyzer, &cache, &quota, &metrics, job);
                    }
                })
            })
            .collect();
        Service {
            platform,
            api,
            cache,
            quota,
            metrics,
            sender: Some(sender),
            workers,
            next_id: AtomicU64::new(0),
        }
    }

    /// Admits `spec` if the global quota can cover its budget, queueing
    /// it for the next free worker.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, ServiceError> {
        let reservation = self.quota.try_reserve(spec.budget).map_err(|available| {
            self.metrics.record_rejected();
            ServiceError::Rejected {
                requested: spec.budget,
                available,
            }
        })?;
        self.metrics.record_submitted();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(JobState::default());
        let handle = JobHandle {
            job: id,
            state: Arc::clone(&state),
        };
        let job = Job {
            id,
            spec,
            reservation,
            state,
            submitted: Instant::now(),
        };
        let sender = self.sender.as_ref().ok_or(ServiceError::ShuttingDown)?;
        if let Err(mpsc::SendError(job)) = sender.send(job) {
            // Workers are gone; release the reservation untouched.
            self.quota.settle(job.reservation, 0);
            return Err(ServiceError::ShuttingDown);
        }
        Ok(handle)
    }

    /// Drains queued jobs and joins the workers.
    pub fn shutdown(self) {
        // Drop runs the actual shutdown.
    }

    /// The world being estimated over.
    pub fn platform(&self) -> &Arc<Platform> {
        &self.platform
    }

    /// The API profile in force.
    pub fn api_profile(&self) -> &ApiProfile {
        &self.api
    }

    /// The shared cross-query cache.
    pub fn cache(&self) -> &Arc<SharedApiCache> {
        &self.cache
    }

    /// A point-in-time view of the shared cache.
    pub fn cache_snapshot(&self) -> SharedCacheSnapshot {
        self.cache.snapshot()
    }

    /// The global quota accountant.
    pub fn quota(&self) -> &GlobalQuota {
        &self.quota
    }

    /// A point-in-time copy of the service counters.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Worker thread count.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.sender.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn run_job(
    analyzer: &MicroblogAnalyzer<'_>,
    cache: &Arc<SharedApiCache>,
    quota: &GlobalQuota,
    metrics: &MetricsRegistry,
    job: Job,
) {
    let queue_wait = job.submitted.elapsed();
    let started = Instant::now();
    let shared: Arc<dyn CacheLayer> = Arc::clone(cache) as Arc<dyn CacheLayer>;
    // A panicking estimator must not strand joiners: catch it, settle the
    // reservation, and surface it as an outcome like any other failure.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        analyzer.estimate_with_cache(
            &job.spec.query,
            job.spec.budget,
            job.spec.algorithm,
            job.spec.seed,
            Some(shared),
        )
    }));
    let exec = started.elapsed();
    let outcome = match result {
        Ok(Ok((estimate, stats))) => {
            quota.settle(job.reservation, estimate.cost);
            metrics.record_job(&JobMetrics {
                succeeded: true,
                charged_calls: estimate.cost,
                samples: estimate.samples as u64,
                cache: stats,
                queue_wait,
                exec,
            });
            Ok(JobOutput {
                job: job.id,
                estimate,
                cache: stats,
                queue_wait,
                exec,
            })
        }
        failed => {
            let error = match failed {
                Ok(Err(err)) => ServiceError::Estimation(err),
                Err(panic) => ServiceError::WorkerPanicked(panic_message(panic.as_ref())),
                Ok(Ok(_)) => unreachable!("success handled above"),
            };
            // The failure path cannot report how much it charged, so the
            // whole reservation is conservatively treated as consumed.
            let amount = job.reservation.amount();
            quota.settle(job.reservation, amount);
            metrics.record_job(&JobMetrics {
                succeeded: false,
                charged_calls: amount,
                samples: 0,
                cache: CacheStats::default(),
                queue_wait,
                exec,
            });
            Err(error)
        }
    };
    let mut slot = job.state.outcome.lock();
    *slot = Some(outcome);
    job.state.ready.notify_all();
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::JobSpec;
    use microblog_analyzer::query::parse::parse_query;
    use microblog_analyzer::Algorithm;
    use microblog_platform::scenario::{twitter_2013, Scale};

    fn tiny_service(quota: Option<u64>, workers: usize) -> Service {
        let scenario = twitter_2013(Scale::Tiny, 2014);
        Service::new(
            Arc::new(scenario.platform),
            ApiProfile::twitter(),
            ServiceConfig {
                workers,
                global_quota: quota,
                cache: SharedCacheConfig {
                    capacity: 4096,
                    shards: 4,
                },
            },
        )
    }

    fn spec(service: &Service, budget: u64, seed: u64) -> JobSpec {
        let query = parse_query(
            "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'",
            service.platform().keywords(),
        )
        .expect("query parses");
        JobSpec {
            query,
            algorithm: Algorithm::MaTarw { interval: None },
            budget,
            seed,
        }
    }

    #[test]
    fn submit_join_produces_estimate_and_settles_quota() {
        let service = tiny_service(Some(50_000), 2);
        let spec = spec(&service, 4_000, 7);
        let handle = service.submit(spec).expect("admitted");
        let output = handle.join().expect("estimates");
        assert!(output.estimate.cost <= 4_000);
        assert_eq!(service.quota().consumed(), output.estimate.cost);
        assert_eq!(service.quota().reserved(), 0);
        let snap = service.metrics_snapshot();
        assert_eq!(snap.jobs_submitted, 1);
        assert_eq!(snap.jobs_succeeded, 1);
        assert_eq!(snap.charged_calls, output.estimate.cost);
        service.shutdown();
    }

    #[test]
    fn admission_control_rejects_over_quota() {
        let service = tiny_service(Some(1_000), 1);
        let err = service.submit(spec(&service, 5_000, 7)).unwrap_err();
        assert_eq!(
            err,
            ServiceError::Rejected {
                requested: 5_000,
                available: 1_000
            }
        );
        assert_eq!(service.metrics_snapshot().jobs_rejected, 1);
        // A job the quota can cover is still admitted afterwards.
        let handle = service.submit(spec(&service, 1_000, 7)).expect("fits");
        assert!(handle.join().is_ok());
    }

    #[test]
    fn identical_jobs_share_the_cache() {
        let service = tiny_service(None, 2);
        let first = service.submit(spec(&service, 3_000, 11)).unwrap();
        let a = first.join().expect("first run");
        let second = service.submit(spec(&service, 3_000, 11)).unwrap();
        let b = second.join().expect("second run");
        // Logical charging keeps replays bit-identical...
        assert_eq!(a.estimate.value.to_bits(), b.estimate.value.to_bits());
        assert_eq!(a.estimate.cost, b.estimate.cost);
        // ...while the platform sees strictly fewer actual calls.
        assert!(b.cache.actual_calls < a.cache.actual_calls);
        assert!(b.cache.shared_hits > 0);
        assert!(service.cache_snapshot().hits() > 0);
    }

    #[test]
    fn handle_is_joinable_multiple_times() {
        let service = tiny_service(None, 1);
        let handle = service.submit(spec(&service, 2_000, 3)).unwrap();
        let first = handle.join().expect("ok");
        let again = handle.join().expect("still ok");
        assert_eq!(
            first.estimate.value.to_bits(),
            again.estimate.value.to_bits()
        );
        assert!(handle.try_outcome().is_some());
    }
}
