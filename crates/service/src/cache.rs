//! The shared cross-query API cache.
//!
//! [`SharedApiCache`] implements `microblog_api`'s [`CacheLayer`] for the
//! whole service: every worker's [`CachingClient`] misses fall through to
//! this store, so a user whose timeline one query already fetched is free
//! (in *actual* platform calls — budgets are still charged logically, see
//! `microblog_api::cache`) for every later query.
//!
//! The store is sharded: a key is hashed to one of N shards, each an
//! independently mutex-guarded trio of LRU maps (one per endpoint), so
//! concurrent workers rarely contend on the same lock. Counters are
//! relaxed atomics — they feed monitoring, not control flow.
//!
//! [`CachingClient`]: microblog_api::CachingClient

use crate::lru::LruCache;
use microblog_api::cache::{
    CacheLayer, CachedConnections, CachedSearch, CachedTimeline, CoalescingLayer,
};
use microblog_obs::{Category, FieldValue, Tracer};
use microblog_platform::{KeywordId, UserId};
use parking_lot::Mutex;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The service's production cache stack: a singleflight
/// [`CoalescingLayer`] over the shared sharded store, so N concurrent
/// misses on one key cost one platform fetch (every requester is still
/// charged logically — see `microblog_api::cache`).
pub type CoalescingSharedCache = CoalescingLayer<Arc<SharedApiCache>>;

/// Sizing and layout of the shared cache.
#[derive(Clone, Copy, Debug)]
pub struct SharedCacheConfig {
    /// Total entries per endpoint across all shards.
    pub capacity: usize,
    /// Number of independently locked shards (rounded up to at least 1).
    pub shards: usize,
}

impl Default for SharedCacheConfig {
    fn default() -> Self {
        SharedCacheConfig {
            capacity: 100_000,
            shards: 16,
        }
    }
}

struct Shard {
    searches: LruCache<KeywordId, CachedSearch>,
    timelines: LruCache<UserId, CachedTimeline>,
    connections: LruCache<UserId, CachedConnections>,
}

/// Relaxed monitoring counters for one endpoint.
#[derive(Default)]
struct EndpointCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl EndpointCounters {
    fn snapshot(&self) -> EndpointSnapshot {
        let hits = self.hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        EndpointSnapshot {
            hits,
            misses,
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            hit_rate: if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            },
        }
    }
}

/// Point-in-time counters for one endpoint of the shared cache.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct EndpointSnapshot {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the platform.
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries dropped to make room.
    pub evictions: u64,
    /// hits / (hits + misses), 0 when idle.
    pub hit_rate: f64,
}

/// Point-in-time view of the whole shared cache.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SharedCacheSnapshot {
    /// Live entries across all endpoints and shards.
    pub entries: usize,
    /// SEARCH counters.
    pub search: EndpointSnapshot,
    /// USER TIMELINE counters.
    pub timeline: EndpointSnapshot,
    /// USER CONNECTIONS counters.
    pub connections: EndpointSnapshot,
}

impl SharedCacheSnapshot {
    /// Total hits across endpoints.
    pub fn hits(&self) -> u64 {
        self.search.hits + self.timeline.hits + self.connections.hits
    }

    /// Total misses across endpoints.
    pub fn misses(&self) -> u64 {
        self.search.misses + self.timeline.misses + self.connections.misses
    }

    /// Overall hit rate, 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m > 0 {
            h as f64 / (h + m) as f64
        } else {
            0.0
        }
    }
}

/// The service-wide response cache. See the module docs.
pub struct SharedApiCache {
    shards: Vec<Mutex<Shard>>,
    search_stats: EndpointCounters,
    timeline_stats: EndpointCounters,
    connections_stats: EndpointCounters,
    tracer: Tracer,
}

impl SharedApiCache {
    /// A cache with the given layout.
    pub fn new(config: SharedCacheConfig) -> Self {
        let shards = config.shards.max(1);
        // Spread the per-endpoint capacity across shards, rounding up so
        // the configured total is a floor, not a ceiling.
        let per_shard = config.capacity.div_ceil(shards);
        SharedApiCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        searches: LruCache::new(per_shard),
                        timelines: LruCache::new(per_shard),
                        connections: LruCache::new(per_shard),
                    })
                })
                .collect(),
            search_stats: EndpointCounters::default(),
            timeline_stats: EndpointCounters::default(),
            connections_stats: EndpointCounters::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer; evictions then surface as `shared_evict`
    /// events. (Hit/miss events come from the per-query
    /// `CachingClient` layer above, which sees every lookup.)
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    fn trace_evict(&self, endpoint: &'static str) {
        if !self.tracer.is_enabled() {
            return;
        }
        self.tracer.emit(
            Category::Cache,
            "shared_evict",
            &[("endpoint", FieldValue::from(endpoint))],
        );
    }

    fn shard_for(&self, key: u64) -> &Mutex<Shard> {
        // Fibonacci hashing spreads sequential user ids across shards.
        let mixed = key.wrapping_mul(0x9E3779B97F4A7C15);
        &self.shards[(mixed >> 32) as usize % self.shards.len()] // ma-lint: allow(panic-safety) reason="shard index reduced modulo shards.len()"
    }

    /// Live entries across all endpoints and shards.
    pub fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let s = s.lock();
                s.searches.len() + s.timelines.len() + s.connections.len()
            })
            .sum()
    }

    /// A point-in-time counter snapshot.
    pub fn snapshot(&self) -> SharedCacheSnapshot {
        SharedCacheSnapshot {
            entries: self.entries(),
            search: self.search_stats.snapshot(),
            timeline: self.timeline_stats.snapshot(),
            connections: self.connections_stats.snapshot(),
        }
    }
}

impl CacheLayer for SharedApiCache {
    fn get_search(&self, kw: KeywordId) -> Option<CachedSearch> {
        let found = self
            .shard_for(kw.0 as u64)
            .lock()
            .searches
            .get(&kw)
            .cloned();
        count_lookup(&self.search_stats, found.is_some());
        found
    }

    fn put_search(&self, kw: KeywordId, entry: CachedSearch) {
        let evicted = self
            .shard_for(kw.0 as u64)
            .lock()
            .searches
            .insert(kw, entry);
        count_insert(&self.search_stats, evicted);
        if evicted {
            self.trace_evict("search");
        }
    }

    fn get_timeline(&self, u: UserId) -> Option<CachedTimeline> {
        let found = self.shard_for(u.0 as u64).lock().timelines.get(&u).cloned();
        count_lookup(&self.timeline_stats, found.is_some());
        found
    }

    fn put_timeline(&self, u: UserId, entry: CachedTimeline) {
        let evicted = self.shard_for(u.0 as u64).lock().timelines.insert(u, entry);
        count_insert(&self.timeline_stats, evicted);
        if evicted {
            self.trace_evict("timeline");
        }
    }

    fn get_connections(&self, u: UserId) -> Option<CachedConnections> {
        let found = self
            .shard_for(u.0 as u64)
            .lock()
            .connections
            .get(&u)
            .cloned();
        count_lookup(&self.connections_stats, found.is_some());
        found
    }

    fn put_connections(&self, u: UserId, entry: CachedConnections) {
        let evicted = self
            .shard_for(u.0 as u64)
            .lock()
            .connections
            .insert(u, entry);
        count_insert(&self.connections_stats, evicted);
        if evicted {
            self.trace_evict("connections");
        }
    }
}

fn count_lookup(counters: &EndpointCounters, hit: bool) {
    if hit {
        counters.hits.fetch_add(1, Ordering::Relaxed);
    } else {
        counters.misses.fetch_add(1, Ordering::Relaxed);
    }
}

fn count_insert(counters: &EndpointCounters, evicted: bool) {
    counters.insertions.fetch_add(1, Ordering::Relaxed);
    if evicted {
        counters.evictions.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microblog_api::cache::Cached;
    use std::sync::Arc;

    fn connections_entry(calls: u64) -> CachedConnections {
        Cached {
            data: Arc::new(vec![UserId(1), UserId(2)]),
            calls,
        }
    }

    #[test]
    fn hits_after_put_and_counters_track() {
        let cache = SharedApiCache::new(SharedCacheConfig {
            capacity: 64,
            shards: 4,
        });
        assert!(cache.get_connections(UserId(7)).is_none());
        cache.put_connections(UserId(7), connections_entry(3));
        let entry = cache.get_connections(UserId(7)).expect("cached");
        assert_eq!(entry.calls, 3);
        assert_eq!(entry.data.len(), 2);

        let snap = cache.snapshot();
        assert_eq!(snap.connections.hits, 1);
        assert_eq!(snap.connections.misses, 1);
        assert_eq!(snap.connections.insertions, 1);
        assert_eq!(snap.entries, 1);
        assert_eq!(snap.hit_rate(), 0.5);
    }

    #[test]
    fn capacity_bounds_hold_under_churn() {
        let config = SharedCacheConfig {
            capacity: 16,
            shards: 4,
        };
        let cache = SharedApiCache::new(config);
        for i in 0..1000u32 {
            cache.put_timeline(
                UserId(i),
                Cached {
                    data: Arc::new(make_view(UserId(i))),
                    calls: 1,
                },
            );
        }
        // Per-shard bound is ceil(16/4) = 4 → at most 16 total.
        assert!(cache.entries() <= 16, "entries = {}", cache.entries());
        assert!(cache.snapshot().timeline.evictions >= 1000 - 16);
    }

    #[test]
    fn concurrent_access_is_safe_and_lossless() {
        let cache = Arc::new(SharedApiCache::new(SharedCacheConfig {
            capacity: 10_000,
            shards: 8,
        }));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        let u = UserId(t * 10_000 + i);
                        cache.put_connections(u, connections_entry(2));
                        assert!(cache.get_connections(u).is_some());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = cache.snapshot();
        assert_eq!(snap.connections.insertions, 4000);
        assert_eq!(snap.connections.hits, 4000);
    }

    #[test]
    fn stampede_on_one_key_costs_one_insertion() {
        use microblog_api::cache::Flight;
        let layer = Arc::new(CoalescingSharedCache::new(Arc::new(SharedApiCache::new(
            SharedCacheConfig {
                capacity: 64,
                shards: 4,
            },
        ))));
        let u = UserId(42);
        // Main thread is the leader; the stampede parks behind it.
        assert!(matches!(layer.join_connections(u), Flight::Lead));
        const STAMPEDE: u64 = 6;
        let waiters: Vec<_> = (0..STAMPEDE)
            .map(|_| {
                let layer = Arc::clone(&layer);
                std::thread::spawn(move || match layer.join_connections(u) {
                    Flight::Ready(entry) => entry.calls,
                    Flight::Lead => panic!("stampede must coalesce behind the leader"),
                })
            })
            .collect();
        while layer.stats().waits < STAMPEDE {
            std::thread::yield_now();
        }
        layer.put_connections(u, connections_entry(5));
        for w in waiters {
            assert_eq!(w.join().expect("waiter"), 5);
        }
        let stats = layer.stats();
        assert_eq!(stats.leads, 1);
        assert_eq!(stats.waits, STAMPEDE);
        assert_eq!(stats.peak_inflight, STAMPEDE + 1);
        // One actual insertion reached the store: the whole stampede
        // resolved from a single fetch.
        let snap = layer.inner().snapshot();
        assert_eq!(snap.connections.insertions, 1);
        assert_eq!(snap.entries, 1);
    }

    fn make_view(u: UserId) -> microblog_api::UserView {
        use microblog_platform::user::UserProfile;
        use microblog_platform::{Gender, Timestamp};
        microblog_api::UserView {
            user: u,
            profile: UserProfile {
                display_name: "t".into(),
                gender: Gender::Female,
                region: 0,
                age: None,
                joined: Timestamp(0),
            },
            follower_count: 0,
            followee_count: 0,
            posts: vec![],
            truncated: false,
        }
    }
}
