//! # microblog-service
//!
//! A long-running, concurrent multi-query estimation engine over the
//! microblog analyzer.
//!
//! The paper's estimators ([MA-SRW, MA-TARW, Mark & Recapture][paper])
//! are single-query: one walk, one budget, one answer. A real analytics
//! deployment runs *many* queries against *one* rate-limited platform
//! account, and those queries keep re-fetching the same hot users. This
//! crate adds the serving layer:
//!
//! - [`Service`] — a worker pool executing [`JobSpec`]s concurrently,
//!   with admission control against a service-wide [`GlobalQuota`]
//!   (a job's full budget is reserved up front, so the service never
//!   promises calls the account cannot cover).
//! - [`SharedApiCache`] — a sharded, bounded, LRU-evicting store of
//!   SEARCH / USER TIMELINE / USER CONNECTIONS responses shared across
//!   all queries, layered under each job's `CachingClient`. Budgets are
//!   still charged *logically* on shared hits (see
//!   `microblog_api::cache`), so estimates stay bit-identical to
//!   isolated runs while actual platform traffic drops.
//! - [`MetricsRegistry`] — service-wide counters with text and JSON
//!   exports.
//! - [`StatsHub`] — windowed live telemetry on the logical clock:
//!   per-stage latency histograms (admit → queue → pilot → walk →
//!   estimate → settle), conserved counters whose per-emission deltas
//!   telescope to the cumulative totals, and per-query convergence
//!   gauges, streamed as `stats` trace events behind `ma-cli serve
//!   --stats-every` and the `ma-cli top` dashboard (DESIGN.md §14).
//! - [`run_batch`] — the JSON-lines frontend behind `ma-cli serve`.
//! - **Graceful degradation** — each job runs through the resilient
//!   client stack (`microblog_api::ResilientClient`) under a
//!   [`RetryPolicy`](microblog_api::RetryPolicy); a
//!   [`ServiceConfig::fault_plan`] injects failures for chaos testing.
//!   Jobs settle their quota reservation down to what they actually
//!   charged — failed and degraded jobs refund the rest — and a
//!   [`JobOutcome::Degraded`] carries the partial estimate plus the
//!   error trail.
//! - **Crash-only recovery** — with [`ServiceConfig::journal`] set, a
//!   write-ahead [`Journal`] records every job's lifecycle (admit,
//!   reserve, walker checkpoints, settle) and [`Service::start`]
//!   replays it: settled consumption is adopted into the quota exactly
//!   once and unfinished jobs are requeued from their latest
//!   checkpoint, with estimates, charges and settlement bit-identical
//!   to the uninterrupted run. An in-process supervisor respawns
//!   crashed workers the same way (DESIGN.md §12).
//!
//! ```no_run
//! use microblog_service::{JobSpec, Service, ServiceConfig};
//! use microblog_analyzer::query::parse::parse_query;
//! use microblog_analyzer::Algorithm;
//! use microblog_api::ApiProfile;
//! use microblog_platform::scenario::{twitter_2013, Scale};
//! use std::sync::Arc;
//!
//! let scenario = twitter_2013(Scale::Small, 2014);
//! let service = Service::new(
//!     Arc::new(scenario.platform),
//!     ApiProfile::twitter(),
//!     ServiceConfig { workers: 4, global_quota: Some(200_000), ..Default::default() },
//! );
//! let query = parse_query(
//!     "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'",
//!     service.platform().keywords(),
//! ).unwrap();
//! let handle = service
//!     .submit(JobSpec::new(query, Algorithm::MaTarw { interval: None }, 25_000, 7))
//!     .unwrap();
//! let output = handle.join().into_result().unwrap();
//! println!("estimate {:.3} for {} calls", output.estimate.value, output.estimate.cost);
//! ```
//!
//! [paper]: https://doi.org/10.1145/2588555.2610517

#![forbid(unsafe_code)]

pub mod cache;
pub mod clock;
pub mod dashboard;
pub mod engine;
pub mod frontend;
pub mod journal;
pub mod lru;
pub mod metrics;
pub mod quota;
pub mod request;
pub mod stats;
pub mod traceview;

pub use cache::{SharedApiCache, SharedCacheConfig, SharedCacheSnapshot};
pub use clock::{TelemetryClock, TelemetryMode};
pub use dashboard::Dashboard;
pub use engine::{
    JobHandle, JobOutcome, JobOutput, RecoveryReport, Service, ServiceConfig, ServiceError,
    ShutdownReport,
};
pub use frontend::{run_batch, BatchSummary};
pub use journal::{Journal, JournalRecord, RecoveredJob, ReplaySummary};
pub use metrics::{JobMetrics, MetricsRegistry, MetricsSnapshot};
pub use quota::{GlobalQuota, Reservation};
pub use request::{JobSpec, QueryRequest, QueryResponse};
pub use stats::{GaugeReading, QueryStats, Stage, StatsConfig, StatsHub, StatsSink};
pub use traceview::{record_job, PhaseCost, TraceRun, TraceSummary};
