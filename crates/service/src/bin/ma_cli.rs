//! `ma-cli` — run aggregate estimations over a synthetic microblog world
//! from the command line.
//!
//! ```text
//! Usage: ma-cli [OPTIONS] <SQL-QUERY>
//!        ma-cli serve [OPTIONS]
//!        ma-cli trace [OPTIONS] <SQL-QUERY>
//!        ma-cli top [--file PATH] [--once]
//!
//!   --platform twitter|google+|tumblr   world + API profile  [twitter]
//!   --scale    tiny|small|medium|large  world size           [small]
//!   --world-seed N                      world RNG seed       [2014]
//!   --algorithm tarw|srw|mhrw|mr|srw-term|srw-full           [tarw]
//!   --budget N                          API-call budget      [25000]
//!   --interval 2h|4h|12h|1d|2d|1w|1m|auto   level interval   [auto]
//!   --seed N                            estimator RNG seed   [7]
//!   --truth                             also print exact ground truth
//!   --list-keywords                     print the scenario keywords
//!
//! serve mode (JSON-lines requests in, JSON-lines results out):
//!   --file PATH                         read requests from PATH [stdin]
//!   --workers N                         worker threads       [4]
//!   --global-quota N                    service-wide call cap [unlimited]
//!   --cache-capacity N                  shared-cache entries  [100000]
//!   --retry N                           attempts per API call [5]
//!   --deadline SECS                     per-call deadline, simulated
//!                                       seconds              [none]
//!   --fault-plan SPEC                   inject faults, e.g.
//!                                       'transient=0.05,rate_limited=0.02,seed=42'
//!   --wall-telemetry                    report real queue/exec latencies
//!                                       instead of the deterministic
//!                                       logical telemetry clock
//!   --journal DIR                       write-ahead job journal; replayed
//!                                       on startup to recover in-flight
//!                                       jobs                  [off]
//!   --checkpoint-every N                walker steps between checkpoints,
//!                                       0 disables            [1000]
//!   --drain-timeout SECS                shutdown drain deadline; stragglers
//!                                       are journaled as interrupted [none]
//!   --crash-plan SPEC                   deterministic crash injection, e.g.
//!                                       'point=pre_settle,hit=2' or
//!                                       'point=checkpoint,mode=torn,drop=7'
//!   --stats-every N                     emit a live-stats emission (window
//!                                       deltas, gauges, per-query
//!                                       convergence) after every N settled
//!                                       jobs, as stats trace JSONL [off]
//!   --stats-out PATH                    write the stats stream to PATH
//!                                       instead of stdout
//!
//! top mode (render a stats stream as a refreshing dashboard):
//!   --file PATH                         read the stats JSONL from PATH
//!                                       [stdin]
//!   --once                              fold the whole stream, print one
//!                                       plain-text snapshot and exit (no
//!                                       escape codes; for CI and pipes)
//!
//!   Lines that are not stats frames (job responses on a shared stdout,
//!   full trace events) are counted and skipped, so
//!   `ma-cli serve --stats-every 1 | ma-cli top` just works.
//!
//! trace mode (record one query's structured trace):
//!   --out PATH                          write JSON-lines events to PATH
//!                                       [trace.jsonl]
//!   --summary                           print the cost-attribution tree
//!                                       (per-phase/per-endpoint/per-level
//!                                       budget, acceptance + collision
//!                                       rates, Geweke checkpoints)
//!
//!   Two trace runs with the same options and the default logical
//!   telemetry produce byte-identical .jsonl files.
//!
//! Examples:
//!   ma-cli --budget 30000 --truth \
//!     "SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'privacy' \
//!      AND TIME BETWEEN DAY 0 AND DAY 303"
//!
//!   echo '{"id":1,"query":"SELECT COUNT(*) FROM USERS WHERE KEYWORD = '\''privacy'\''"}' \
//!     | ma-cli serve --workers 8 --global-quota 100000
//!
//!   ma-cli trace --scale tiny --budget 5000 --summary --out run.jsonl \
//!     "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'"
//!
//!   ma-cli serve --scale tiny --file reqs.jsonl --stats-every 1 \
//!     | ma-cli top --once
//! ```

use microblog_analyzer::prelude::*;
use microblog_analyzer::query::parse::parse_query;
use microblog_api::rate::{human_duration, wall_clock};
use microblog_api::RetryPolicy;
use microblog_obs::Tracer;
use microblog_obs::{render_jsonl, RecorderConfig};
use microblog_platform::scenario::{google_plus_2013, tumblr_2013, twitter_2013, Scale, Scenario};
use microblog_platform::{CrashPlan, Duration, FaultPlan};
use microblog_service::cache::SharedCacheConfig;
use microblog_service::request::{parse_algorithm, parse_interval, JobSpec};
use microblog_service::traceview::{record_job, TraceSummary};
use microblog_service::{
    run_batch, Dashboard, Service, ServiceConfig, StatsConfig, StatsHub, StatsSink, TelemetryClock,
    TelemetryMode,
};
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;

fn main() {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => {}
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run with --help for usage");
            std::process::exit(1);
        }
    }
}

struct Options {
    platform: String,
    scale: Scale,
    world_seed: u64,
    algorithm: String,
    budget: u64,
    interval: Option<Duration>,
    seed: u64,
    truth: bool,
    list_keywords: bool,
    serve: bool,
    trace: bool,
    out: String,
    summary: bool,
    file: Option<String>,
    workers: usize,
    global_quota: Option<u64>,
    cache_capacity: usize,
    retry: Option<u32>,
    deadline: Option<i64>,
    fault_plan: Option<FaultPlan>,
    telemetry: TelemetryMode,
    journal: Option<String>,
    checkpoint_every: u64,
    drain_timeout: Option<u64>,
    crash_plan: Option<CrashPlan>,
    stats_every: u64,
    stats_out: Option<String>,
    top: bool,
    once: bool,
    query: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            platform: "twitter".into(),
            scale: Scale::Small,
            world_seed: 2014,
            algorithm: "tarw".into(),
            budget: 25_000,
            interval: None,
            seed: 7,
            truth: false,
            list_keywords: false,
            serve: false,
            trace: false,
            out: "trace.jsonl".into(),
            summary: false,
            file: None,
            workers: 4,
            global_quota: None,
            cache_capacity: 100_000,
            retry: None,
            deadline: None,
            fault_plan: None,
            telemetry: TelemetryMode::Logical,
            journal: None,
            checkpoint_every: 1_000,
            drain_timeout: None,
            crash_plan: None,
            stats_every: 0,
            stats_out: None,
            top: false,
            once: false,
            query: None,
        }
    }
}

fn parse_args(args: Vec<String>) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--help" | "-h" => {
                // Reuse the module docs as help text.
                println!("ma-cli — aggregate estimation over a synthetic microblog\n");
                println!("see `cargo doc -p microblog-service --bin ma-cli` or the");
                println!("source header of src/bin/ma_cli.rs for full usage");
                std::process::exit(0);
            }
            "serve" => opts.serve = true,
            "trace" => opts.trace = true,
            "top" => opts.top = true,
            "--once" => opts.once = true,
            "--stats-every" => {
                opts.stats_every = value("--stats-every")?
                    .parse()
                    .map_err(|_| "bad --stats-every")?
            }
            "--stats-out" => opts.stats_out = Some(value("--stats-out")?),
            "--out" => opts.out = value("--out")?,
            "--summary" => opts.summary = true,
            "--platform" => opts.platform = value("--platform")?.to_lowercase(),
            "--scale" => {
                opts.scale = match value("--scale")?.to_lowercase().as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    "large" => Scale::Large,
                    other => return Err(format!("unknown scale '{other}'")),
                }
            }
            "--world-seed" => {
                opts.world_seed = value("--world-seed")?
                    .parse()
                    .map_err(|_| "bad --world-seed")?
            }
            "--algorithm" => opts.algorithm = value("--algorithm")?.to_lowercase(),
            "--budget" => opts.budget = value("--budget")?.parse().map_err(|_| "bad --budget")?,
            "--interval" => opts.interval = parse_interval(&value("--interval")?)?,
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|_| "bad --seed")?,
            "--truth" => opts.truth = true,
            "--list-keywords" => opts.list_keywords = true,
            "--file" => opts.file = Some(value("--file")?),
            "--workers" => {
                opts.workers = value("--workers")?.parse().map_err(|_| "bad --workers")?
            }
            "--global-quota" => {
                opts.global_quota = Some(
                    value("--global-quota")?
                        .parse()
                        .map_err(|_| "bad --global-quota")?,
                )
            }
            "--cache-capacity" => {
                opts.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|_| "bad --cache-capacity")?
            }
            "--retry" => opts.retry = Some(value("--retry")?.parse().map_err(|_| "bad --retry")?),
            "--deadline" => {
                opts.deadline = Some(value("--deadline")?.parse().map_err(|_| "bad --deadline")?)
            }
            "--fault-plan" => {
                opts.fault_plan = Some(
                    FaultPlan::parse(&value("--fault-plan")?)
                        .map_err(|e| format!("bad --fault-plan: {e}"))?,
                )
            }
            "--wall-telemetry" => opts.telemetry = TelemetryMode::Wall,
            "--journal" => opts.journal = Some(value("--journal")?),
            "--checkpoint-every" => {
                opts.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|_| "bad --checkpoint-every")?
            }
            "--drain-timeout" => {
                opts.drain_timeout = Some(
                    value("--drain-timeout")?
                        .parse()
                        .map_err(|_| "bad --drain-timeout")?,
                )
            }
            "--crash-plan" => {
                opts.crash_plan = Some(
                    CrashPlan::parse(&value("--crash-plan")?)
                        .map_err(|e| format!("bad --crash-plan: {e}"))?,
                )
            }
            other if other.starts_with("--") => return Err(format!("unknown option '{other}'")),
            query => {
                if opts.query.replace(query.to_string()).is_some() {
                    return Err("multiple queries given".into());
                }
            }
        }
    }
    Ok(opts)
}

fn build_world(opts: &Options) -> Result<(Scenario, ApiProfile), String> {
    Ok(match opts.platform.as_str() {
        "twitter" => (
            twitter_2013(opts.scale, opts.world_seed),
            ApiProfile::twitter(),
        ),
        "google+" | "googleplus" | "gplus" => (
            google_plus_2013(opts.scale, opts.world_seed),
            ApiProfile::google_plus(),
        ),
        "tumblr" => (
            tumblr_2013(opts.scale, opts.world_seed),
            ApiProfile::tumblr(),
        ),
        other => return Err(format!("unknown platform '{other}'")),
    })
}

fn run(args: Vec<String>) -> Result<(), String> {
    let opts = parse_args(args)?;
    if opts.top {
        // The dashboard only reads a stream; no world to build.
        return top(opts);
    }
    eprintln!(
        "building {} world ({:?}, seed {})...",
        opts.platform, opts.scale, opts.world_seed
    );
    let (scenario, api) = build_world(&opts)?;

    if opts.list_keywords {
        println!("scenario keywords:");
        for spec in &scenario.specs {
            println!("  {}", spec.name);
        }
        return Ok(());
    }

    if opts.serve {
        return serve(opts, scenario, api);
    }

    if opts.trace {
        return trace(opts, scenario, api);
    }

    let query_text = opts.query.as_deref().ok_or("no query given")?;
    let query = parse_query(query_text, scenario.platform.keywords()).map_err(|e| e.to_string())?;

    let algorithm = parse_algorithm(&opts.algorithm, opts.interval)?;

    let analyzer = MicroblogAnalyzer::new(&scenario.platform, api);
    let est = analyzer
        .estimate(&query, opts.budget, algorithm, opts.seed)
        .map_err(|e| e.to_string())?;

    println!("estimate   : {:.3}", est.value);
    if let Some(se) = est.std_err {
        println!("std. error : {se:.3}");
    }
    println!(
        "query cost : {} API calls ≈ {} of {} wall-clock",
        est.cost,
        human_duration(wall_clock(analyzer.api_profile(), est.cost)),
        opts.platform
    );
    println!(
        "samples    : {} across {} walk instance(s)",
        est.samples, est.instances
    );
    if opts.truth {
        match analyzer.ground_truth(&query) {
            Some(truth) => println!(
                "truth      : {:.3} (relative error {:.1}%)",
                truth,
                100.0 * est.relative_error(truth)
            ),
            None => println!("truth      : undefined (no matching users)"),
        }
    }
    Ok(())
}

fn trace(opts: Options, scenario: Scenario, api: ApiProfile) -> Result<(), String> {
    let query_text = opts.query.as_deref().ok_or("no query given")?;
    let query = parse_query(query_text, scenario.platform.keywords()).map_err(|e| e.to_string())?;
    let algorithm = parse_algorithm(&opts.algorithm, opts.interval)?;
    let spec = JobSpec::new(query, algorithm, opts.budget, opts.seed);
    let run = record_job(
        Arc::new(scenario.platform),
        api,
        spec,
        opts.telemetry,
        RecorderConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    std::fs::write(&opts.out, render_jsonl(&run.events))
        .map_err(|e| format!("cannot write {}: {e}", opts.out))?;
    eprintln!(
        "recorded {} event(s) to {} ({} offered, {} lost to sampling/eviction)",
        run.events.len(),
        opts.out,
        run.stats.total_seen(),
        run.stats.total_lost(),
    );
    match run.outcome.output() {
        Some(out) => {
            println!("estimate   : {:.3}", out.estimate.value);
            println!("query cost : {} API calls", out.charged);
            println!(
                "samples    : {} across {} walk instance(s)",
                out.estimate.samples, out.estimate.instances
            );
        }
        None => {
            if let microblog_service::JobOutcome::Failed { error, .. } = &run.outcome {
                eprintln!("job failed: {error}");
            }
        }
    }
    if opts.summary {
        print!("{}", TraceSummary::from_events(&run.events).render_text());
    }
    Ok(())
}

fn serve(opts: Options, scenario: Scenario, api: ApiProfile) -> Result<(), String> {
    // Flags override pieces of the stock resilient policy.
    let mut retry = RetryPolicy::resilient();
    if let Some(attempts) = opts.retry {
        retry = retry.with_max_attempts(attempts.max(1));
    }
    if let Some(deadline) = opts.deadline {
        retry = retry.with_deadline(Duration(deadline.max(0)));
    }
    let mut config = ServiceConfig {
        workers: opts.workers,
        global_quota: opts.global_quota,
        cache: SharedCacheConfig {
            capacity: opts.cache_capacity,
            ..SharedCacheConfig::default()
        },
        retry,
        fault_plan: opts.fault_plan,
        telemetry: opts.telemetry,
        journal: opts.journal.as_ref().map(std::path::PathBuf::from),
        checkpoint_every: opts.checkpoint_every,
        crash_plan: opts.crash_plan,
        drain_timeout: opts.drain_timeout.map(std::time::Duration::from_secs),
        stats_every: opts.stats_every,
        ..ServiceConfig::default()
    };
    if opts.stats_every > 0 {
        // Live stats flow through an enabled tracer whose sink writes
        // `stats` frames to the stream and feeds everything else back
        // into the hub for pipeline-stage span correlation.
        let hub = Arc::new(StatsHub::new(StatsConfig::default()));
        let writer: Box<dyn Write + Send> = match &opts.stats_out {
            Some(path) => {
                Box::new(File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?)
            }
            None => Box::new(std::io::stdout()),
        };
        let sink = StatsSink::new(Arc::clone(&hub)).with_output(writer);
        config.tracer = Tracer::new(
            Arc::new(sink),
            Arc::new(TelemetryClock::new(opts.telemetry)),
        );
        config.stats = Some(hub);
    }
    let service = Service::start(Arc::new(scenario.platform), api, config)
        .map_err(|e| format!("cannot open journal: {e}"))?;
    if opts.stats_every > 0 {
        eprintln!(
            "live stats: every {} settlement(s) → {}",
            opts.stats_every,
            opts.stats_out.as_deref().unwrap_or("stdout"),
        );
    }
    eprintln!(
        "serving with {} worker(s), quota {}, cache capacity {}",
        service.workers(),
        match opts.global_quota {
            Some(q) => q.to_string(),
            None => "unlimited".into(),
        },
        opts.cache_capacity
    );
    if let Some(injector) = service.fault_injector() {
        eprintln!("fault injection on: {:?}", injector.plan().rates);
    }
    if let Some(injector) = service.crash_injector() {
        eprintln!("crash injection on: {:?}", injector.plan());
    }
    if let Some(recovery) = service.recovery() {
        eprintln!(
            "journal replay: {} record(s), {} settled job(s) ({} calls adopted), \
             {} resumed, {} abandoned{}",
            recovery.records,
            recovery.settled_jobs,
            recovery.adopted_calls,
            recovery.resumed_jobs,
            recovery.abandoned_jobs,
            if recovery.dropped_bytes > 0 {
                format!(
                    ", torn tail repaired ({} byte(s) dropped)",
                    recovery.dropped_bytes
                )
            } else {
                String::new()
            }
        );
    }

    // When the stats stream shares stdout, workers write to it
    // concurrently — take the lock per write (each line stays atomic)
    // instead of holding it across the whole batch.
    let shared_stdout = opts.stats_every > 0 && opts.stats_out.is_none();
    let mut output: Box<dyn Write> = if shared_stdout {
        Box::new(std::io::stdout())
    } else {
        Box::new(std::io::stdout().lock())
    };
    let summary = match &opts.file {
        Some(path) => {
            let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            run_batch(&service, BufReader::new(file), &mut output)
        }
        None => {
            let stdin = std::io::stdin();
            run_batch(&service, stdin.lock(), &mut output)
        }
    }
    .map_err(|e| e.to_string())?;
    output.flush().map_err(|e| e.to_string())?;
    if opts.stats_every > 0 {
        // A final emission so totals in the stream are final — the
        // stats-conservation audit reconciles deltas against them.
        service.emit_stats();
    }

    eprintln!(
        "\n{} request(s): {} ok, {} degraded, {} rejected, {} error(s)",
        summary.requests, summary.ok, summary.degraded, summary.rejected, summary.errors
    );
    if let Some(injector) = service.fault_injector() {
        let injected = injector.injected();
        eprintln!(
            "faults injected: {} transient, {} rate-limited, {} timeout, {} truncated \
             over {} platform fetches",
            injected.transient,
            injected.rate_limited,
            injected.timeout,
            injected.truncated,
            injector.fetches(),
        );
    }
    let cache = service.cache_snapshot();
    eprintln!(
        "shared cache: {} entries, hit rate {:.1}%",
        cache.entries,
        100.0 * cache.hit_rate()
    );
    eprint!("{}", service.metrics_snapshot().render_text());
    let report = service.shutdown();
    if !report.clean {
        eprintln!(
            "drain deadline expired: {} job(s) journaled as interrupted",
            report.interrupted.len()
        );
    }
    Ok(())
}

/// `ma-cli top`: fold a stats JSONL stream (file or stdin) into the
/// dashboard. Live mode redraws on every stats frame; `--once` prints a
/// single plain-text snapshot after the stream ends.
fn top(opts: Options) -> Result<(), String> {
    let reader: Box<dyn BufRead> = match &opts.file {
        Some(path) => Box::new(BufReader::new(
            File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?,
        )),
        None => Box::new(BufReader::new(std::io::stdin())),
    };
    let mut dash = Dashboard::new();
    let stdout = std::io::stdout();
    for line in reader.lines() {
        let line = line.map_err(|e| e.to_string())?;
        let refreshed = dash.feed_line(&line);
        if refreshed && !opts.once {
            // Clear-and-home per refresh; the final state stays visible.
            let mut out = stdout.lock();
            let _ = write!(out, "\x1b[2J\x1b[H{}", dash.render());
            let _ = out.flush();
        }
    }
    // `--once` prints a single snapshot; live mode leaves a final
    // plain (scrollback-friendly) copy after the stream ends.
    print!("{}", dash.render());
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn defaults_hold() {
        let o = parse_args(vec!["SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'x'".into()]).unwrap();
        assert_eq!(o.platform, "twitter");
        assert_eq!(o.scale, Scale::Small);
        assert_eq!(o.budget, 25_000);
        assert_eq!(o.algorithm, "tarw");
        assert!(o.interval.is_none());
        assert!(!o.truth);
        assert!(!o.serve);
        assert!(o.query.is_some());
    }

    #[test]
    fn parses_all_options() {
        let mut a = args("--platform tumblr --scale large --world-seed 9 --algorithm srw --budget 123 --interval 1w --seed 4 --truth --list-keywords");
        a.push("q".into());
        let o = parse_args(a).unwrap();
        assert_eq!(o.platform, "tumblr");
        assert_eq!(o.scale, Scale::Large);
        assert_eq!(o.world_seed, 9);
        assert_eq!(o.algorithm, "srw");
        assert_eq!(o.budget, 123);
        assert_eq!(o.interval, Some(Duration::WEEK));
        assert_eq!(o.seed, 4);
        assert!(o.truth);
        assert!(o.list_keywords);
        assert_eq!(o.query.as_deref(), Some("q"));
    }

    #[test]
    fn parses_serve_options() {
        let o = parse_args(args(
            "serve --workers 8 --global-quota 50000 --cache-capacity 1024 --file reqs.jsonl",
        ))
        .unwrap();
        assert!(o.serve);
        assert_eq!(o.workers, 8);
        assert_eq!(o.global_quota, Some(50_000));
        assert_eq!(o.cache_capacity, 1024);
        assert_eq!(o.file.as_deref(), Some("reqs.jsonl"));
    }

    #[test]
    fn parses_stats_options() {
        let o = parse_args(args("serve --stats-every 2 --stats-out stats.jsonl")).unwrap();
        assert!(o.serve);
        assert_eq!(o.stats_every, 2);
        assert_eq!(o.stats_out.as_deref(), Some("stats.jsonl"));
    }

    #[test]
    fn parses_top_options() {
        let o = parse_args(args("top --file stats.jsonl --once")).unwrap();
        assert!(o.top);
        assert!(o.once);
        assert_eq!(o.file.as_deref(), Some("stats.jsonl"));
        assert_eq!(o.stats_every, 0);
    }

    #[test]
    fn rejects_bad_stats_every() {
        assert!(parse_args(args("serve --stats-every nope")).is_err());
    }

    #[test]
    fn parses_resilience_options() {
        let o = parse_args(args(
            "serve --retry 8 --deadline 3600 --fault-plan transient=0.05,rate_limited=0.02,seed=42",
        ))
        .unwrap();
        assert_eq!(o.retry, Some(8));
        assert_eq!(o.deadline, Some(3600));
        let plan = o.fault_plan.expect("plan parses");
        assert_eq!(plan.seed, 42);
        assert!((plan.rates.transient - 0.05).abs() < 1e-12);
        assert!((plan.rates.rate_limited - 0.02).abs() < 1e-12);
        assert!(parse_args(args("serve --fault-plan transient=2.0")).is_err());
        assert!(parse_args(args("serve --retry lots")).is_err());
    }

    #[test]
    fn parses_recovery_options() {
        let o = parse_args(args(
            "serve --journal /tmp/j --checkpoint-every 500 --drain-timeout 30 \
             --crash-plan point=pre_settle,hit=2",
        ))
        .unwrap();
        assert_eq!(o.journal.as_deref(), Some("/tmp/j"));
        assert_eq!(o.checkpoint_every, 500);
        assert_eq!(o.drain_timeout, Some(30));
        let plan = o.crash_plan.expect("plan parses");
        assert_eq!(plan.point, "pre_settle");
        assert_eq!(plan.hit, 2);
        let torn = parse_args(args("serve --crash-plan point=checkpoint,mode=torn,drop=7"))
            .unwrap()
            .crash_plan
            .unwrap();
        assert!(matches!(
            torn.mode,
            microblog_platform::CrashMode::TornTail { drop: 7 }
        ));
        assert!(
            parse_args(args("serve --crash-plan hit=2")).is_err(),
            "no point"
        );
        assert!(parse_args(args("serve --checkpoint-every sometimes")).is_err());
        assert!(parse_args(args("serve --drain-timeout soon")).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(args("--scale galactic")).is_err());
        assert!(parse_args(args("--interval fortnight")).is_err());
        assert!(parse_args(args("--budget lots")).is_err());
        assert!(parse_args(args("--unknown-flag")).is_err());
        assert!(parse_args(args("--budget")).is_err(), "missing value");
        assert!(parse_args(args("serve --workers many")).is_err());
        let two = parse_args(vec!["a".into(), "b".into()]);
        assert!(two.is_err(), "two positional queries");
    }

    #[test]
    fn interval_aliases() {
        for (txt, expect) in [
            ("2h", Duration::hours(2)),
            ("12h", Duration::hours(12)),
            ("1d", Duration::DAY),
            ("2d", Duration::days(2)),
            ("1m", Duration::MONTH),
        ] {
            let o = parse_args(args(&format!("--interval {txt}"))).unwrap();
            assert_eq!(o.interval, Some(expect), "{txt}");
        }
        assert!(parse_args(args("--interval auto"))
            .unwrap()
            .interval
            .is_none());
    }
}
