//! Record one job's structured trace and explain where its budget went.
//!
//! [`record_job`] runs a single [`JobSpec`] through a one-worker
//! [`Service`] with an enabled [`Tracer`] writing into a
//! [`RingRecorder`], then drains the recorder into a seq-ordered event
//! stream. Under the default logical telemetry the stream is a pure
//! function of the job spec and world seed — two identical runs export
//! byte-identical JSON lines.
//!
//! [`TraceSummary`] folds that stream into the questions an operator
//! actually asks: *which walk phase (and, for MA-TARW, which level)
//! spent the budget, on which endpoint?* — plus acceptance/collision
//! rates, the running Geweke z-scores the walkers emitted, cache
//! traffic, and the resilience trail.

use crate::engine::{JobOutcome, Service, ServiceConfig};
use crate::request::JobSpec;
use microblog_api::ApiProfile;
use microblog_obs::{
    Category, EventKind, RecorderConfig, RecorderStats, RingRecorder, TelemetryClock,
    TelemetryMode, TraceEvent, Tracer, WalkPhase,
};
use microblog_platform::Platform;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything one traced job produced.
#[derive(Debug)]
pub struct TraceRun {
    /// How the job ended.
    pub outcome: JobOutcome,
    /// The recorded events, ordered by sequence number.
    pub events: Vec<TraceEvent>,
    /// Recorder loss counters (sampling + ring eviction).
    pub stats: RecorderStats,
}

/// Runs `spec` on a dedicated one-worker service with tracing enabled
/// and returns the outcome together with the drained event stream.
///
/// With `mode == TelemetryMode::Logical` (the default everywhere) the
/// event stream is deterministic: one worker, one job, and a logical
/// clock shared between the tracer and the service's queue/exec
/// telemetry leave no room for scheduling noise.
pub fn record_job(
    platform: Arc<Platform>,
    api: ApiProfile,
    spec: JobSpec,
    mode: TelemetryMode,
    recorder: RecorderConfig,
) -> Result<TraceRun, crate::engine::ServiceError> {
    let sink = Arc::new(RingRecorder::new(recorder));
    let clock = Arc::new(TelemetryClock::new(mode));
    let tracer = Tracer::new(sink.clone(), clock);
    let service = Service::new(
        platform,
        api,
        ServiceConfig {
            workers: 1,
            telemetry: mode,
            tracer,
            ..ServiceConfig::default()
        },
    );
    let outcome = service.submit(spec)?.join();
    service.shutdown();
    Ok(TraceRun {
        outcome,
        events: sink.drain(),
        stats: sink.stats(),
    })
}

/// Budget spent inside one walk phase.
#[derive(Clone, Debug, Default)]
pub struct PhaseCost {
    /// Charged calls attributed to this phase.
    pub calls: u64,
    /// The same calls, split by endpoint name.
    pub by_endpoint: BTreeMap<String, u64>,
    /// The same calls, split by published MA-TARW level (empty for
    /// phases that never publish one).
    pub by_level: BTreeMap<i64, u64>,
}

/// The operator-facing digest of a trace; see the module docs.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Events summarized.
    pub events: usize,
    /// Total charged calls seen in `charge` events.
    pub charged_calls: u64,
    /// Charged calls carrying a non-idle walk phase.
    pub attributed_calls: u64,
    /// Charged calls served from the shared cache (still charged, per
    /// the logical-charging doctrine).
    pub shared_sourced_calls: u64,
    /// Cost per phase, keyed by [`WalkPhase::index`] so iteration
    /// follows the walk's natural order.
    pub phases: BTreeMap<usize, PhaseCost>,
    /// Samples the walkers kept.
    pub samples: u64,
    /// Samples that revisited an already-sampled node (`collide = 1`).
    pub collisions: u64,
    /// Accepted MH proposals.
    pub mh_accepts: u64,
    /// Rejected MH proposals.
    pub mh_rejects: u64,
    /// Walk restarts from a dangling node.
    pub restarts: u64,
    /// Running Geweke z-scores, in emission order.
    pub geweke_zs: Vec<f64>,
    /// Per-query memo hits.
    pub local_hits: u64,
    /// Shared-cache hits.
    pub shared_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Shared-cache evictions.
    pub shared_evictions: u64,
    /// Retried API attempts.
    pub retries: u64,
    /// Calls wasted by failed attempts.
    pub wasted_calls: u64,
    /// Circuit-breaker trips.
    pub breaker_opens: u64,
    /// Calls fast-failed by an open breaker.
    pub breaker_fast_fails: u64,
}

impl TraceSummary {
    /// Folds a seq-ordered event stream into a summary.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut s = TraceSummary {
            events: events.len(),
            ..TraceSummary::default()
        };
        for e in events {
            match (e.category, e.name) {
                (Category::Charge, "charge") => {
                    let calls = e.u64_field("calls").unwrap_or(0);
                    s.charged_calls += calls;
                    if e.phase != WalkPhase::Idle {
                        s.attributed_calls += calls;
                    }
                    if e.str_field("source") == Some("shared") {
                        s.shared_sourced_calls += calls;
                    }
                    let phase = s.phases.entry(e.phase.index()).or_default();
                    phase.calls += calls;
                    if let Some(endpoint) = e.str_field("endpoint") {
                        *phase.by_endpoint.entry(endpoint.to_string()).or_default() += calls;
                    }
                    if let Some(level) = e.level {
                        *phase.by_level.entry(level).or_default() += calls;
                    }
                }
                (Category::Walk, "sample") => {
                    s.samples += 1;
                    if e.u64_field("collide") == Some(1) {
                        s.collisions += 1;
                    }
                }
                (Category::Walk, "mh_accept") => s.mh_accepts += 1,
                (Category::Walk, "mh_reject") => s.mh_rejects += 1,
                (Category::Walk, "restart") => s.restarts += 1,
                (Category::Diag, "geweke") => {
                    if let Some(z) = e.f64_field("z") {
                        s.geweke_zs.push(z);
                    }
                }
                (Category::Cache, "local_hit") => s.local_hits += 1,
                (Category::Cache, "shared_hit") => s.shared_hits += 1,
                (Category::Cache, "miss") => s.cache_misses += 1,
                (Category::Cache, "shared_evict") => s.shared_evictions += 1,
                (Category::Resilience, "retry") => s.retries += 1,
                (Category::Resilience, "waste") => {
                    s.wasted_calls += e.u64_field("calls").unwrap_or(0);
                }
                (Category::Resilience, "breaker_open") => s.breaker_opens += 1,
                (Category::Resilience, "breaker_fast_fail") => s.breaker_fast_fails += 1,
                _ => {}
            }
        }
        s
    }

    /// Fraction of charged calls attributed to a non-idle walk phase
    /// (1.0 when nothing was charged).
    pub fn attribution(&self) -> f64 {
        if self.charged_calls == 0 {
            1.0
        } else {
            self.attributed_calls as f64 / self.charged_calls as f64
        }
    }

    /// MH acceptance rate, when the trace contains MH proposals.
    pub fn acceptance_rate(&self) -> Option<f64> {
        let total = self.mh_accepts + self.mh_rejects;
        (total > 0).then(|| self.mh_accepts as f64 / total as f64)
    }

    /// Fraction of samples that were collisions, when any were kept.
    pub fn collision_rate(&self) -> Option<f64> {
        (self.samples > 0).then(|| self.collisions as f64 / self.samples as f64)
    }

    /// The aligned-text cost tree and rate report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut line = |k: &str, v: String| {
            out.push_str(&format!("{k:<22}{v}\n"));
        };
        line("trace events", self.events.to_string());
        line(
            "charged calls",
            format!(
                "{} ({:.1}% attributed to walk phases)",
                self.charged_calls,
                100.0 * self.attribution()
            ),
        );
        if self.shared_sourced_calls > 0 {
            line(
                "  served by cache",
                format!("{} (charged logically)", self.shared_sourced_calls),
            );
        }
        // Levels are raw `level_of_time` quotients; an unbounded query
        // window makes them huge. Display them relative to the lowest
        // level seen, stating the base once.
        let base = self
            .phases
            .values()
            .flat_map(|c| c.by_level.keys().copied())
            .min();
        if let Some(base) = base {
            if base != 0 {
                line("level base", base.to_string());
            }
        }
        for (&idx, cost) in &self.phases {
            let name = WalkPhase::ALL
                .get(idx)
                .copied()
                .unwrap_or_default()
                .as_str();
            line(&format!("phase {name}"), format!("{} calls", cost.calls));
            for (endpoint, calls) in &cost.by_endpoint {
                line(&format!("  {endpoint}"), calls.to_string());
            }
            for (&level, calls) in &cost.by_level {
                let rel = level - base.unwrap_or(0);
                line(&format!("  level +{rel}"), format!("{calls} calls"));
            }
        }
        line(
            "samples",
            match self.collision_rate() {
                Some(rate) => format!(
                    "{} ({} collisions, {:.1}%)",
                    self.samples,
                    self.collisions,
                    100.0 * rate
                ),
                None => self.samples.to_string(),
            },
        );
        if let Some(rate) = self.acceptance_rate() {
            line(
                "mh acceptance",
                format!(
                    "{:.1}% ({}/{})",
                    100.0 * rate,
                    self.mh_accepts,
                    self.mh_accepts + self.mh_rejects
                ),
            );
        }
        if self.restarts > 0 {
            line("restarts", self.restarts.to_string());
        }
        if let Some(z) = self.geweke_zs.last() {
            line(
                "geweke z",
                format!("{z:.3} (final of {} checkpoints)", self.geweke_zs.len()),
            );
        }
        line(
            "cache",
            format!(
                "{} local + {} shared hits, {} misses, {} evictions",
                self.local_hits, self.shared_hits, self.cache_misses, self.shared_evictions
            ),
        );
        line(
            "resilience",
            format!(
                "{} retries, {} wasted calls, {} breaker opens, {} fast-fails",
                self.retries, self.wasted_calls, self.breaker_opens, self.breaker_fast_fails
            ),
        );
        out
    }
}

/// `true` for the span-end event that closes a job, useful when slicing
/// a multi-job stream into per-job segments.
pub fn is_job_end(event: &TraceEvent) -> bool {
    event.category == Category::Job && event.kind == EventKind::SpanEnd && event.name == "job"
}

#[cfg(test)]
mod tests {
    use super::*;
    use microblog_analyzer::query::parse::parse_query;
    use microblog_analyzer::Algorithm;
    use microblog_platform::scenario::{twitter_2013, Scale};

    fn traced_run(algorithm: Algorithm, budget: u64, seed: u64) -> TraceRun {
        let scenario = twitter_2013(Scale::Tiny, 2014);
        let platform = Arc::new(scenario.platform);
        let query = parse_query(
            "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'",
            platform.keywords(),
        )
        .expect("query parses");
        record_job(
            platform,
            ApiProfile::twitter(),
            JobSpec::new(query, algorithm, budget, seed),
            TelemetryMode::Logical,
            RecorderConfig::default(),
        )
        .expect("admitted")
    }

    #[test]
    fn traced_job_attributes_charges_to_phases() {
        // Explicit interval: no pilot phase, so the instance walks fetch
        // fresh neighbors and the per-level cost split is populated.
        let run = traced_run(
            Algorithm::MaTarw {
                interval: Some(microblog_platform::Duration::DAY),
            },
            4_000,
            7,
        );
        let output = run.outcome.output().expect("estimates").clone();
        assert!(!run.events.is_empty());
        let summary = TraceSummary::from_events(&run.events);
        assert_eq!(
            summary.charged_calls, output.charged,
            "charge events must cover exactly what the job was billed"
        );
        assert!(
            summary.attribution() >= 0.95,
            "attribution {} below the 95% bar",
            summary.attribution()
        );
        // MA-TARW publishes levels during its up/down phases.
        let leveled = summary
            .phases
            .values()
            .any(|cost| !cost.by_level.is_empty());
        assert!(leveled, "no per-level cost recorded: {:?}", summary.phases);
        let text = summary.render_text();
        assert!(text.contains("charged calls"));
        assert!(text.contains("phase "));
    }

    #[test]
    fn tracing_does_not_change_the_estimate() {
        let scenario = twitter_2013(Scale::Tiny, 2014);
        let platform = Arc::new(scenario.platform);
        let query = parse_query(
            "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'",
            platform.keywords(),
        )
        .expect("query parses");
        let spec = || {
            JobSpec::new(
                query.clone(),
                Algorithm::MaTarw { interval: None },
                3_000,
                21,
            )
        };
        let untraced = Service::new(
            Arc::clone(&platform),
            ApiProfile::twitter(),
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        let baseline = untraced
            .submit(spec())
            .expect("admitted")
            .join()
            .into_result()
            .expect("estimates");
        let traced = record_job(
            platform,
            ApiProfile::twitter(),
            spec(),
            TelemetryMode::Logical,
            RecorderConfig::default(),
        )
        .expect("admitted");
        let out = traced.outcome.into_result().expect("estimates");
        assert_eq!(
            out.estimate.value.to_bits(),
            baseline.estimate.value.to_bits(),
            "tracing must be purely observational"
        );
        assert_eq!(out.charged, baseline.charged);
    }

    #[test]
    fn srw_trace_reports_collisions_and_geweke() {
        let run = traced_run(Algorithm::MaSrw { interval: None }, 6_000, 11);
        let summary = TraceSummary::from_events(&run.events);
        assert!(summary.samples > 0);
        assert!(
            !summary.geweke_zs.is_empty(),
            "SRW emits running Geweke checkpoints"
        );
        assert!(summary.attribution() >= 0.95);
    }
}
