//! The service-wide platform quota.
//!
//! Real platforms rate-limit the *account*, not the query: every query
//! the service runs draws from one pool of API calls. [`GlobalQuota`]
//! models that pool with exact reserve/settle accounting: admission
//! reserves a job's full budget up front (so the service never promises
//! calls it cannot cover), and completion settles the reservation down to
//! what the job actually charged, returning the rest to the pool.
//!
//! All mutation happens under one mutex, so concurrent submitters can
//! never jointly over-admit (no lost updates, no check-then-act races).

use parking_lot::Mutex;
use std::sync::Arc;

#[derive(Debug, Default)]
struct Inner {
    /// Calls promised to admitted-but-unfinished jobs.
    reserved: u64,
    /// Calls charged by finished jobs.
    consumed: u64,
}

/// Exact shared accounting of the platform call pool. Clones share state.
#[derive(Clone, Debug)]
pub struct GlobalQuota {
    limit: Option<u64>,
    inner: Arc<Mutex<Inner>>,
}

/// A successful reservation; settle it once the job finishes.
///
/// The token is deliberately not `Clone` and must be passed back through
/// [`GlobalQuota::settle`], making double-refunds a type error.
#[derive(Debug)]
#[must_use = "an unsettled reservation permanently holds quota"]
pub struct Reservation {
    amount: u64,
}

impl Reservation {
    /// The reserved call count.
    pub fn amount(&self) -> u64 {
        self.amount
    }
}

impl GlobalQuota {
    /// A quota capped at `limit` total calls.
    pub fn limited(limit: u64) -> Self {
        GlobalQuota {
            limit: Some(limit),
            inner: Arc::default(),
        }
    }

    /// An uncapped quota (admission always succeeds).
    pub fn unlimited() -> Self {
        GlobalQuota {
            limit: None,
            inner: Arc::default(),
        }
    }

    /// The configured cap.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    /// Atomically reserves `amount` calls, or reports how many are left
    /// uncommitted when the pool cannot cover the request.
    pub fn try_reserve(&self, amount: u64) -> Result<Reservation, u64> {
        let mut inner = self.inner.lock();
        match self.limit {
            Some(limit) => {
                let committed = inner.reserved + inner.consumed;
                let available = limit.saturating_sub(committed);
                if amount <= available {
                    inner.reserved += amount;
                    Ok(Reservation { amount })
                } else {
                    Err(available)
                }
            }
            // Unlimited: nothing to book — `settle` only ever adds to
            // `consumed`, so `reserved` stays 0.
            None => Ok(Reservation { amount }),
        }
    }

    /// Settles a reservation: `used` calls (≤ the reservation) become
    /// consumed, the remainder returns to the pool.
    pub fn settle(&self, reservation: Reservation, used: u64) {
        let used = used.min(reservation.amount);
        let mut inner = self.inner.lock();
        // Unlimited quotas never book reservations (see `try_reserve`),
        // so there is nothing to release.
        if self.limit.is_some() {
            inner.reserved -= reservation.amount;
        }
        inner.consumed += used;
    }

    /// Adopts `used` calls as already consumed — journal replay calls
    /// this at startup for jobs a previous process settled, so a
    /// restarted service resumes accounting where the old one stopped
    /// without ever re-reserving for finished work.
    pub fn adopt(&self, used: u64) {
        self.inner.lock().consumed += used;
    }

    /// Calls charged by finished jobs.
    pub fn consumed(&self) -> u64 {
        self.inner.lock().consumed
    }

    /// Calls currently promised to running jobs.
    pub fn reserved(&self) -> u64 {
        self.inner.lock().reserved
    }

    /// Uncommitted calls left in the pool (`None` = unlimited).
    pub fn remaining(&self) -> Option<u64> {
        self.limit.map(|limit| {
            let inner = self.inner.lock();
            limit.saturating_sub(inner.reserved + inner.consumed)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_settle_cycle_is_exact() {
        let q = GlobalQuota::limited(100);
        let r = q.try_reserve(60).unwrap();
        assert_eq!(q.remaining(), Some(40));
        assert_eq!(q.try_reserve(50).unwrap_err(), 40, "reports what's left");
        q.settle(r, 25);
        assert_eq!(q.consumed(), 25);
        assert_eq!(q.reserved(), 0);
        assert_eq!(q.remaining(), Some(75));
        let r2 = q.try_reserve(75).unwrap();
        q.settle(r2, 75);
        assert_eq!(q.remaining(), Some(0));
        assert!(q.try_reserve(1).is_err());
    }

    #[test]
    fn unlimited_always_admits() {
        let q = GlobalQuota::unlimited();
        let r = q.try_reserve(u64::MAX).unwrap();
        assert_eq!(q.remaining(), None);
        q.settle(r, 10);
        assert_eq!(q.consumed(), 10);
    }

    #[test]
    fn settle_caps_used_at_reservation() {
        let q = GlobalQuota::limited(10);
        let r = q.try_reserve(4).unwrap();
        q.settle(r, 99);
        assert_eq!(q.consumed(), 4, "cannot consume more than reserved");
    }

    #[test]
    fn concurrent_reservations_never_over_admit() {
        let q = GlobalQuota::limited(1000);
        let admitted: Vec<_> = (0..16)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut wins = 0u64;
                    for _ in 0..100 {
                        if let Ok(r) = q.try_reserve(7) {
                            wins += 1;
                            q.settle(r, 7);
                        }
                    }
                    wins
                })
            })
            .collect();
        let total: u64 = admitted.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(q.consumed(), total * 7);
        assert!(q.consumed() <= 1000);
        assert_eq!(q.reserved(), 0);
    }
}
