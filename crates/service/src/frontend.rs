//! The JSON-lines frontend behind `ma-cli serve`.
//!
//! Reads one [`QueryRequest`] per input line, submits every parseable
//! request up front (so jobs run concurrently across the worker pool),
//! then joins the handles and writes one [`QueryResponse`] per request,
//! in input order.

use crate::engine::{JobHandle, JobOutcome, Service, ServiceError};
use crate::request::{
    parse_algorithm, parse_interval, JobSpec, QueryRequest, QueryResponse, DEFAULT_BUDGET,
    DEFAULT_SEED,
};
use microblog_analyzer::query::parse::parse_query;
use microblog_api::RetryPolicy;
use microblog_platform::Duration;
use std::io::{self, BufRead, Write};

/// What a batch run did, for the operator's closing summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchSummary {
    /// Non-empty input lines.
    pub requests: usize,
    /// Jobs that produced a full estimate.
    pub ok: usize,
    /// Jobs that produced a partial estimate (walk gave up early on a
    /// fatal resilience error).
    pub degraded: usize,
    /// Jobs refused by admission control.
    pub rejected: usize,
    /// Malformed lines and failed estimations.
    pub errors: usize,
}

enum Pending {
    /// Failed before reaching the engine (parse error, rejection).
    Immediate(Box<QueryResponse>),
    /// Admitted; the response comes from joining the handle.
    Running(Option<u64>, JobHandle),
}

/// Runs every request in `input` through `service`, writing one JSON
/// response line per request to `output`.
pub fn run_batch<R: BufRead, W: Write>(
    service: &Service,
    input: R,
    output: &mut W,
) -> io::Result<BatchSummary> {
    let mut pending = Vec::new();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        pending.push(submit_line(service, &line));
    }

    let mut summary = BatchSummary {
        requests: pending.len(),
        ..BatchSummary::default()
    };
    for entry in pending {
        let response = match entry {
            Pending::Immediate(response) => *response,
            Pending::Running(id, handle) => outcome_response(id, handle.join()),
        };
        match response.status.as_str() {
            "ok" => summary.ok += 1,
            "degraded" => summary.degraded += 1,
            "rejected" => summary.rejected += 1,
            _ => summary.errors += 1,
        }
        let json = serde_json::to_string(&response)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(output, "{json}")?;
    }
    output.flush()?;
    Ok(summary)
}

fn submit_line(service: &Service, line: &str) -> Pending {
    let request: QueryRequest = match serde_json::from_str(line) {
        Ok(request) => request,
        Err(err) => {
            return Pending::Immediate(Box::new(QueryResponse::failure(
                None,
                "error",
                format!("bad request line: {err}"),
            )))
        }
    };
    let id = request.id;
    match build_spec(service, request) {
        Ok(spec) => match service.submit(spec) {
            Ok(handle) => Pending::Running(id, handle),
            Err(err) => Pending::Immediate(Box::new(failure_response(id, &err))),
        },
        Err(message) => Pending::Immediate(Box::new(QueryResponse::failure(id, "error", message))),
    }
}

fn outcome_response(id: Option<u64>, outcome: JobOutcome) -> QueryResponse {
    let degraded = outcome.is_degraded();
    match outcome.into_result() {
        Ok(output) => QueryResponse {
            id,
            status: if degraded { "degraded" } else { "ok" }.into(),
            estimate: Some(output.estimate),
            error: if degraded {
                Some(output.resilience.trail.join("; "))
            } else {
                None
            },
            cache: Some(output.cache),
            resilience: Some(output.resilience),
            queue_wait_micros: Some(output.queue_wait.as_micros() as u64),
            exec_micros: Some(output.exec.as_micros() as u64),
        },
        Err(err) => failure_response(id, &err),
    }
}

fn build_spec(service: &Service, request: QueryRequest) -> Result<JobSpec, String> {
    let query = parse_query(&request.query, service.platform().keywords())
        .map_err(|e| format!("bad query: {e}"))?;
    let interval = match request.interval.as_deref() {
        Some(text) => parse_interval(text)?,
        None => None,
    };
    let algorithm = parse_algorithm(request.algorithm.as_deref().unwrap_or("tarw"), interval)?;
    // A per-request retry/deadline overrides the service default; the
    // override starts from the stock resilient policy.
    let retry = match (request.retry, request.deadline) {
        (None, None) => None,
        (attempts, deadline) => {
            let mut policy = RetryPolicy::resilient();
            if let Some(attempts) = attempts {
                policy = policy.with_max_attempts(attempts.max(1));
            }
            if let Some(deadline) = deadline {
                policy = policy.with_deadline(Duration(deadline.max(0)));
            }
            Some(policy)
        }
    };
    Ok(JobSpec {
        query,
        algorithm,
        budget: request.budget.unwrap_or(DEFAULT_BUDGET),
        seed: request.seed.unwrap_or(DEFAULT_SEED),
        retry,
    })
}

fn failure_response(id: Option<u64>, err: &ServiceError) -> QueryResponse {
    let status = match err {
        ServiceError::Rejected { .. } => "rejected",
        _ => "error",
    };
    QueryResponse::failure(id, status, err.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SharedCacheConfig;
    use crate::engine::ServiceConfig;
    use microblog_api::ApiProfile;
    use microblog_platform::scenario::{twitter_2013, Scale};
    use std::sync::Arc;

    fn tiny_service(global_quota: Option<u64>) -> Service {
        let scenario = twitter_2013(Scale::Tiny, 2014);
        Service::new(
            Arc::new(scenario.platform),
            ApiProfile::twitter(),
            ServiceConfig {
                workers: 2,
                global_quota,
                cache: SharedCacheConfig {
                    capacity: 4096,
                    shards: 4,
                },
                ..ServiceConfig::default()
            },
        )
    }

    fn response_lines(out: &[u8]) -> Vec<serde_json::Value> {
        std::str::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| serde_json::parse_value_str(l).unwrap())
            .collect()
    }

    fn status_of(value: &serde_json::Value) -> String {
        let map = value.as_map().unwrap();
        match serde::value::field(map, "status") {
            serde_json::Value::Str(s) => s.clone(),
            other => panic!("status not a string: {other:?}"),
        }
    }

    #[test]
    fn batch_runs_and_keeps_input_order() {
        let service = tiny_service(None);
        let input = "\
{\"id\": 1, \"query\": \"SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'\", \"budget\": 2000}\n\
\n\
{\"id\": 2, \"query\": \"SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'privacy'\", \"budget\": 2000, \"algorithm\": \"srw\"}\n";
        let mut out = Vec::new();
        let summary = run_batch(&service, input.as_bytes(), &mut out).unwrap();
        assert_eq!(
            summary,
            BatchSummary {
                requests: 2,
                ok: 2,
                ..BatchSummary::default()
            }
        );
        let lines = response_lines(&out);
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(status_of(line), "ok");
            let map = line.as_map().unwrap();
            assert_eq!(
                *serde::value::field(map, "id"),
                serde_json::Value::I64(i as i64 + 1),
                "responses follow input order"
            );
        }
    }

    #[test]
    fn bad_lines_report_errors_without_sinking_the_batch() {
        let service = tiny_service(None);
        let input = "\
this is not json\n\
{\"id\": 9, \"query\": \"SELECT NONSENSE\"}\n\
{\"id\": 10, \"query\": \"SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'\", \"budget\": 1500}\n";
        let mut out = Vec::new();
        let summary = run_batch(&service, input.as_bytes(), &mut out).unwrap();
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.ok, 1);
        assert_eq!(summary.errors, 2);
        let lines = response_lines(&out);
        assert_eq!(status_of(&lines[0]), "error");
        assert_eq!(status_of(&lines[1]), "error");
        assert_eq!(status_of(&lines[2]), "ok");
    }

    #[test]
    fn over_quota_requests_are_rejected() {
        // The first job claims the whole pool; whether it is still
        // reserved or already settled (any run charges at least one
        // call), the second full-pool request cannot fit.
        let service = tiny_service(Some(1_000));
        let input = "\
{\"id\": 1, \"query\": \"SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'\", \"budget\": 1000}\n\
{\"id\": 2, \"query\": \"SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'\", \"budget\": 1000}\n";
        let mut out = Vec::new();
        let summary = run_batch(&service, input.as_bytes(), &mut out).unwrap();
        assert_eq!(summary.ok, 1);
        assert_eq!(summary.rejected, 1);
        let lines = response_lines(&out);
        assert_eq!(status_of(&lines[0]), "ok");
        assert_eq!(status_of(&lines[1]), "rejected");
    }

    #[test]
    fn per_request_retry_and_deadline_are_accepted() {
        let service = tiny_service(None);
        let input =
            "{\"id\": 4, \"query\": \"SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'\", \
                     \"budget\": 1500, \"retry\": 3, \"deadline\": 86400}\n";
        let mut out = Vec::new();
        let summary = run_batch(&service, input.as_bytes(), &mut out).unwrap();
        assert_eq!(summary.ok, 1);
        assert_eq!(summary.errors, 0);
        let lines = response_lines(&out);
        assert_eq!(status_of(&lines[0]), "ok");
        // The response carries the resilience accounting (all zero on a
        // clean platform).
        let map = lines[0].as_map().unwrap();
        assert!(!matches!(
            serde::value::field(map, "resilience"),
            serde_json::Value::Null
        ));
    }
}
