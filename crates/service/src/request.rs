//! Job specifications and the JSON-lines wire format.
//!
//! Programmatic callers build a [`JobSpec`] directly; the `serve`
//! frontend parses one [`QueryRequest`] per input line and writes one
//! [`QueryResponse`] per job. The algorithm/interval spellings match
//! `ma-cli`'s flags so the two entry points stay interchangeable.

use microblog_analyzer::{AggregateQuery, Algorithm, Estimate, ViewKind};
use microblog_api::cache::CacheStats;
use microblog_api::{ResilienceStats, RetryPolicy};
use microblog_platform::Duration;
use serde::{Deserialize, Serialize};

/// Everything the engine needs to run one estimation job.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobSpec {
    /// The parsed aggregate query.
    pub query: AggregateQuery,
    /// Which estimator to run.
    pub algorithm: Algorithm,
    /// Per-query API-call budget (also the amount reserved from the
    /// global quota at admission).
    pub budget: u64,
    /// Estimator RNG seed.
    pub seed: u64,
    /// Job-level retry policy; `None` uses the service-wide default from
    /// [`ServiceConfig::retry`](crate::ServiceConfig).
    pub retry: Option<RetryPolicy>,
}

impl JobSpec {
    /// A spec using the service's default retry policy.
    pub fn new(query: AggregateQuery, algorithm: Algorithm, budget: u64, seed: u64) -> Self {
        JobSpec {
            query,
            algorithm,
            budget,
            seed,
            retry: None,
        }
    }

    /// Overrides the service's default retry policy for this job.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }
}

/// Default per-query budget when a request omits one.
pub const DEFAULT_BUDGET: u64 = 25_000;

/// Default estimator seed when a request omits one.
pub const DEFAULT_SEED: u64 = 7;

/// One line of `serve` input.
#[derive(Clone, Debug, Deserialize)]
pub struct QueryRequest {
    /// Caller-chosen correlation id, echoed back in the response.
    pub id: Option<u64>,
    /// The aggregate query text (`SELECT ... FROM USERS WHERE ...`).
    pub query: String,
    /// Algorithm name (`tarw|srw|mhrw|mr|srw-term|srw-full`); default `tarw`.
    pub algorithm: Option<String>,
    /// Per-query API budget; default [`DEFAULT_BUDGET`].
    pub budget: Option<u64>,
    /// Estimator seed; default [`DEFAULT_SEED`].
    pub seed: Option<u64>,
    /// Level interval (`2h|4h|12h|1d|2d|1w|1m|auto`); default `auto`.
    pub interval: Option<String>,
    /// Retry attempts per logical API call; overrides the service default
    /// (`1` disables retries for this job).
    pub retry: Option<u32>,
    /// Per-call deadline in simulated seconds; overrides the service
    /// default.
    pub deadline: Option<i64>,
}

/// One line of `serve` output.
#[derive(Clone, Debug, Serialize)]
pub struct QueryResponse {
    /// The request's correlation id, if it carried one.
    pub id: Option<u64>,
    /// `"ok"`, `"degraded"`, `"rejected"`, or `"error"`.
    pub status: String,
    /// The estimate, on success (partial when `"degraded"`).
    pub estimate: Option<Estimate>,
    /// The failure message, when `"rejected"`/`"error"`; the error trail,
    /// when `"degraded"`.
    pub error: Option<String>,
    /// The job client's cache traffic, on success.
    pub cache: Option<CacheStats>,
    /// Retry/backoff/breaker accounting, on success.
    pub resilience: Option<ResilienceStats>,
    /// Time spent queued, in microseconds, on success.
    pub queue_wait_micros: Option<u64>,
    /// Time spent executing, in microseconds, on success.
    pub exec_micros: Option<u64>,
}

impl QueryResponse {
    /// A non-`ok` response carrying only a message.
    pub fn failure(id: Option<u64>, status: &str, error: String) -> Self {
        QueryResponse {
            id,
            status: status.into(),
            estimate: None,
            error: Some(error),
            cache: None,
            resilience: None,
            queue_wait_micros: None,
            exec_micros: None,
        }
    }
}

/// Parses an interval spelling shared with `ma-cli`'s `--interval` flag.
/// `auto`/`None` means "let the algorithm pick" (`None`).
pub fn parse_interval(text: &str) -> Result<Option<Duration>, String> {
    Ok(match text.to_lowercase().as_str() {
        "auto" => None,
        "2h" => Some(Duration::hours(2)),
        "4h" => Some(Duration::hours(4)),
        "12h" => Some(Duration::hours(12)),
        "1d" => Some(Duration::DAY),
        "2d" => Some(Duration::days(2)),
        "1w" => Some(Duration::WEEK),
        "1m" => Some(Duration::MONTH),
        other => return Err(format!("unknown interval '{other}'")),
    })
}

/// Maps an algorithm name (shared with `ma-cli`'s `--algorithm` flag)
/// plus an optional level interval to an [`Algorithm`].
pub fn parse_algorithm(name: &str, interval: Option<Duration>) -> Result<Algorithm, String> {
    Ok(match name.to_lowercase().as_str() {
        "tarw" => Algorithm::MaTarw { interval },
        "srw" => Algorithm::MaSrw { interval },
        "mhrw" => Algorithm::Mhrw {
            view: ViewKind::level(interval.unwrap_or(Duration::DAY)),
        },
        "mr" => Algorithm::MarkRecapture {
            view: ViewKind::level(interval.unwrap_or(Duration::DAY)),
        },
        "srw-term" => Algorithm::SrwTermInduced,
        "srw-full" => Algorithm::SrwFullGraph,
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_names_round_trip() {
        assert_eq!(
            parse_algorithm("tarw", None).unwrap(),
            Algorithm::MaTarw { interval: None }
        );
        assert_eq!(
            parse_algorithm("SRW", Some(Duration::WEEK)).unwrap(),
            Algorithm::MaSrw {
                interval: Some(Duration::WEEK)
            }
        );
        assert_eq!(
            parse_algorithm("srw-full", None).unwrap(),
            Algorithm::SrwFullGraph
        );
        assert!(parse_algorithm("quantum", None).is_err());
    }

    #[test]
    fn interval_spellings() {
        assert_eq!(parse_interval("auto").unwrap(), None);
        assert_eq!(parse_interval("1d").unwrap(), Some(Duration::DAY));
        assert_eq!(parse_interval("2H").unwrap(), Some(Duration::hours(2)));
        assert!(parse_interval("fortnight").is_err());
    }

    #[test]
    fn request_line_parses_with_defaults() {
        let line = r#"{"query": "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'x'"}"#;
        let req: QueryRequest = serde_json::from_str(line).unwrap();
        assert_eq!(req.id, None);
        assert!(req.algorithm.is_none());
        assert!(req.budget.is_none());
        assert_eq!(req.query, "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'x'");
    }

    #[test]
    fn response_line_serializes() {
        let resp = QueryResponse::failure(Some(3), "rejected", "quota exhausted".into());
        let line = serde_json::to_string(&resp).unwrap();
        let value = serde_json::parse_value_str(&line).unwrap();
        let map = value.as_map().unwrap();
        // The reparse reads positive integers back as I64.
        assert_eq!(*serde::value::field(map, "id"), serde_json::Value::I64(3));
        assert_eq!(
            *serde::value::field(map, "status"),
            serde_json::Value::Str("rejected".into())
        );
    }
}
