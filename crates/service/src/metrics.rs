//! Service metrics.
//!
//! [`MetricsRegistry`] accumulates service-wide counters (jobs by
//! outcome, charged vs actual API calls, cache traffic, walk samples,
//! queue/execution time) from the per-job numbers each worker reports,
//! plus four log2-bucket histograms (charged-calls-per-sample, backoff,
//! queue wait, execution time) that keep tail behaviour visible where
//! means would hide it. [`MetricsSnapshot`] is the exportable
//! point-in-time view, rendered as aligned text for terminals or JSON
//! for machines.
//!
//! Duration totals are expressed in the units of the registry's
//! [`TelemetryMode`]: logical **ticks** (1 tick = 1µs of the logical
//! clock) under the default deterministic mode, **milliseconds** under
//! wall mode. Text and JSON renderings use the same unit, and the JSON
//! keys carry it (`queue_wait_total_ticks` vs `queue_wait_total_millis`)
//! so a consumer can never misread one for the other.

use crate::clock::TelemetryMode;
use microblog_api::cache::CacheStats;
use microblog_obs::{render_buckets, Log2Histogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 buckets in each histogram (re-exported from
/// `microblog-obs` for sizing snapshot arrays).
pub const HIST_BUCKETS: usize = microblog_obs::histogram::BUCKETS;

/// One finished job's numbers, as reported by a worker.
#[derive(Clone, Copy, Debug)]
pub struct JobMetrics {
    /// Whether the job produced an estimate.
    pub succeeded: bool,
    /// Whether that estimate is partial (the walk gave up early on a
    /// fatal resilience error). Degraded jobs also count as succeeded.
    pub degraded: bool,
    /// API calls charged to the job's budget (the paper's cost metric).
    pub charged_calls: u64,
    /// Reserved calls returned to the global quota at settlement.
    pub refunded_calls: u64,
    /// Samples the walk collected (0 on failure).
    pub samples: u64,
    /// Cache traffic of the job's client.
    pub cache: CacheStats,
    /// Retried API attempts.
    pub retries: u64,
    /// Calls burned by failed attempts (never charged to the budget).
    pub wasted_calls: u64,
    /// Simulated seconds spent in backoff + rate-limit waits.
    pub backoff_secs: u64,
    /// Rate-limit rejections absorbed.
    pub rate_limited_hits: u64,
    /// Circuit-breaker trips.
    pub breaker_opens: u64,
    /// Calls rejected by an open breaker without touching the platform.
    pub breaker_fast_fails: u64,
    /// Time spent queued before a worker picked the job up.
    pub queue_wait: Duration,
    /// Time spent executing.
    pub exec: Duration,
}

/// Lock-free accumulating counters; all methods take `&self`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    mode: TelemetryMode,
    jobs_submitted: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_succeeded: AtomicU64,
    jobs_degraded: AtomicU64,
    jobs_failed: AtomicU64,
    estimates_produced: AtomicU64,
    charged_calls: AtomicU64,
    refunded_calls: AtomicU64,
    actual_calls: AtomicU64,
    saved_calls: AtomicU64,
    local_hits: AtomicU64,
    shared_hits: AtomicU64,
    cache_misses: AtomicU64,
    walk_samples: AtomicU64,
    retries: AtomicU64,
    wasted_calls: AtomicU64,
    backoff_secs: AtomicU64,
    rate_limited_hits: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_fast_fails: AtomicU64,
    checkpoints_written: AtomicU64,
    jobs_resumed: AtomicU64,
    workers_respawned: AtomicU64,
    jobs_interrupted: AtomicU64,
    journal_records_dropped: AtomicU64,
    queue_wait_total: AtomicU64,
    exec_total: AtomicU64,
    charged_per_sample_hist: Log2Histogram,
    backoff_secs_hist: Log2Histogram,
    queue_wait_hist: Log2Histogram,
    exec_hist: Log2Histogram,
}

/// Converts a telemetry duration into the mode's integer unit: logical
/// ticks (1µs each) under [`TelemetryMode::Logical`], milliseconds under
/// [`TelemetryMode::Wall`].
fn duration_units(mode: TelemetryMode, d: Duration) -> u64 {
    match mode {
        TelemetryMode::Logical => d.as_micros() as u64,
        TelemetryMode::Wall => d.as_millis() as u64,
    }
}

impl MetricsRegistry {
    /// A zeroed registry in the default (logical) telemetry mode.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// A zeroed registry whose duration totals and histograms use the
    /// units of `mode` (ticks when logical, millis when wall).
    pub fn with_mode(mode: TelemetryMode) -> Self {
        MetricsRegistry {
            mode,
            ..MetricsRegistry::default()
        }
    }

    /// Counts an admitted submission.
    pub fn record_submitted(&self) {
        self.jobs_submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a rejected submission (admission control).
    pub fn record_rejected(&self) {
        self.jobs_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a walker checkpoint written to the sink/journal.
    pub fn record_checkpoint(&self) {
        self.checkpoints_written.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a job resumed from the journal at startup.
    pub fn record_resumed(&self) {
        self.jobs_resumed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a worker the supervisor respawned after a crash.
    pub fn record_respawned(&self) {
        self.workers_respawned.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a job journaled as interrupted (drain deadline or torn
    /// journal).
    pub fn record_interrupted(&self) {
        self.jobs_interrupted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts journal records dropped (torn-tail repair and discarded
    /// post-tear appends).
    pub fn record_journal_dropped(&self, n: u64) {
        self.journal_records_dropped.fetch_add(n, Ordering::Relaxed);
    }

    /// Folds one finished job into the totals.
    pub fn record_job(&self, job: &JobMetrics) {
        if job.succeeded {
            self.jobs_succeeded.fetch_add(1, Ordering::Relaxed);
            self.estimates_produced.fetch_add(1, Ordering::Relaxed);
            if job.degraded {
                self.jobs_degraded.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            self.jobs_failed.fetch_add(1, Ordering::Relaxed);
        }
        self.charged_calls
            .fetch_add(job.charged_calls, Ordering::Relaxed);
        self.refunded_calls
            .fetch_add(job.refunded_calls, Ordering::Relaxed);
        self.retries.fetch_add(job.retries, Ordering::Relaxed);
        self.wasted_calls
            .fetch_add(job.wasted_calls, Ordering::Relaxed);
        self.backoff_secs
            .fetch_add(job.backoff_secs, Ordering::Relaxed);
        self.rate_limited_hits
            .fetch_add(job.rate_limited_hits, Ordering::Relaxed);
        self.breaker_opens
            .fetch_add(job.breaker_opens, Ordering::Relaxed);
        self.breaker_fast_fails
            .fetch_add(job.breaker_fast_fails, Ordering::Relaxed);
        self.actual_calls
            .fetch_add(job.cache.actual_calls, Ordering::Relaxed);
        self.saved_calls
            .fetch_add(job.cache.saved_calls, Ordering::Relaxed);
        self.local_hits
            .fetch_add(job.cache.local_hits, Ordering::Relaxed);
        self.shared_hits
            .fetch_add(job.cache.shared_hits, Ordering::Relaxed);
        self.cache_misses
            .fetch_add(job.cache.misses, Ordering::Relaxed);
        self.walk_samples.fetch_add(job.samples, Ordering::Relaxed);
        let queue = duration_units(self.mode, job.queue_wait);
        let exec = duration_units(self.mode, job.exec);
        self.queue_wait_total.fetch_add(queue, Ordering::Relaxed);
        self.exec_total.fetch_add(exec, Ordering::Relaxed);
        if let Some(per_sample) = job.charged_calls.checked_div(job.samples) {
            self.charged_per_sample_hist.record(per_sample);
        }
        self.backoff_secs_hist.record(job.backoff_secs);
        self.queue_wait_hist.record(queue);
        self.exec_hist.record(exec);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            mode: self.mode,
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            jobs_succeeded: self.jobs_succeeded.load(Ordering::Relaxed),
            jobs_degraded: self.jobs_degraded.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            estimates_produced: self.estimates_produced.load(Ordering::Relaxed),
            charged_calls: self.charged_calls.load(Ordering::Relaxed),
            refunded_calls: self.refunded_calls.load(Ordering::Relaxed),
            actual_calls: self.actual_calls.load(Ordering::Relaxed),
            saved_calls: self.saved_calls.load(Ordering::Relaxed),
            local_hits: self.local_hits.load(Ordering::Relaxed),
            shared_hits: self.shared_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            walk_samples: self.walk_samples.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            wasted_calls: self.wasted_calls.load(Ordering::Relaxed),
            backoff_secs: self.backoff_secs.load(Ordering::Relaxed),
            rate_limited_hits: self.rate_limited_hits.load(Ordering::Relaxed),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            breaker_fast_fails: self.breaker_fast_fails.load(Ordering::Relaxed),
            checkpoints_written: self.checkpoints_written.load(Ordering::Relaxed),
            jobs_resumed: self.jobs_resumed.load(Ordering::Relaxed),
            workers_respawned: self.workers_respawned.load(Ordering::Relaxed),
            jobs_interrupted: self.jobs_interrupted.load(Ordering::Relaxed),
            journal_records_dropped: self.journal_records_dropped.load(Ordering::Relaxed),
            // Coalescing counters live on the service's singleflight
            // layer, not in the per-job fold; `Service::metrics_snapshot`
            // overlays them.
            coalesce_leads: 0,
            coalesce_waits: 0,
            coalesce_aborts: 0,
            coalesce_peak_inflight: 0,
            queue_wait_total: self.queue_wait_total.load(Ordering::Relaxed),
            exec_total: self.exec_total.load(Ordering::Relaxed),
            charged_per_sample_hist: self.charged_per_sample_hist.snapshot(),
            backoff_secs_hist: self.backoff_secs_hist.snapshot(),
            queue_wait_hist: self.queue_wait_hist.snapshot(),
            exec_hist: self.exec_hist.snapshot(),
        }
    }
}

/// Exportable service totals.
///
/// Duration totals ([`MetricsSnapshot::queue_wait_total`],
/// [`MetricsSnapshot::exec_total`]) and the queue/exec histograms are in
/// the units of [`MetricsSnapshot::mode`]: logical ticks (1 tick = 1µs)
/// when logical, milliseconds when wall. Both renderings state the unit;
/// the JSON key embeds it.
#[derive(Clone, Copy, Debug)]
pub struct MetricsSnapshot {
    /// The telemetry mode durations were measured under.
    pub mode: TelemetryMode,
    /// Jobs admitted.
    pub jobs_submitted: u64,
    /// Jobs refused at admission.
    pub jobs_rejected: u64,
    /// Jobs that produced an estimate.
    pub jobs_succeeded: u64,
    /// Succeeded jobs whose estimate is partial (walk gave up early on a
    /// fatal resilience error).
    pub jobs_degraded: u64,
    /// Jobs that errored.
    pub jobs_failed: u64,
    /// Estimates produced (== succeeded jobs).
    pub estimates_produced: u64,
    /// API calls charged to budgets.
    pub charged_calls: u64,
    /// Reserved calls refunded to the global quota at settlement.
    pub refunded_calls: u64,
    /// API calls actually issued to the platform.
    pub actual_calls: u64,
    /// Calls absorbed by the shared cache.
    pub saved_calls: u64,
    /// Per-query memo hits.
    pub local_hits: u64,
    /// Shared-cache hits.
    pub shared_hits: u64,
    /// Requests that reached the platform.
    pub cache_misses: u64,
    /// Samples collected by all walks.
    pub walk_samples: u64,
    /// Retried API attempts across all jobs.
    pub retries: u64,
    /// Calls burned by failed attempts (never charged to budgets).
    pub wasted_calls: u64,
    /// Simulated seconds spent in backoff + rate-limit waits.
    pub backoff_secs: u64,
    /// Rate-limit rejections absorbed.
    pub rate_limited_hits: u64,
    /// Circuit-breaker trips.
    pub breaker_opens: u64,
    /// Calls rejected by an open breaker without touching the platform.
    pub breaker_fast_fails: u64,
    /// Walker checkpoints written to the sink/journal.
    pub checkpoints_written: u64,
    /// Jobs resumed from the journal at startup.
    pub jobs_resumed: u64,
    /// Workers the supervisor respawned after crashes.
    pub workers_respawned: u64,
    /// Jobs journaled as interrupted (drain deadline or torn journal).
    pub jobs_interrupted: u64,
    /// Journal records dropped (torn-tail repair + post-tear appends).
    pub journal_records_dropped: u64,
    /// Cache misses that led a singleflight fetch.
    pub coalesce_leads: u64,
    /// Cache misses absorbed by parking on an in-flight fetch of the
    /// same key instead of issuing a duplicate platform call.
    pub coalesce_waits: u64,
    /// In-flight fetches released after a failed platform call.
    pub coalesce_aborts: u64,
    /// Most requesters ever coalesced onto one in-flight fetch.
    pub coalesce_peak_inflight: u64,
    /// Total time jobs spent queued, in mode units (ticks or millis).
    pub queue_wait_total: u64,
    /// Total time jobs spent executing, in mode units (ticks or millis).
    pub exec_total: u64,
    /// Log2 histogram of charged-calls-per-sample across succeeded jobs.
    pub charged_per_sample_hist: [u64; HIST_BUCKETS],
    /// Log2 histogram of per-job backoff time (simulated seconds).
    pub backoff_secs_hist: [u64; HIST_BUCKETS],
    /// Log2 histogram of per-job queue wait, in mode units.
    pub queue_wait_hist: [u64; HIST_BUCKETS],
    /// Log2 histogram of per-job execution time, in mode units.
    pub exec_hist: [u64; HIST_BUCKETS],
}

impl MetricsSnapshot {
    /// The duration unit implied by the snapshot's mode, as it appears
    /// in JSON keys and text headings.
    pub fn duration_unit(&self) -> &'static str {
        match self.mode {
            TelemetryMode::Logical => "ticks",
            TelemetryMode::Wall => "millis",
        }
    }

    fn units_to_duration(&self, value: u64) -> Duration {
        match self.mode {
            TelemetryMode::Logical => Duration::from_micros(value),
            TelemetryMode::Wall => Duration::from_millis(value),
        }
    }

    /// Mean queue wait per finished job.
    pub fn mean_queue_wait(&self) -> Duration {
        let jobs = self.jobs_succeeded + self.jobs_failed;
        self.units_to_duration(self.queue_wait_total.checked_div(jobs).unwrap_or(0))
    }

    /// Mean execution time per finished job.
    pub fn mean_exec(&self) -> Duration {
        let jobs = self.jobs_succeeded + self.jobs_failed;
        self.units_to_duration(self.exec_total.checked_div(jobs).unwrap_or(0))
    }

    /// Fraction of charged calls the shared cache absorbed.
    pub fn savings_ratio(&self) -> f64 {
        if self.charged_calls > 0 {
            self.saved_calls as f64 / self.charged_calls as f64
        } else {
            0.0
        }
    }

    /// Every scalar counter as `(json_key, value)`, in export order.
    /// Duration totals carry the mode's unit in the key, so logical and
    /// wall exports can never be conflated.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let unit = self.duration_unit();
        vec![
            ("jobs_submitted".into(), self.jobs_submitted),
            ("jobs_rejected".into(), self.jobs_rejected),
            ("jobs_succeeded".into(), self.jobs_succeeded),
            ("jobs_degraded".into(), self.jobs_degraded),
            ("jobs_failed".into(), self.jobs_failed),
            ("estimates_produced".into(), self.estimates_produced),
            ("charged_calls".into(), self.charged_calls),
            ("refunded_calls".into(), self.refunded_calls),
            ("actual_calls".into(), self.actual_calls),
            ("saved_calls".into(), self.saved_calls),
            ("local_hits".into(), self.local_hits),
            ("shared_hits".into(), self.shared_hits),
            ("cache_misses".into(), self.cache_misses),
            ("walk_samples".into(), self.walk_samples),
            ("retries".into(), self.retries),
            ("wasted_calls".into(), self.wasted_calls),
            ("backoff_secs".into(), self.backoff_secs),
            ("rate_limited_hits".into(), self.rate_limited_hits),
            ("breaker_opens".into(), self.breaker_opens),
            ("breaker_fast_fails".into(), self.breaker_fast_fails),
            ("checkpoints_written".into(), self.checkpoints_written),
            ("jobs_resumed".into(), self.jobs_resumed),
            ("workers_respawned".into(), self.workers_respawned),
            ("jobs_interrupted".into(), self.jobs_interrupted),
            (
                "journal_records_dropped".into(),
                self.journal_records_dropped,
            ),
            ("coalesce_leads".into(), self.coalesce_leads),
            ("coalesce_waits".into(), self.coalesce_waits),
            ("coalesce_aborts".into(), self.coalesce_aborts),
            ("coalesce_peak_inflight".into(), self.coalesce_peak_inflight),
            (format!("queue_wait_total_{unit}"), self.queue_wait_total),
            (format!("exec_total_{unit}"), self.exec_total),
        ]
    }

    /// Histogram sections as `(json_key, text_heading, buckets)`, in
    /// export order. Duration histograms carry the unit in both names.
    pub fn histograms(&self) -> Vec<(String, String, [u64; HIST_BUCKETS])> {
        let unit = self.duration_unit();
        vec![
            (
                "charged_per_sample_hist".into(),
                "charged calls per sample (log2)".into(),
                self.charged_per_sample_hist,
            ),
            (
                "backoff_secs_hist".into(),
                "backoff secs (log2)".into(),
                self.backoff_secs_hist,
            ),
            (
                format!("queue_wait_hist_{unit}"),
                format!("queue wait {unit} (log2)"),
                self.queue_wait_hist,
            ),
            (
                format!("exec_hist_{unit}"),
                format!("exec {unit} (log2)"),
                self.exec_hist,
            ),
        ]
    }

    /// The JSON export. Keys are emitted in a fixed order; duration keys
    /// embed the mode's unit.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mode = match self.mode {
            TelemetryMode::Logical => "logical",
            TelemetryMode::Wall => "wall",
        };
        out.push_str(&format!("  \"telemetry_mode\": \"{mode}\""));
        for (key, value) in self.counters() {
            out.push_str(&format!(",\n  \"{key}\": {value}"));
        }
        for (key, _, buckets) in self.histograms() {
            let cells: Vec<String> = buckets.iter().map(u64::to_string).collect();
            out.push_str(&format!(",\n  \"{key}\": [{}]", cells.join(",")));
        }
        out.push_str("\n}\n");
        out
    }

    /// The aligned-text export.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut line = |k: &str, v: String| {
            out.push_str(&format!("{k:<22}{v}\n"));
        };
        line("telemetry mode", format!("{:?}", self.mode).to_lowercase());
        line("jobs submitted", self.jobs_submitted.to_string());
        line("jobs rejected", self.jobs_rejected.to_string());
        line("jobs succeeded", self.jobs_succeeded.to_string());
        line("jobs degraded", self.jobs_degraded.to_string());
        line("jobs failed", self.jobs_failed.to_string());
        line("estimates produced", self.estimates_produced.to_string());
        line("API calls charged", self.charged_calls.to_string());
        line("API calls refunded", self.refunded_calls.to_string());
        line("API calls actual", self.actual_calls.to_string());
        line(
            "API calls saved",
            format!(
                "{} ({:.1}% of charged)",
                self.saved_calls,
                100.0 * self.savings_ratio()
            ),
        );
        line(
            "cache hits",
            format!("{} local + {} shared", self.local_hits, self.shared_hits),
        );
        line("cache misses", self.cache_misses.to_string());
        line("walk samples", self.walk_samples.to_string());
        line(
            "retries",
            format!("{} ({} calls wasted)", self.retries, self.wasted_calls),
        );
        line("backoff time (sim)", format!("{}s", self.backoff_secs));
        line("rate-limit hits", self.rate_limited_hits.to_string());
        line(
            "breaker",
            format!(
                "{} open(s), {} fast-fail(s)",
                self.breaker_opens, self.breaker_fast_fails
            ),
        );
        line(
            "checkpoints",
            format!(
                "{} written, {} jobs resumed",
                self.checkpoints_written, self.jobs_resumed
            ),
        );
        line(
            "recovery",
            format!(
                "{} respawn(s), {} interrupted, {} journal record(s) dropped",
                self.workers_respawned, self.jobs_interrupted, self.journal_records_dropped
            ),
        );
        line(
            "coalesced misses",
            format!(
                "{} led + {} waited (peak {} in flight, {} aborted)",
                self.coalesce_leads,
                self.coalesce_waits,
                self.coalesce_peak_inflight,
                self.coalesce_aborts
            ),
        );
        let unit = self.duration_unit();
        line(
            &format!("queue wait ({unit})"),
            format!(
                "{} total, {:?} mean",
                self.queue_wait_total,
                self.mean_queue_wait()
            ),
        );
        line(
            &format!("exec time ({unit})"),
            format!("{} total, {:?} mean", self.exec_total, self.mean_exec()),
        );
        for (_, heading, buckets) in self.histograms() {
            let body = render_buckets(&buckets);
            if !body.is_empty() {
                out.push_str(&format!("{heading}:\n{body}"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(succeeded: bool, charged: u64, saved: u64) -> JobMetrics {
        JobMetrics {
            succeeded,
            degraded: false,
            charged_calls: charged,
            refunded_calls: 5,
            samples: 10,
            cache: CacheStats {
                local_hits: 1,
                shared_hits: 2,
                misses: 3,
                actual_calls: charged - saved,
                saved_calls: saved,
            },
            retries: 2,
            wasted_calls: 3,
            backoff_secs: 60,
            rate_limited_hits: 1,
            breaker_opens: 0,
            breaker_fast_fails: 0,
            queue_wait: Duration::from_micros(500),
            exec: Duration::from_millis(2),
        }
    }

    #[test]
    fn totals_accumulate() {
        let reg = MetricsRegistry::new();
        reg.record_submitted();
        reg.record_submitted();
        reg.record_rejected();
        reg.record_job(&job(true, 100, 40));
        reg.record_job(&job(false, 50, 0));
        let snap = reg.snapshot();
        assert_eq!(snap.jobs_submitted, 2);
        assert_eq!(snap.jobs_rejected, 1);
        assert_eq!(snap.jobs_succeeded, 1);
        assert_eq!(snap.jobs_failed, 1);
        assert_eq!(snap.estimates_produced, 1);
        assert_eq!(snap.charged_calls, 150);
        assert_eq!(snap.refunded_calls, 10);
        assert_eq!(snap.actual_calls, 110);
        assert_eq!(snap.saved_calls, 40);
        assert_eq!(snap.walk_samples, 20);
        assert_eq!(snap.retries, 4);
        assert_eq!(snap.wasted_calls, 6);
        assert_eq!(snap.backoff_secs, 120);
        assert_eq!(snap.rate_limited_hits, 2);
        assert_eq!(snap.jobs_degraded, 0);
        assert_eq!(snap.mean_queue_wait(), Duration::from_micros(500));
        assert_eq!(snap.mean_exec(), Duration::from_millis(2));
        assert!((snap.savings_ratio() - 40.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn histograms_bucket_per_job_values() {
        let reg = MetricsRegistry::new();
        // 100 charged / 10 samples = 10 per sample → bucket [8, 15].
        reg.record_job(&job(true, 100, 0));
        // Failed job: samples = 10 too, still bucketed (charge accounting
        // does not depend on success).
        reg.record_job(&job(false, 50, 0));
        let snap = reg.snapshot();
        let idx_10 = Log2Histogram::bucket_index(10);
        let idx_5 = Log2Histogram::bucket_index(5);
        assert_eq!(snap.charged_per_sample_hist[idx_10], 1);
        assert_eq!(snap.charged_per_sample_hist[idx_5], 1);
        // Both jobs waited 60 simulated seconds in backoff.
        assert_eq!(snap.backoff_secs_hist[Log2Histogram::bucket_index(60)], 2);
        // Logical mode: ticks = micros (500 queue, 2000 exec).
        assert_eq!(snap.queue_wait_hist[Log2Histogram::bucket_index(500)], 2);
        assert_eq!(snap.exec_hist[Log2Histogram::bucket_index(2000)], 2);
    }

    #[test]
    fn wall_mode_totals_are_in_millis() {
        let reg = MetricsRegistry::with_mode(TelemetryMode::Wall);
        reg.record_job(&job(true, 10, 0));
        let snap = reg.snapshot();
        assert_eq!(snap.duration_unit(), "millis");
        // 500µs queue wait truncates to 0ms; 2ms exec stays 2.
        assert_eq!(snap.queue_wait_total, 0);
        assert_eq!(snap.exec_total, 2);
        assert_eq!(snap.mean_exec(), Duration::from_millis(2));
        let json = snap.to_json();
        assert!(json.contains("\"exec_total_millis\": 2"));
        assert!(json.contains("\"telemetry_mode\": \"wall\""));
        assert!(!json.contains("ticks"));
        let text = snap.render_text();
        assert!(text.contains("exec time (millis)"));
    }

    #[test]
    fn exports_are_well_formed() {
        let reg = MetricsRegistry::new();
        reg.record_submitted();
        reg.record_job(&job(true, 10, 5));
        reg.record_job(&JobMetrics {
            degraded: true,
            ..job(true, 10, 0)
        });
        let snap = reg.snapshot();
        assert_eq!(snap.jobs_degraded, 1);
        assert_eq!(snap.jobs_succeeded, 2);
        let text = snap.render_text();
        assert!(text.contains("telemetry mode        logical"));
        assert!(text.contains("jobs submitted        1"));
        assert!(text.contains("jobs degraded         1"));
        assert!(text.contains("API calls saved"));
        assert!(text.contains("retries               4 (6 calls wasted)"));
        assert!(text.contains("breaker"));
        assert!(text.contains("queue wait (ticks)"));
        assert!(text.contains("charged calls per sample (log2):"));
        let json = snap.to_json();
        let value = serde_json::parse_value_str(&json).unwrap();
        let map = value.as_map().unwrap();
        // The reparse reads positive integers back as I64.
        assert_eq!(
            serde_json::Value::I64(20),
            *serde::value::field(map, "charged_calls")
        );
        assert_eq!(
            serde_json::Value::I64(1),
            *serde::value::field(map, "jobs_degraded")
        );
        assert_eq!(
            serde_json::Value::Str("logical".into()),
            *serde::value::field(map, "telemetry_mode")
        );
    }

    /// Golden round-trip: every counter the snapshot exports must come
    /// back out of the JSON unchanged, and the histogram arrays must
    /// reparse bucket-for-bucket.
    #[test]
    fn json_round_trips_every_counter() {
        let reg = MetricsRegistry::new();
        reg.record_submitted();
        reg.record_rejected();
        reg.record_job(&job(true, 123, 45));
        reg.record_job(&job(false, 67, 0));
        let snap = reg.snapshot();
        let value = serde_json::parse_value_str(&snap.to_json()).unwrap();
        let map = value.as_map().unwrap();
        for (key, expected) in snap.counters() {
            let got = serde::value::field(map, &key);
            assert_eq!(
                *got,
                serde_json::Value::I64(expected as i64),
                "counter {key} must round-trip"
            );
        }
        for (key, _, buckets) in snap.histograms() {
            match serde::value::field(map, &key) {
                serde_json::Value::Seq(items) => {
                    assert_eq!(items.len(), HIST_BUCKETS, "{key} length");
                    for (i, item) in items.iter().enumerate() {
                        assert_eq!(
                            *item,
                            serde_json::Value::I64(buckets[i] as i64),
                            "{key}[{i}] must round-trip"
                        );
                    }
                }
                other => panic!("{key} must reparse as an array, got {other:?}"),
            }
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        reg.record_submitted();
                        reg.record_job(&job(true, 4, 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.jobs_submitted, 2000);
        assert_eq!(snap.charged_calls, 8000);
        assert_eq!(snap.saved_calls, 2000);
        assert_eq!(
            snap.charged_per_sample_hist.iter().sum::<u64>(),
            2000,
            "every job lands one charged-per-sample observation"
        );
    }
}
