//! Service metrics.
//!
//! [`MetricsRegistry`] accumulates service-wide counters (jobs by
//! outcome, charged vs actual API calls, cache traffic, walk samples,
//! queue/execution time) from the per-job numbers each worker reports.
//! [`MetricsSnapshot`] is the exportable point-in-time view, rendered as
//! aligned text for terminals or JSON for machines.

use microblog_api::cache::CacheStats;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One finished job's numbers, as reported by a worker.
#[derive(Clone, Copy, Debug)]
pub struct JobMetrics {
    /// Whether the job produced an estimate.
    pub succeeded: bool,
    /// Whether that estimate is partial (the walk gave up early on a
    /// fatal resilience error). Degraded jobs also count as succeeded.
    pub degraded: bool,
    /// API calls charged to the job's budget (the paper's cost metric).
    pub charged_calls: u64,
    /// Reserved calls returned to the global quota at settlement.
    pub refunded_calls: u64,
    /// Samples the walk collected (0 on failure).
    pub samples: u64,
    /// Cache traffic of the job's client.
    pub cache: CacheStats,
    /// Retried API attempts.
    pub retries: u64,
    /// Calls burned by failed attempts (never charged to the budget).
    pub wasted_calls: u64,
    /// Simulated seconds spent in backoff + rate-limit waits.
    pub backoff_secs: u64,
    /// Rate-limit rejections absorbed.
    pub rate_limited_hits: u64,
    /// Circuit-breaker trips.
    pub breaker_opens: u64,
    /// Calls rejected by an open breaker without touching the platform.
    pub breaker_fast_fails: u64,
    /// Time spent queued before a worker picked the job up.
    pub queue_wait: Duration,
    /// Time spent executing.
    pub exec: Duration,
}

/// Lock-free accumulating counters; all methods take `&self`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    jobs_submitted: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_succeeded: AtomicU64,
    jobs_degraded: AtomicU64,
    jobs_failed: AtomicU64,
    estimates_produced: AtomicU64,
    charged_calls: AtomicU64,
    refunded_calls: AtomicU64,
    actual_calls: AtomicU64,
    saved_calls: AtomicU64,
    local_hits: AtomicU64,
    shared_hits: AtomicU64,
    cache_misses: AtomicU64,
    walk_samples: AtomicU64,
    retries: AtomicU64,
    wasted_calls: AtomicU64,
    backoff_secs: AtomicU64,
    rate_limited_hits: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_fast_fails: AtomicU64,
    queue_wait_micros: AtomicU64,
    exec_micros: AtomicU64,
}

impl MetricsRegistry {
    /// A zeroed registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Counts an admitted submission.
    pub fn record_submitted(&self) {
        self.jobs_submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a rejected submission (admission control).
    pub fn record_rejected(&self) {
        self.jobs_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one finished job into the totals.
    pub fn record_job(&self, job: &JobMetrics) {
        if job.succeeded {
            self.jobs_succeeded.fetch_add(1, Ordering::Relaxed);
            self.estimates_produced.fetch_add(1, Ordering::Relaxed);
            if job.degraded {
                self.jobs_degraded.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            self.jobs_failed.fetch_add(1, Ordering::Relaxed);
        }
        self.charged_calls
            .fetch_add(job.charged_calls, Ordering::Relaxed);
        self.refunded_calls
            .fetch_add(job.refunded_calls, Ordering::Relaxed);
        self.retries.fetch_add(job.retries, Ordering::Relaxed);
        self.wasted_calls
            .fetch_add(job.wasted_calls, Ordering::Relaxed);
        self.backoff_secs
            .fetch_add(job.backoff_secs, Ordering::Relaxed);
        self.rate_limited_hits
            .fetch_add(job.rate_limited_hits, Ordering::Relaxed);
        self.breaker_opens
            .fetch_add(job.breaker_opens, Ordering::Relaxed);
        self.breaker_fast_fails
            .fetch_add(job.breaker_fast_fails, Ordering::Relaxed);
        self.actual_calls
            .fetch_add(job.cache.actual_calls, Ordering::Relaxed);
        self.saved_calls
            .fetch_add(job.cache.saved_calls, Ordering::Relaxed);
        self.local_hits
            .fetch_add(job.cache.local_hits, Ordering::Relaxed);
        self.shared_hits
            .fetch_add(job.cache.shared_hits, Ordering::Relaxed);
        self.cache_misses
            .fetch_add(job.cache.misses, Ordering::Relaxed);
        self.walk_samples.fetch_add(job.samples, Ordering::Relaxed);
        self.queue_wait_micros
            .fetch_add(job.queue_wait.as_micros() as u64, Ordering::Relaxed);
        self.exec_micros
            .fetch_add(job.exec.as_micros() as u64, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            jobs_succeeded: self.jobs_succeeded.load(Ordering::Relaxed),
            jobs_degraded: self.jobs_degraded.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            estimates_produced: self.estimates_produced.load(Ordering::Relaxed),
            charged_calls: self.charged_calls.load(Ordering::Relaxed),
            refunded_calls: self.refunded_calls.load(Ordering::Relaxed),
            actual_calls: self.actual_calls.load(Ordering::Relaxed),
            saved_calls: self.saved_calls.load(Ordering::Relaxed),
            local_hits: self.local_hits.load(Ordering::Relaxed),
            shared_hits: self.shared_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            walk_samples: self.walk_samples.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            wasted_calls: self.wasted_calls.load(Ordering::Relaxed),
            backoff_secs: self.backoff_secs.load(Ordering::Relaxed),
            rate_limited_hits: self.rate_limited_hits.load(Ordering::Relaxed),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            breaker_fast_fails: self.breaker_fast_fails.load(Ordering::Relaxed),
            queue_wait_micros: self.queue_wait_micros.load(Ordering::Relaxed),
            exec_micros: self.exec_micros.load(Ordering::Relaxed),
        }
    }
}

/// Exportable service totals. Times are totals across jobs, in
/// microseconds, so the snapshot stays integer-exact.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct MetricsSnapshot {
    /// Jobs admitted.
    pub jobs_submitted: u64,
    /// Jobs refused at admission.
    pub jobs_rejected: u64,
    /// Jobs that produced an estimate.
    pub jobs_succeeded: u64,
    /// Succeeded jobs whose estimate is partial (walk gave up early on a
    /// fatal resilience error).
    pub jobs_degraded: u64,
    /// Jobs that errored.
    pub jobs_failed: u64,
    /// Estimates produced (== succeeded jobs).
    pub estimates_produced: u64,
    /// API calls charged to budgets.
    pub charged_calls: u64,
    /// Reserved calls refunded to the global quota at settlement.
    pub refunded_calls: u64,
    /// API calls actually issued to the platform.
    pub actual_calls: u64,
    /// Calls absorbed by the shared cache.
    pub saved_calls: u64,
    /// Per-query memo hits.
    pub local_hits: u64,
    /// Shared-cache hits.
    pub shared_hits: u64,
    /// Requests that reached the platform.
    pub cache_misses: u64,
    /// Samples collected by all walks.
    pub walk_samples: u64,
    /// Retried API attempts across all jobs.
    pub retries: u64,
    /// Calls burned by failed attempts (never charged to budgets).
    pub wasted_calls: u64,
    /// Simulated seconds spent in backoff + rate-limit waits.
    pub backoff_secs: u64,
    /// Rate-limit rejections absorbed.
    pub rate_limited_hits: u64,
    /// Circuit-breaker trips.
    pub breaker_opens: u64,
    /// Calls rejected by an open breaker without touching the platform.
    pub breaker_fast_fails: u64,
    /// Total time jobs spent queued, µs.
    pub queue_wait_micros: u64,
    /// Total time jobs spent executing, µs.
    pub exec_micros: u64,
}

impl MetricsSnapshot {
    /// Mean queue wait per finished job.
    pub fn mean_queue_wait(&self) -> Duration {
        mean_micros(
            self.queue_wait_micros,
            self.jobs_succeeded + self.jobs_failed,
        )
    }

    /// Mean execution time per finished job.
    pub fn mean_exec(&self) -> Duration {
        mean_micros(self.exec_micros, self.jobs_succeeded + self.jobs_failed)
    }

    /// Fraction of charged calls the shared cache absorbed.
    pub fn savings_ratio(&self) -> f64 {
        if self.charged_calls > 0 {
            self.saved_calls as f64 / self.charged_calls as f64
        } else {
            0.0
        }
    }

    /// The JSON export.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes") // ma-lint: allow(panic-safety) reason="serializing a plain counter struct cannot fail"
    }

    /// The aligned-text export.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut line = |k: &str, v: String| {
            out.push_str(&format!("{k:<22}{v}\n"));
        };
        line("jobs submitted", self.jobs_submitted.to_string());
        line("jobs rejected", self.jobs_rejected.to_string());
        line("jobs succeeded", self.jobs_succeeded.to_string());
        line("jobs degraded", self.jobs_degraded.to_string());
        line("jobs failed", self.jobs_failed.to_string());
        line("estimates produced", self.estimates_produced.to_string());
        line("API calls charged", self.charged_calls.to_string());
        line("API calls refunded", self.refunded_calls.to_string());
        line("API calls actual", self.actual_calls.to_string());
        line(
            "API calls saved",
            format!(
                "{} ({:.1}% of charged)",
                self.saved_calls,
                100.0 * self.savings_ratio()
            ),
        );
        line(
            "cache hits",
            format!("{} local + {} shared", self.local_hits, self.shared_hits),
        );
        line("cache misses", self.cache_misses.to_string());
        line("walk samples", self.walk_samples.to_string());
        line(
            "retries",
            format!("{} ({} calls wasted)", self.retries, self.wasted_calls),
        );
        line("backoff time (sim)", format!("{}s", self.backoff_secs));
        line("rate-limit hits", self.rate_limited_hits.to_string());
        line(
            "breaker",
            format!(
                "{} open(s), {} fast-fail(s)",
                self.breaker_opens, self.breaker_fast_fails
            ),
        );
        line("mean queue wait", format!("{:?}", self.mean_queue_wait()));
        line("mean exec time", format!("{:?}", self.mean_exec()));
        out
    }
}

fn mean_micros(total_micros: u64, count: u64) -> Duration {
    total_micros
        .checked_div(count)
        .map_or(Duration::ZERO, Duration::from_micros)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(succeeded: bool, charged: u64, saved: u64) -> JobMetrics {
        JobMetrics {
            succeeded,
            degraded: false,
            charged_calls: charged,
            refunded_calls: 5,
            samples: 10,
            cache: CacheStats {
                local_hits: 1,
                shared_hits: 2,
                misses: 3,
                actual_calls: charged - saved,
                saved_calls: saved,
            },
            retries: 2,
            wasted_calls: 3,
            backoff_secs: 60,
            rate_limited_hits: 1,
            breaker_opens: 0,
            breaker_fast_fails: 0,
            queue_wait: Duration::from_micros(500),
            exec: Duration::from_millis(2),
        }
    }

    #[test]
    fn totals_accumulate() {
        let reg = MetricsRegistry::new();
        reg.record_submitted();
        reg.record_submitted();
        reg.record_rejected();
        reg.record_job(&job(true, 100, 40));
        reg.record_job(&job(false, 50, 0));
        let snap = reg.snapshot();
        assert_eq!(snap.jobs_submitted, 2);
        assert_eq!(snap.jobs_rejected, 1);
        assert_eq!(snap.jobs_succeeded, 1);
        assert_eq!(snap.jobs_failed, 1);
        assert_eq!(snap.estimates_produced, 1);
        assert_eq!(snap.charged_calls, 150);
        assert_eq!(snap.refunded_calls, 10);
        assert_eq!(snap.actual_calls, 110);
        assert_eq!(snap.saved_calls, 40);
        assert_eq!(snap.walk_samples, 20);
        assert_eq!(snap.retries, 4);
        assert_eq!(snap.wasted_calls, 6);
        assert_eq!(snap.backoff_secs, 120);
        assert_eq!(snap.rate_limited_hits, 2);
        assert_eq!(snap.jobs_degraded, 0);
        assert_eq!(snap.mean_queue_wait(), Duration::from_micros(500));
        assert_eq!(snap.mean_exec(), Duration::from_millis(2));
        assert!((snap.savings_ratio() - 40.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn exports_are_well_formed() {
        let reg = MetricsRegistry::new();
        reg.record_submitted();
        reg.record_job(&job(true, 10, 5));
        reg.record_job(&JobMetrics {
            degraded: true,
            ..job(true, 10, 0)
        });
        let snap = reg.snapshot();
        assert_eq!(snap.jobs_degraded, 1);
        assert_eq!(snap.jobs_succeeded, 2);
        let text = snap.render_text();
        assert!(text.contains("jobs submitted        1"));
        assert!(text.contains("jobs degraded         1"));
        assert!(text.contains("API calls saved"));
        assert!(text.contains("retries               4 (6 calls wasted)"));
        assert!(text.contains("breaker"));
        let json = snap.to_json();
        let value = serde_json::parse_value_str(&json).unwrap();
        let map = value.as_map().unwrap();
        // The reparse reads positive integers back as I64.
        assert_eq!(
            serde_json::Value::I64(20),
            *serde::value::field(map, "charged_calls")
        );
        assert_eq!(
            serde_json::Value::I64(1),
            *serde::value::field(map, "jobs_degraded")
        );
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        reg.record_submitted();
                        reg.record_job(&job(true, 4, 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.jobs_submitted, 2000);
        assert_eq!(snap.charged_calls, 8000);
        assert_eq!(snap.saved_calls, 2000);
    }
}
