//! Trace acceptance tests: identical runs export byte-identical JSON
//! lines under logical telemetry — for full traces and for the live
//! stats stream — and the summary attributes (nearly) every charged
//! call to a walk phase.

use microblog_analyzer::query::parse::parse_query;
use microblog_analyzer::{Algorithm, ViewKind};
use microblog_api::ApiProfile;
use microblog_obs::{render_jsonl, RecorderConfig, TelemetryClock, TelemetryMode, Tracer};
use microblog_platform::scenario::{twitter_2013, Scale};
use microblog_service::request::JobSpec;
use microblog_service::traceview::{record_job, TraceRun, TraceSummary};
use microblog_service::{Service, ServiceConfig, StatsConfig, StatsHub, StatsSink};
use std::io::Write;
use std::sync::{Arc, Mutex};

fn traced(algorithm: Algorithm, budget: u64, seed: u64) -> TraceRun {
    let scenario = twitter_2013(Scale::Tiny, 2014);
    let platform = Arc::new(scenario.platform);
    let query = parse_query(
        "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy' \
         AND TIME BETWEEN DAY 0 AND DAY 303",
        platform.keywords(),
    )
    .expect("query parses");
    record_job(
        platform,
        ApiProfile::twitter(),
        JobSpec::new(query, algorithm, budget, seed),
        TelemetryMode::Logical,
        RecorderConfig::default(),
    )
    .expect("admitted")
}

#[test]
fn identical_runs_export_byte_identical_jsonl() {
    let algorithms = [
        Algorithm::MaTarw { interval: None },
        Algorithm::MaSrw { interval: None },
    ];
    for algorithm in algorithms {
        let first = traced(algorithm, 5_000, 7);
        let second = traced(algorithm, 5_000, 7);
        let a = render_jsonl(&first.events);
        let b = render_jsonl(&second.events);
        assert!(!a.is_empty());
        assert_eq!(a, b, "{algorithm:?}: logical traces must replay exactly");
        // And a different seed must actually change the trace.
        let third = traced(algorithm, 5_000, 8);
        assert_ne!(
            a,
            render_jsonl(&third.events),
            "{algorithm:?}: the trace must depend on the walk"
        );
    }
}

/// A `Write` handle into a shared buffer, standing in for the stats
/// file `ma-cli serve --stats-out` would write.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs two jobs through a single-worker service with live stats at
/// `--stats-every 1` and returns the emitted stats JSONL stream.
fn stats_stream(seed: u64) -> String {
    let scenario = twitter_2013(Scale::Tiny, 2014);
    let platform = Arc::new(scenario.platform);
    let buf = SharedBuf::default();
    let hub = Arc::new(StatsHub::new(StatsConfig::default()));
    let sink = StatsSink::new(Arc::clone(&hub)).with_output(Box::new(buf.clone()));
    let clock = Arc::new(TelemetryClock::new(TelemetryMode::Logical));
    let cfg = ServiceConfig {
        workers: 1,
        telemetry: TelemetryMode::Logical,
        tracer: Tracer::new(Arc::new(sink), clock),
        stats: Some(Arc::clone(&hub)),
        stats_every: 1,
        ..ServiceConfig::default()
    };
    let service =
        Service::start(platform.clone(), ApiProfile::twitter(), cfg).expect("service starts");
    for i in 0..2 {
        let query = parse_query(
            "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'",
            platform.keywords(),
        )
        .expect("query parses");
        service
            .submit(JobSpec::new(
                query,
                Algorithm::MaTarw { interval: None },
                4_000,
                seed + i,
            ))
            .expect("admitted")
            .join()
            .into_result()
            .expect("job completes");
    }
    service.emit_stats();
    service.shutdown();
    let bytes = buf.0.lock().unwrap().clone();
    String::from_utf8(bytes).expect("utf8 stream")
}

#[test]
fn identical_runs_export_byte_identical_stats_streams() {
    let a = stats_stream(21);
    assert!(!a.is_empty());
    assert!(a.contains("\"name\":\"window\""), "{a}");
    assert!(a.contains("\"name\":\"gauges\""), "{a}");
    assert!(a.contains("\"name\":\"query\""), "{a}");
    let b = stats_stream(21);
    assert_eq!(a, b, "logical stats streams must replay exactly");
    // And a different seed must actually change the stream.
    let c = stats_stream(22);
    assert_ne!(a, c, "the stats stream must depend on the walk");
}

#[test]
fn summary_attributes_charged_calls_to_walk_phases() {
    for algorithm in [
        Algorithm::MaTarw { interval: None },
        Algorithm::MaSrw { interval: None },
        Algorithm::Mhrw {
            view: ViewKind::TermInduced,
        },
    ] {
        let run = traced(algorithm, 6_000, 11);
        let charged = run.outcome.charged();
        let summary = TraceSummary::from_events(&run.events);
        assert_eq!(
            summary.charged_calls, charged,
            "{algorithm:?}: charge events must cover the bill exactly"
        );
        assert!(
            summary.attribution() >= 0.95,
            "{algorithm:?}: attribution {:.3} below the 95% bar",
            summary.attribution()
        );
    }
}

#[test]
fn sampled_trace_is_still_deterministic() {
    let config = RecorderConfig::default().with_sampling(microblog_obs::Category::Walk, 5);
    let run_with = |cfg| {
        let scenario = twitter_2013(Scale::Tiny, 2014);
        let platform = Arc::new(scenario.platform);
        let query = parse_query(
            "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'",
            platform.keywords(),
        )
        .expect("query parses");
        record_job(
            platform,
            ApiProfile::twitter(),
            JobSpec::new(query, Algorithm::MaSrw { interval: None }, 4_000, 3),
            TelemetryMode::Logical,
            cfg,
        )
        .expect("admitted")
    };
    let full = run_with(RecorderConfig::default());
    let sampled = run_with(config);
    let sampled_again = run_with(config);
    assert_eq!(
        render_jsonl(&sampled.events),
        render_jsonl(&sampled_again.events),
        "sampling is a pure function of the stream"
    );
    assert!(sampled.events.len() < full.events.len());
    // Sampling is observational: the estimate is untouched.
    let a = full.outcome.output().expect("estimates").estimate.value;
    let b = sampled.outcome.output().expect("estimates").estimate.value;
    assert_eq!(a.to_bits(), b.to_bits());
}
