//! Property tests for journal decode/replay under corruption.
//!
//! The journal's contract: whatever bytes land on disk — a torn tail
//! mid-record, a truncated checkpoint, a bit-flipped checksum — decode
//! never panics, recovery sees a clean *prefix* of what was written,
//! and settlement replay can never double-charge (duplicate settles
//! count once, corrupted settles don't count at all).

use microblog_analyzer::checkpoint::{CheckpointCtl, CheckpointSink};
use microblog_analyzer::query::parse::parse_query;
use microblog_analyzer::{Algorithm, MicroblogAnalyzer, WalkerCheckpoint};
use microblog_api::{ApiProfile, RetryPolicy};
use microblog_obs::Tracer;
use microblog_platform::scenario::{twitter_2013, Scale, Scenario};
use microblog_service::journal::{crc32, decode_records, replay};
use microblog_service::{JobSpec, JournalRecord};
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};

fn world() -> &'static Scenario {
    static WORLD: OnceLock<Scenario> = OnceLock::new();
    WORLD.get_or_init(|| twitter_2013(Scale::Tiny, 2014))
}

fn spec(budget: u64, seed: u64) -> JobSpec {
    JobSpec::new(
        parse_query(
            "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'",
            world().platform.keywords(),
        )
        .expect("query parses"),
        Algorithm::MaTarw { interval: None },
        budget,
        seed,
    )
}

#[derive(Debug, Default)]
struct CaptureFirst(Mutex<Option<WalkerCheckpoint>>);

impl CheckpointSink for CaptureFirst {
    fn record(&self, cp: &WalkerCheckpoint) {
        let mut slot = self.0.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(cp.clone());
        }
    }
}

/// A real walker checkpoint (the largest, most structured record kind),
/// captured once from a tiny run.
fn checkpoint() -> &'static WalkerCheckpoint {
    static CP: OnceLock<WalkerCheckpoint> = OnceLock::new();
    CP.get_or_init(|| {
        let s = world();
        let analyzer = MicroblogAnalyzer::new(&s.platform, ApiProfile::twitter());
        let sink = CaptureFirst::default();
        let mut ctl = CheckpointCtl::new(1, &sink);
        let query = parse_query(
            "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'",
            s.platform.keywords(),
        )
        .expect("query parses");
        let _ = analyzer.run_recoverable(
            &query,
            800,
            Algorithm::MaTarw { interval: None },
            3,
            None,
            &RetryPolicy::none(),
            Tracer::disabled(),
            &mut ctl,
            None,
        );
        let cp = sink
            .0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("a 800-call run emits at least one checkpoint at cadence 1");
        cp
    })
}

/// Builds a record from a generator triple; `kind` picks the variant.
fn record(kind: u8, job: u64, amount: u64) -> JournalRecord {
    match kind % 5 {
        0 => JournalRecord::Admit {
            job,
            spec: spec(1_000 + amount, job),
        },
        1 => JournalRecord::Reserve {
            job,
            amount: 1_000 + amount,
        },
        2 => JournalRecord::Checkpoint {
            job,
            checkpoint: Box::new(checkpoint().clone()),
        },
        3 => JournalRecord::Settle { job, used: amount },
        _ => JournalRecord::Interrupted { job },
    }
}

/// Encodes records exactly as `Journal::append` frames them on disk:
/// `[len: u32 LE][crc32: u32 LE][JSON payload]`.
fn encode(records: &[JournalRecord]) -> Vec<u8> {
    let mut buf = Vec::new();
    for r in records {
        let payload = serde_json::to_string(r).expect("records serialize");
        let payload = payload.as_bytes();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(payload).to_le_bytes());
        buf.extend_from_slice(payload);
    }
    buf
}

fn json(r: &JournalRecord) -> String {
    serde_json::to_string(r).expect("records serialize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Cutting the byte stream anywhere — mid-header, mid-checksum,
    // mid-checkpoint-payload — decodes to an exact record prefix and
    // replays without panicking or inventing settlement.
    #[test]
    fn truncation_yields_a_clean_prefix(
        seed_records in proptest::collection::vec((0u8..5, 0u64..4, 0u64..2_000), 1..10),
        cut_frac in 0.0f64..1.0,
    ) {
        let records: Vec<JournalRecord> =
            seed_records.iter().map(|&(k, j, a)| record(k, j, a)).collect();
        let bytes = encode(&records);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let decoded = decode_records(&bytes[..cut]);

        // Every surviving record is byte-faithful, in order.
        prop_assert!(decoded.records.len() <= records.len());
        for (got, want) in decoded.records.iter().zip(&records) {
            prop_assert_eq!(json(got), json(want));
        }
        prop_assert_eq!(
            decoded.valid_len + decoded.dropped_bytes,
            cut as u64,
            "every byte is either replayed or reported dropped"
        );

        // Replay of the prefix never settles more than the full log.
        let full = replay(&decode_records(&bytes));
        let cutr = replay(&decoded);
        prop_assert!(cutr.consumed <= full.consumed);
        prop_assert!(cutr.settled_jobs <= full.settled_jobs);
    }

    // Flipping any single bit is always caught by the frame CRC (or a
    // malformed header): decode stops cleanly, the records before the
    // flip survive verbatim, and settlement never grows.
    #[test]
    fn bit_flips_never_panic_or_inflate_settlement(
        seed_records in proptest::collection::vec((0u8..5, 0u64..4, 0u64..2_000), 1..8),
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let records: Vec<JournalRecord> =
            seed_records.iter().map(|&(k, j, a)| record(k, j, a)).collect();
        let mut bytes = encode(&records);
        let full = replay(&decode_records(&bytes));
        let at = ((bytes.len().saturating_sub(1)) as f64 * flip_frac) as usize;
        bytes[at] ^= 1 << bit;

        let decoded = decode_records(&bytes);
        let damaged = replay(&decoded);
        prop_assert!(damaged.consumed <= full.consumed);
        prop_assert!(damaged.settled_jobs <= full.settled_jobs);

        // Records wholly before the flipped byte are untouched; they
        // must decode verbatim.
        let mut intact = 0usize;
        let mut offset = 0usize;
        for r in &records {
            let frame = 8 + json(r).len();
            if offset + frame <= at {
                intact += 1;
                offset += frame;
            } else {
                break;
            }
        }
        prop_assert!(decoded.records.len() >= intact);
        for (got, want) in decoded.records.iter().take(intact).zip(&records) {
            prop_assert_eq!(json(got), json(want));
        }
    }

    // Arbitrary garbage bytes: decode and replay must never panic and
    // must never fabricate settled jobs.
    #[test]
    fn arbitrary_bytes_never_panic(garbage in proptest::collection::vec(any::<u8>(), 0..512)) {
        let decoded = decode_records(&garbage);
        let summary = replay(&decoded);
        // Fabricating a record from noise requires a valid length, a
        // matching CRC, *and* a parseable JSON payload.
        prop_assert!(summary.records as usize == decoded.records.len());
        prop_assert!(decoded.valid_len + decoded.dropped_bytes == garbage.len() as u64);
    }

    // Duplicate settles — a crash between journaling a settle and
    // advancing past it can replay the same record — always count
    // exactly once.
    #[test]
    fn duplicate_settles_count_once(amount in 1u64..5_000, dups in 1usize..5) {
        let mut records = vec![
            record(0, 0, amount), // admit
            record(1, 0, amount), // reserve
        ];
        for _ in 0..=dups {
            records.push(JournalRecord::Settle { job: 0, used: amount });
        }
        let summary = replay(&decode_records(&encode(&records)));
        prop_assert_eq!(summary.settled_jobs, 1);
        prop_assert_eq!(summary.consumed, amount, "settles are idempotent");
        prop_assert!(summary.recovered.is_empty());
    }
}
