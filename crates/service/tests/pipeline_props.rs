//! Pipeline bit-identity properties: the fetch pipeline is a latency
//! optimization and nothing else. With `ServiceConfig::pipeline` on,
//! estimates, charged totals, per-chain sample sequences and checkpoint
//! bytes must be bit-identical to sequential execution — including under
//! injected faults and across a mid-walk crash/resume.

use microblog_analyzer::checkpoint::{CheckpointCtl, CheckpointSink, WalkerCheckpoint};
use microblog_analyzer::query::parse::parse_query;
use microblog_analyzer::{Algorithm, MicroblogAnalyzer};
use microblog_api::{
    ApiProfile, FetchScheduler, InflightPolicy, RetryPolicy, SchedCloseGuard, SchedCounters,
};
use microblog_obs::{
    Category, RecorderConfig, RingRecorder, TelemetryClock, TelemetryMode, TraceEvent, Tracer,
};
use microblog_platform::scenario::{twitter_2013, Scale, Scenario};
use microblog_platform::{CrashPlan, FaultPlan};
use microblog_service::{JobOutput, JobSpec, Service, ServiceConfig};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

const BUDGET: u64 = 4_000;
const SEED: u64 = 7;
const CHAINS: usize = 4;

fn scenario() -> Scenario {
    twitter_2013(Scale::Tiny, 2014)
}

fn spec(scenario: &Scenario) -> JobSpec {
    JobSpec::new(
        parse_query(
            "SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'privacy'",
            scenario.platform.keywords(),
        )
        .expect("query parses"),
        Algorithm::MaSrw { interval: None },
        BUDGET,
        SEED,
    )
}

/// Runs one MA-SRW job through the service with the pipeline on or off,
/// recording the full trace, and returns the output, the recorded
/// events, and the settled quota consumption.
fn run_traced(
    pipeline: bool,
    extra: impl FnOnce(&mut ServiceConfig),
) -> (JobOutput, Vec<TraceEvent>, u64) {
    let s = scenario();
    let recorder = Arc::new(RingRecorder::new(RecorderConfig::default()));
    let clock = Arc::new(TelemetryClock::new(TelemetryMode::Logical));
    let mut cfg = ServiceConfig {
        workers: 1,
        global_quota: Some(50_000),
        telemetry: TelemetryMode::Logical,
        tracer: Tracer::new(recorder.clone(), clock),
        pipeline,
        chains: CHAINS,
        inflight: InflightPolicy::default(),
        ..ServiceConfig::default()
    };
    extra(&mut cfg);
    let service = Service::new(Arc::new(s.platform.clone()), ApiProfile::twitter(), cfg);
    let out = service
        .submit(spec(&s))
        .expect("admitted")
        .join()
        .into_result()
        .expect("job estimates");
    let consumed = service.quota().consumed();
    assert!(service.shutdown().clean);
    (out, recorder.drain(), consumed)
}

/// The walk's sample sequence as (chain, node, matches, collide)
/// tuples, in emission order. Comparing the full flat sequence also
/// pins the chain interleaving order, which the seed determines.
fn sample_seq(events: &[TraceEvent]) -> Vec<(u64, u64, u64, u64)> {
    events
        .iter()
        .filter(|e| e.category == Category::Walk && e.name == "sample")
        .map(|e| {
            (
                e.u64_field("chain").expect("chain field"),
                e.u64_field("node").expect("node field"),
                e.u64_field("matches").expect("matches field"),
                e.u64_field("collide").expect("collide field"),
            )
        })
        .collect()
}

/// Sample tuples of one chain, in order.
fn chain_seq(samples: &[(u64, u64, u64, u64)], chain: u64) -> Vec<(u64, u64, u64)> {
    samples
        .iter()
        .filter(|s| s.0 == chain)
        .map(|s| (s.1, s.2, s.3))
        .collect()
}

/// Pipelining on vs off: same estimate bits, same charge, same per-chain
/// sample sequences — and the pipelined run actually pipelined.
#[test]
fn pipelined_run_is_bit_identical_to_sequential() {
    let (seq, seq_events, seq_quota) = run_traced(false, |_| {});
    let (pip, pip_events, pip_quota) = run_traced(true, |_| {});

    assert_eq!(
        pip.estimate.value.to_bits(),
        seq.estimate.value.to_bits(),
        "pipelining changed the estimate"
    );
    assert_eq!(pip.charged, seq.charged, "pipelining changed the charge");
    assert_eq!(pip.estimate.samples, seq.estimate.samples);
    assert_eq!(pip.estimate.cost, seq.estimate.cost);
    assert_eq!(pip_quota, seq_quota, "quota settlement drifted");

    let seq_samples = sample_seq(&seq_events);
    let pip_samples = sample_seq(&pip_events);
    assert!(!seq_samples.is_empty(), "the walk must sample");
    assert_eq!(
        seq_samples, pip_samples,
        "pipelining reordered or altered the sample sequence"
    );
    for chain in 0..CHAINS as u64 {
        assert_eq!(
            chain_seq(&seq_samples, chain),
            chain_seq(&pip_samples, chain),
            "chain {chain} sample sequence drifted"
        );
    }

    // The equality above must not be vacuous: the pipelined run has to
    // have announced prefetches, and the sequential run none.
    let announces = |evs: &[TraceEvent]| {
        evs.iter()
            .filter(|e| e.category == Category::Sched && e.name == "announce")
            .count()
    };
    assert!(announces(&pip_events) > 0, "pipeline never engaged");
    assert_eq!(announces(&seq_events), 0, "sequential run announced");
}

/// Collects every emitted checkpoint, not just the latest.
#[derive(Default)]
struct AllCheckpoints(Mutex<Vec<WalkerCheckpoint>>);

impl CheckpointSink for AllCheckpoints {
    fn record(&self, cp: &WalkerCheckpoint) {
        self.0.lock().expect("sink lock").push(cp.clone());
    }
}

/// Runs MA-SRW at the analyzer level with checkpointing, optionally
/// through a live `FetchScheduler`, and returns (estimate bits, charged,
/// serialized checkpoint stream).
fn run_checkpointed(pipelined: bool) -> (u64, u64, Vec<String>) {
    let s = scenario();
    let query = parse_query(
        "SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'privacy'",
        s.platform.keywords(),
    )
    .expect("query parses");
    let sink = AllCheckpoints::default();
    let report = if pipelined {
        let counters = Arc::new(SchedCounters::default());
        let sched = FetchScheduler::new(&s.platform, Arc::clone(&counters));
        std::thread::scope(|scope| {
            let _guard = SchedCloseGuard(&sched);
            for _ in 0..InflightPolicy::default().depth() {
                scope.spawn(|| sched.run_prefetcher());
            }
            let analyzer = MicroblogAnalyzer::with_backend(&sched, ApiProfile::twitter())
                .with_chains(CHAINS)
                .with_prefetch(&sched);
            let mut ctl = CheckpointCtl::new(2, &sink);
            analyzer.run_recoverable(
                &query,
                BUDGET,
                Algorithm::MaSrw { interval: None },
                SEED,
                None,
                &RetryPolicy::default(),
                Tracer::disabled(),
                &mut ctl,
                None,
            )
        })
    } else {
        let analyzer =
            MicroblogAnalyzer::with_backend(&s.platform, ApiProfile::twitter()).with_chains(CHAINS);
        let mut ctl = CheckpointCtl::new(2, &sink);
        analyzer.run_recoverable(
            &query,
            BUDGET,
            Algorithm::MaSrw { interval: None },
            SEED,
            None,
            &RetryPolicy::default(),
            Tracer::disabled(),
            &mut ctl,
            None,
        )
    };
    let est = report.outcome.expect("estimates");
    let checkpoints = sink.0.into_inner().expect("sink lock");
    let bytes = checkpoints
        .iter()
        .map(|cp| serde_json::to_string(cp).expect("checkpoint serializes"))
        .collect();
    (est.value.to_bits(), report.charged, bytes)
}

/// Every checkpoint a pipelined run emits is byte-identical to the one
/// the sequential run emits at the same safe point: draining in-flight
/// fetches before capture keeps resume state exact.
#[test]
fn checkpoint_stream_is_byte_identical() {
    let (seq_bits, seq_charged, seq_cps) = run_checkpointed(false);
    let (pip_bits, pip_charged, pip_cps) = run_checkpointed(true);
    assert_eq!(pip_bits, seq_bits);
    assert_eq!(pip_charged, seq_charged);
    assert!(!seq_cps.is_empty(), "the run must checkpoint");
    assert_eq!(
        pip_cps.len(),
        seq_cps.len(),
        "pipelining changed the checkpoint cadence"
    );
    for (i, (a, b)) in seq_cps.iter().zip(&pip_cps).enumerate() {
        assert_eq!(a, b, "checkpoint {i} bytes drifted under pipelining");
    }
}

/// Under injected faults absorbed by retries, the pipelined run still
/// lands on the sequential answer: the scheduler's per-key attempt
/// accounting keeps the fault schedule aligned.
#[test]
fn pipelined_run_is_bit_identical_under_faults() {
    let chaos = |cfg: &mut ServiceConfig| {
        cfg.fault_plan = Some(FaultPlan::mixed(99, 0.10).with_max_consecutive(2));
        cfg.retry = RetryPolicy::resilient().without_breaker();
    };
    let (seq, seq_events, _) = run_traced(false, chaos);
    let (pip, pip_events, _) = run_traced(true, chaos);
    assert_eq!(
        pip.estimate.value.to_bits(),
        seq.estimate.value.to_bits(),
        "faults + pipelining changed the estimate"
    );
    assert_eq!(pip.charged, seq.charged);
    assert_eq!(
        sample_seq(&seq_events),
        sample_seq(&pip_events),
        "faults + pipelining altered the sample sequence"
    );
}

fn journal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ma-pipeline-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A pipelined worker killed mid-walk at a checkpoint safe point is
/// respawned, resumes from the journaled checkpoint, and produces the
/// sequential uninterrupted answer — with the quota settled exactly
/// once.
#[test]
fn pipelined_crash_resume_matches_sequential_uninterrupted() {
    let (baseline, _, _) = run_traced(false, |_| {});
    let dir = journal_dir("kill");
    let s = scenario();
    let recorder = Arc::new(RingRecorder::new(RecorderConfig::default()));
    let clock = Arc::new(TelemetryClock::new(TelemetryMode::Logical));
    let cfg = ServiceConfig {
        workers: 1,
        global_quota: Some(50_000),
        telemetry: TelemetryMode::Logical,
        tracer: Tracer::new(recorder.clone(), clock),
        pipeline: true,
        chains: CHAINS,
        inflight: InflightPolicy::default(),
        journal: Some(dir.clone()),
        checkpoint_every: 2,
        crash_plan: Some(CrashPlan::kill("checkpoint").with_hit(3)),
        ..ServiceConfig::default()
    };
    let service = Service::start(Arc::new(s.platform.clone()), ApiProfile::twitter(), cfg)
        .expect("journal opens");
    let out = service
        .submit(spec(&s))
        .expect("admitted")
        .join()
        .into_result()
        .expect("crashed job still estimates after resume");
    assert_eq!(
        out.estimate.value.to_bits(),
        baseline.estimate.value.to_bits(),
        "pipelined crash/resume drifted from the sequential answer"
    );
    assert_eq!(out.charged, baseline.charged);
    assert_eq!(
        service.quota().consumed(),
        baseline.charged,
        "quota settled more (or less) than once across the crash"
    );
    assert_eq!(service.quota().reserved(), 0, "reservation leaked");
    // The supervisor acknowledges the crash asynchronously; wait for the
    // respawn without wall-clock sleeps.
    for _ in 0..50_000_000u64 {
        if service.metrics_snapshot().workers_respawned > 0 {
            break;
        }
        std::thread::yield_now();
    }
    let snap = service.metrics_snapshot();
    assert_eq!(snap.workers_respawned, 1, "supervisor must respawn");
    assert!(snap.checkpoints_written > 0);
    assert!(service.shutdown().clean);
    let _ = std::fs::remove_dir_all(&dir);
}
