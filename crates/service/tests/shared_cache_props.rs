//! Property tests for the shared cross-query cache.
//!
//! The contract under test (see `microblog_api::cache`): layering the
//! [`SharedApiCache`] under a batch of queries must be *invisible* to
//! every individual query — same estimate bits, same charged cost, same
//! error — while the platform sees at most (and with overlap, strictly
//! fewer than) the API calls of the same batch run in isolation.

use microblog_analyzer::query::parse::parse_query;
use microblog_analyzer::{Algorithm, EstimateError, MicroblogAnalyzer};
use microblog_api::ApiProfile;
use microblog_platform::scenario::{twitter_2013, Scale, Scenario};
use microblog_service::{JobSpec, Service, ServiceConfig, ServiceError, SharedCacheConfig};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

const KEYWORDS: [&str; 3] = ["privacy", "oprah winfrey", "tahrir"];
const AGGREGATES: [&str; 3] = ["COUNT(*)", "AVG(FOLLOWERS)", "AVG(POSTS)"];

fn world() -> &'static Scenario {
    static WORLD: OnceLock<Scenario> = OnceLock::new();
    WORLD.get_or_init(|| twitter_2013(Scale::Tiny, 2014))
}

fn spec(kw: usize, agg: usize, budget: u64, seed: u64) -> JobSpec {
    let text = format!(
        "SELECT {} FROM USERS WHERE KEYWORD = '{}'",
        AGGREGATES[agg], KEYWORDS[kw]
    );
    JobSpec::new(
        parse_query(&text, world().platform.keywords()).expect("query parses"),
        Algorithm::MaTarw { interval: None },
        budget,
        seed,
    )
}

/// What one job did, in either execution mode.
#[derive(Debug, PartialEq)]
enum Outcome {
    /// (value bits, charged cost, samples)
    Ok(u64, u64, usize),
    Err(EstimateError),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn shared_cache_is_invisible_to_estimates_and_never_costs_more(
        jobs in proptest::collection::vec(
            (0usize..3, 0usize..3, 1_500u64..3_500, 0u64..500),
            2..6,
        ),
    ) {
        let specs: Vec<JobSpec> =
            jobs.iter().map(|&(kw, agg, budget, seed)| spec(kw, agg, budget, seed)).collect();

        // Isolated runs: every query on its own analyzer, no sharing.
        let analyzer = MicroblogAnalyzer::new(&world().platform, ApiProfile::twitter());
        let mut isolated = Vec::new();
        let mut isolated_actual = 0u64;
        for s in &specs {
            match analyzer.estimate_with_cache(&s.query, s.budget, s.algorithm, s.seed, None) {
                Ok((est, stats)) => {
                    isolated_actual += stats.actual_calls;
                    isolated.push(Outcome::Ok(est.value.to_bits(), est.cost, est.samples));
                }
                Err(err) => isolated.push(Outcome::Err(err)),
            }
        }

        // The same batch through a shared-cache service.
        let service = Service::new(
            Arc::new(world().platform.clone()),
            ApiProfile::twitter(),
            ServiceConfig {
                workers: 4,
                global_quota: None,
                cache: SharedCacheConfig { capacity: 65_536, shards: 4 },
                ..ServiceConfig::default()
            },
        );
        let handles: Vec<_> = specs
            .into_iter()
            .map(|s| service.submit(s).expect("unlimited quota admits"))
            .collect();
        let mut shared_actual = 0u64;
        for (handle, expected) in handles.iter().zip(&isolated) {
            let got = match handle.join().into_result() {
                Ok(out) => {
                    shared_actual += out.cache.actual_calls;
                    prop_assert_eq!(
                        out.cache.actual_calls + out.cache.saved_calls,
                        out.estimate.cost,
                        "every charged call is either actual or saved"
                    );
                    Outcome::Ok(out.estimate.value.to_bits(), out.estimate.cost, out.estimate.samples)
                }
                Err(ServiceError::Estimation(err)) => Outcome::Err(err),
                Err(other) => {
                    return Err(TestCaseError::fail(format!("unexpected service error: {other}")))
                }
            };
            prop_assert_eq!(&got, expected, "sharing must not change any job's outcome");
        }

        prop_assert!(
            shared_actual <= isolated_actual,
            "shared batch hit the platform {shared_actual} times, isolated {isolated_actual}"
        );
        service.shutdown();
    }

    #[test]
    fn repeating_a_job_costs_the_platform_nothing_new(
        kw in 0usize..3,
        agg in 0usize..3,
        seed in 0u64..500,
    ) {
        let service = Service::new(
            Arc::new(world().platform.clone()),
            ApiProfile::twitter(),
            ServiceConfig {
                workers: 1,
                global_quota: None,
                cache: SharedCacheConfig { capacity: 65_536, shards: 4 },
                ..ServiceConfig::default()
            },
        );
        let first = service.submit(spec(kw, agg, 2_500, seed)).unwrap();
        let first = first.join().into_result();
        let second = service.submit(spec(kw, agg, 2_500, seed)).unwrap();
        let second = second.join().into_result();
        match (first, second) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.estimate.value.to_bits(), b.estimate.value.to_bits());
                prop_assert_eq!(a.estimate.cost, b.estimate.cost);
                // An identical replay is fully absorbed by the cache.
                prop_assert_eq!(b.cache.actual_calls, 0);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b, "replayed failure must match"),
            (a, b) => prop_assert!(false, "replay diverged: {a:?} vs {b:?}"),
        }
        service.shutdown();
    }
}
