//! Coalescing-transparency properties: a service with miss coalescing
//! on must be *observationally identical* to one with it off, for every
//! job — bit-identical estimates, identical charged totals, identical
//! quota settlement. Coalescing may only change how many fetches hit
//! the platform, never what any job computes or pays.
//!
//! The workload intentionally stampedes: several same-seed replicas per
//! query race through identical key sequences, which is where waiters
//! actually park on in-flight fetches (the coalesce counters prove it).

use microblog_analyzer::query::parse::parse_query;
use microblog_analyzer::Algorithm;
use microblog_api::ApiProfile;
use microblog_platform::scenario::{twitter_2013, Scale};
use microblog_service::{JobOutput, JobSpec, Service, ServiceConfig, SharedCacheConfig};
use std::sync::Arc;

const BUDGET: u64 = 2_000;

fn service(coalesce: bool) -> Service {
    let scenario = twitter_2013(Scale::Tiny, 2014);
    Service::new(
        Arc::new(scenario.platform),
        ApiProfile::twitter(),
        ServiceConfig {
            workers: 4,
            global_quota: Some(200_000),
            cache: SharedCacheConfig {
                capacity: 65_536,
                shards: 8,
            },
            coalesce,
            ..ServiceConfig::default()
        },
    )
}

/// The mixed stampede workload: per (keyword, algorithm) pair, three
/// same-seed replicas plus two distinct seeds.
fn workload(service: &Service) -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for (keyword, algorithm) in [
        ("privacy", Algorithm::MaTarw { interval: None }),
        ("new york", Algorithm::MaSrw { interval: None }),
    ] {
        let query = parse_query(
            &format!("SELECT COUNT(*) FROM USERS WHERE KEYWORD = '{keyword}'"),
            service.platform().keywords(),
        )
        .expect("query parses");
        for _ in 0..3 {
            specs.push(JobSpec::new(query.clone(), algorithm, BUDGET, 1));
        }
        for seed in [2, 3] {
            specs.push(JobSpec::new(query.clone(), algorithm, BUDGET, seed));
        }
    }
    specs
}

/// Submits the whole workload at once and joins in submission order.
fn run(service: &Service) -> Vec<JobOutput> {
    let handles: Vec<_> = workload(service)
        .into_iter()
        .map(|spec| service.submit(spec).expect("quota covers the workload"))
        .collect();
    handles
        .iter()
        .map(|h| h.join().into_result().expect("fault-free job succeeds"))
        .collect()
}

#[test]
fn coalesced_runs_are_observationally_identical_to_uncoalesced() {
    let plain = service(false);
    let coalesced = service(true);
    let baseline = run(&plain);
    let deduped = run(&coalesced);

    assert_eq!(baseline.len(), deduped.len());
    for (a, b) in baseline.iter().zip(&deduped) {
        assert_eq!(
            a.estimate.value.to_bits(),
            b.estimate.value.to_bits(),
            "estimates must be bit-identical (job {})",
            a.job
        );
        assert_eq!(
            a.estimate.std_err.map(f64::to_bits),
            b.estimate.std_err.map(f64::to_bits),
            "standard errors must be bit-identical (job {})",
            a.job
        );
        assert_eq!(a.estimate.samples, b.estimate.samples);
        assert_eq!(a.charged, b.charged, "charged calls differ (job {})", a.job);
    }

    // Aggregate charging and quota settlement are identical too: every
    // waiter is charged exactly as the shared hit it observes.
    let ms_plain = plain.metrics_snapshot();
    let ms_coalesced = coalesced.metrics_snapshot();
    assert_eq!(ms_plain.charged_calls, ms_coalesced.charged_calls);
    assert_eq!(plain.quota().consumed(), coalesced.quota().consumed());

    // And the coalescer must have actually done something in this
    // stampede (leaders elected; never more actual platform traffic
    // than the uncoalesced run).
    let stats = coalesced.coalesce_stats().expect("coalescing enabled");
    assert!(stats.leads > 0, "no flights led — workload never missed?");
    assert!(
        ms_coalesced.actual_calls <= ms_plain.actual_calls,
        "coalescing increased actual calls: {} > {}",
        ms_coalesced.actual_calls,
        ms_plain.actual_calls
    );
    assert!(plain.coalesce_stats().is_none());
}

#[test]
fn repeated_coalesced_runs_are_reproducible() {
    // Determinism holds *within* the coalesced configuration as well:
    // two fresh coalesced services produce bit-identical outputs.
    let first = run(&service(true));
    let second = run(&service(true));
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.estimate.value.to_bits(), b.estimate.value.to_bits());
        assert_eq!(a.charged, b.charged);
    }
}
