//! Resilience integration tests: the service engine over a faulty
//! platform.
//!
//! Invariants:
//!
//! - **No cache poisoning**: only successful responses enter the
//!   [`SharedApiCache`], so a transient error on the first fetch of a key
//!   can never leak partial data to later jobs — replays through the
//!   shared cache stay bit-identical to clean isolated runs.
//! - **Exact settlement under chaos**: with faults flying, every job
//!   still settles exactly what it charged; refunds from failed and
//!   degraded jobs return to the pool; nothing hangs.

use microblog_analyzer::query::parse::parse_query;
use microblog_analyzer::{Algorithm, MicroblogAnalyzer};
use microblog_api::{ApiProfile, RetryPolicy};
use microblog_platform::scenario::{twitter_2013, Scale, Scenario};
use microblog_platform::FaultPlan;
use microblog_service::{
    JobOutcome, JobSpec, Service, ServiceConfig, ServiceError, SharedCacheConfig,
};
use std::sync::Arc;

const QUERIES: [&str; 4] = [
    "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'",
    "SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'privacy'",
    "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'tahrir'",
    "SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'oprah winfrey'",
];

fn world() -> Scenario {
    twitter_2013(Scale::Tiny, 2014)
}

fn spec(scenario: &Scenario, q: usize, budget: u64, seed: u64) -> JobSpec {
    JobSpec::new(
        parse_query(QUERIES[q % QUERIES.len()], scenario.platform.keywords())
            .expect("query parses"),
        Algorithm::MaTarw { interval: None },
        budget,
        seed,
    )
}

/// A transient error on the first fetch of a key must not poison the
/// shared cache: the retry refetches, and only the good response is
/// stored. Every job through the faulty shared-cache service — including
/// replays served from the cache — must match the clean isolated run
/// bit-for-bit.
#[test]
fn faults_never_poison_the_shared_cache() {
    let scenario = world();
    let analyzer = MicroblogAnalyzer::new(&scenario.platform, ApiProfile::twitter());
    let baselines: Vec<_> = (0..QUERIES.len())
        .map(|q| {
            let s = spec(&scenario, q, 2_500, 31 + q as u64);
            analyzer
                .estimate_with_cache(&s.query, s.budget, s.algorithm, s.seed, None)
                .expect("clean run")
                .0
        })
        .collect();

    // Heavy mixed faults (including truncated pages), capped so patient
    // retries always get through. The first fetch of many keys faults.
    let service = Service::new(
        Arc::new(scenario.platform.clone()),
        ApiProfile::twitter(),
        ServiceConfig {
            workers: 2,
            fault_plan: Some(FaultPlan::mixed(9, 0.3).with_max_consecutive(2)),
            retry: RetryPolicy::patient(),
            ..ServiceConfig::default()
        },
    );
    // Two rounds: the first populates the cache through retries, the
    // second replays mostly from shared hits. Both must match baseline.
    for round in 0..2 {
        for (q, baseline) in baselines.iter().enumerate() {
            let outcome = service
                .submit(spec(&scenario, q, 2_500, 31 + q as u64))
                .expect("admitted")
                .join();
            assert!(
                outcome.is_complete(),
                "round {round} q{q}: capped faults must be absorbed: {outcome:?}"
            );
            let out = outcome.into_result().unwrap();
            assert_eq!(
                out.estimate.value.to_bits(),
                baseline.value.to_bits(),
                "round {round} q{q}: a poisoned cache entry would shift the estimate"
            );
            assert_eq!(out.estimate.cost, baseline.cost);
        }
    }
    let snap = service.cache_snapshot();
    assert!(snap.hits() > 0, "round two must hit the shared cache");
    let injected = service.fault_injector().expect("configured").injected();
    assert!(injected.total() > 0, "the plan must actually inject faults");
    assert!(injected.truncated > 0 || injected.transient > 0);
    service.shutdown();
}

/// Eight concurrent jobs against a faulty platform with a tight quota:
/// everything terminates, the quota settles exactly (refunds included),
/// and the retry counters show the stack actually worked.
#[test]
fn chaos_jobs_settle_the_quota_exactly() {
    const JOBS: u64 = 8;
    const BUDGET: u64 = 1_500;
    let scenario = world();
    let service = Arc::new(Service::new(
        Arc::new(scenario.platform.clone()),
        ApiProfile::twitter(),
        ServiceConfig {
            workers: 4,
            global_quota: Some(JOBS * BUDGET),
            cache: SharedCacheConfig {
                capacity: 65_536,
                shards: 8,
            },
            fault_plan: Some(FaultPlan::mixed(17, 0.15).with_max_consecutive(2)),
            retry: RetryPolicy::resilient().with_max_attempts(10),
            ..ServiceConfig::default()
        },
    ));
    let threads: Vec<_> = (0..JOBS)
        .map(|i| {
            let service = Arc::clone(&service);
            let scenario = world();
            std::thread::spawn(move || {
                let handle = service
                    .submit(spec(&scenario, i as usize, BUDGET, 7 * i))
                    .expect("quota covers all budgets");
                handle.join()
            })
        })
        .collect();

    let mut settled = 0u64;
    let mut retries = 0u64;
    for t in threads {
        let outcome = t.join().expect("submitter terminates");
        settled += outcome.charged();
        retries += outcome.resilience().retries;
        if let JobOutcome::Failed { error, .. } = &outcome {
            assert!(
                matches!(error, ServiceError::Estimation(_)),
                "only estimation failures are acceptable: {error}"
            );
        }
    }
    // Exact settlement: consumed equals the sum of per-job charges, all
    // reservations released, refunds visible in the metrics.
    assert_eq!(service.quota().consumed(), settled);
    assert_eq!(service.quota().reserved(), 0);
    assert!(service.quota().consumed() <= JOBS * BUDGET);
    let snap = service.metrics_snapshot();
    assert_eq!(snap.jobs_submitted, JOBS);
    assert_eq!(
        snap.jobs_succeeded + snap.jobs_failed,
        JOBS,
        "every job reached a terminal state"
    );
    assert_eq!(snap.charged_calls, settled);
    assert!(retries > 0, "a 15% fault plan must force retries");
    assert_eq!(snap.retries, retries);
    assert!(snap.wasted_calls > 0);
}

/// Degradation end-to-end: when the retry budget is too small for the
/// fault rate, jobs either fail (with refunds) or degrade (partial
/// estimate + error trail) — but always terminate and settle.
#[test]
fn overwhelmed_retries_degrade_or_fail_but_always_settle() {
    let scenario = world();
    let mut degraded_seen = false;
    let mut failed_seen = false;
    for fault_seed in 0..12 {
        let service = Service::new(
            Arc::new(scenario.platform.clone()),
            ApiProfile::twitter(),
            ServiceConfig {
                workers: 1,
                global_quota: Some(10_000),
                // Uncapped fault runs + a single attempt: the first fault
                // a walk meets is fatal to it.
                fault_plan: Some(FaultPlan::transient(fault_seed, 0.002).with_max_consecutive(0)),
                retry: RetryPolicy::none(),
                ..ServiceConfig::default()
            },
        );
        let outcome = service
            .submit(spec(&scenario, 0, 4_000, 5))
            .expect("admitted")
            .join();
        match &outcome {
            JobOutcome::Complete(out) => {
                // The plan was sparse enough that the walk never met a
                // fault at all.
                assert_eq!(out.resilience.fatal_errors, 0);
            }
            JobOutcome::Degraded(out) => {
                degraded_seen = true;
                assert!(out.resilience.fatal_errors > 0);
                assert!(!out.resilience.trail.is_empty());
                assert!(out.estimate.samples > 0, "degraded still has samples");
                assert!(out.charged <= 4_000);
            }
            JobOutcome::Failed { resilience, .. } => {
                failed_seen = true;
                assert!(resilience.fatal_errors > 0);
            }
        }
        // Settlement is exact in every ending.
        assert_eq!(service.quota().consumed(), outcome.charged());
        assert_eq!(service.quota().reserved(), 0);
        service.shutdown();
    }
    assert!(
        degraded_seen || failed_seen,
        "12 uncapped fault seeds must break at least one walk"
    );
}
