//! Concurrency tests: the global quota under simultaneous submitters.
//!
//! Many threads hammer one [`Service`] at once. The invariants:
//!
//! - **No over-admission**: the quota never promises more calls than its
//!   limit — admitted budgets plus consumed calls stay within the cap at
//!   every instant, so the final consumed total is within the cap too.
//! - **No lost updates**: what the quota reports as consumed equals the
//!   sum, over finished jobs, of what each job settled (the calls it
//!   actually charged — unused reservation is refunded, success or not).
//! - **Termination**: every handle joins; nothing deadlocks or is
//!   dropped on the floor.

use microblog_analyzer::query::parse::parse_query;
use microblog_analyzer::Algorithm;
use microblog_api::ApiProfile;
use microblog_platform::scenario::{twitter_2013, Scale};
use microblog_service::{JobSpec, Service, ServiceConfig, ServiceError, SharedCacheConfig};
use std::sync::Arc;

fn service(global_quota: Option<u64>, workers: usize) -> Service {
    let scenario = twitter_2013(Scale::Tiny, 2014);
    Service::new(
        Arc::new(scenario.platform),
        ApiProfile::twitter(),
        ServiceConfig {
            workers,
            global_quota,
            cache: SharedCacheConfig {
                capacity: 65_536,
                shards: 8,
            },
            ..ServiceConfig::default()
        },
    )
}

fn spec(service: &Service, budget: u64, seed: u64) -> JobSpec {
    let query = parse_query(
        "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'",
        service.platform().keywords(),
    )
    .expect("query parses");
    JobSpec::new(query, Algorithm::MaTarw { interval: None }, budget, seed)
}

#[test]
fn eight_submitters_respect_the_quota_exactly() {
    const SUBMITTERS: u64 = 8;
    const JOBS_PER_SUBMITTER: u64 = 6;
    const BUDGET: u64 = 1_500;
    // Roughly half the demand fits, so admissions and rejections race.
    const LIMIT: u64 = SUBMITTERS * JOBS_PER_SUBMITTER * BUDGET / 2;

    let service = Arc::new(service(Some(LIMIT), 4));
    let outcomes: Vec<_> = (0..SUBMITTERS)
        .map(|t| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut settled = 0u64; // what this thread's jobs consumed
                let mut admitted = 0u64;
                let mut rejected = 0u64;
                for j in 0..JOBS_PER_SUBMITTER {
                    let spec = spec(&service, BUDGET, t * 1_000 + j);
                    match service.submit(spec) {
                        Ok(handle) => {
                            admitted += 1;
                            // Whatever the ending, the job settled exactly
                            // what it charged; the rest was refunded.
                            settled += handle.join().charged();
                        }
                        Err(ServiceError::Rejected {
                            requested,
                            available,
                        }) => {
                            rejected += 1;
                            assert_eq!(requested, BUDGET);
                            assert!(
                                available < BUDGET,
                                "rejection implies the pool could not cover the budget"
                            );
                        }
                        Err(other) => panic!("unexpected submit error: {other}"),
                    }
                }
                (settled, admitted, rejected)
            })
        })
        .collect();

    let mut settled_total = 0u64;
    let mut admitted_total = 0u64;
    let mut rejected_total = 0u64;
    for t in outcomes {
        let (settled, admitted, rejected) = t.join().expect("submitter terminates");
        settled_total += settled;
        admitted_total += admitted;
        rejected_total += rejected;
    }

    // No lost updates: the quota agrees call-for-call with the jobs.
    assert_eq!(service.quota().consumed(), settled_total);
    assert_eq!(service.quota().reserved(), 0, "everything settled");
    // No over-admission: consumption stays within the cap.
    assert!(service.quota().consumed() <= LIMIT);
    assert!(
        rejected_total > 0,
        "a half-sized pool under full demand must reject someone"
    );
    assert!(admitted_total > 0, "and admit someone");
    let snap = service.metrics_snapshot();
    assert_eq!(snap.jobs_submitted, admitted_total);
    assert_eq!(snap.jobs_rejected, rejected_total);
    assert_eq!(snap.jobs_succeeded + snap.jobs_failed, admitted_total);
}

#[test]
fn unlimited_quota_admits_everyone_and_everything_terminates() {
    let service = Arc::new(service(None, 8));
    let handles: Vec<_> = (0..16)
        .map(|i| {
            service
                .submit(spec(&service, 1_200, i))
                .expect("unlimited admits")
        })
        .collect();
    let mut finished = 0;
    for handle in &handles {
        // Success or estimator failure both count — termination is the
        // invariant here.
        let _ = handle.join();
        finished += 1;
    }
    assert_eq!(finished, 16);
    assert_eq!(service.quota().reserved(), 0);
    let snap = service.metrics_snapshot();
    assert_eq!(snap.jobs_submitted, 16);
    assert_eq!(snap.jobs_succeeded + snap.jobs_failed, 16);
}

#[test]
fn shutdown_waits_for_in_flight_jobs() {
    let service = service(None, 2);
    let handles: Vec<_> = (0..4)
        .map(|i| service.submit(spec(&service, 1_000, i)).unwrap())
        .collect();
    // Shutdown drains the queue before joining the workers...
    service.shutdown();
    // ...so every handle already has an outcome.
    for handle in handles {
        assert!(
            handle.try_outcome().is_some(),
            "job finished before shutdown returned"
        );
    }
}
