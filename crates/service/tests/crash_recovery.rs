//! Crash-injection and recovery integration tests: the headline
//! invariant of the crash-only engine is that a job resumed from any
//! checkpoint — by the in-process supervisor or by journal replay in a
//! fresh process — produces bit-identical estimates, charged totals,
//! and quota settlement to an uninterrupted run, and that no crash at
//! any point can double-charge the global quota.

use microblog_analyzer::query::parse::parse_query;
use microblog_analyzer::Algorithm;
use microblog_api::{ApiProfile, RetryPolicy};
use microblog_platform::ids::{KeywordId, PostId, UserId};
use microblog_platform::scenario::{twitter_2013, Scale, Scenario};
use microblog_platform::time::TimeWindow;
use microblog_platform::{ApiBackend, CrashPlan, Fault, FaultPlan, Platform, CRASH_POINTS};
use microblog_service::{
    JobOutcome, JobOutput, JobSpec, Service, ServiceConfig, ServiceError, SharedCacheConfig,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const QUOTA: u64 = 50_000;
const BUDGET: u64 = 4_000;
const SEED: u64 = 7;

fn scenario() -> Scenario {
    twitter_2013(Scale::Tiny, 2014)
}

fn spec(scenario: &Scenario) -> JobSpec {
    JobSpec::new(
        parse_query(
            "SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'privacy'",
            scenario.platform.keywords(),
        )
        .expect("query parses"),
        Algorithm::MaTarw { interval: None },
        BUDGET,
        SEED,
    )
}

fn journal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ma-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        global_quota: Some(QUOTA),
        cache: SharedCacheConfig {
            capacity: 8_192,
            shards: 4,
        },
        // A low cadence guarantees even short TARW runs emit several
        // checkpoints, so the `checkpoint` crashpoint always arms.
        checkpoint_every: 2,
        ..ServiceConfig::default()
    }
}

fn run_uninterrupted(extra: impl FnOnce(&mut ServiceConfig)) -> JobOutput {
    let s = scenario();
    let mut cfg = config();
    extra(&mut cfg);
    let service = Service::new(Arc::new(s.platform.clone()), ApiProfile::twitter(), cfg);
    let out = service
        .submit(spec(&s))
        .expect("admitted")
        .join()
        .into_result()
        .expect("uninterrupted run estimates");
    let report = service.shutdown();
    assert!(report.clean);
    out
}

fn start(dir: &Path, extra: impl FnOnce(&mut ServiceConfig)) -> (Service, Scenario) {
    let s = scenario();
    let mut cfg = config();
    cfg.journal = Some(dir.to_path_buf());
    extra(&mut cfg);
    let service = Service::start(Arc::new(s.platform.clone()), ApiProfile::twitter(), cfg)
        .expect("journal opens");
    (service, s)
}

/// The supervisor acknowledges a crash asynchronously (a post-settle
/// crash publishes the outcome before the worker dies), so wait for the
/// respawn without wall-clock sleeps.
fn await_respawn(service: &Service, point: &str) {
    for _ in 0..50_000_000u64 {
        if service.metrics_snapshot().workers_respawned > 0 {
            return;
        }
        std::thread::yield_now();
    }
    panic!("supervisor never respawned after a kill at {point}");
}

/// Kill a worker at every crashpoint in turn: the supervisor respawns
/// it, requeues the job from the last checkpoint, and the final answer
/// is bit-identical to an uninterrupted run — with the quota settled
/// exactly once. A restart afterwards finds the job settled and has
/// nothing to recover.
#[test]
fn kill_at_every_crashpoint_recovers_bit_identically() {
    let baseline = run_uninterrupted(|_| {});
    for point in CRASH_POINTS {
        let dir = journal_dir(&format!("kill-{point}"));
        let (service, s) = start(&dir, |cfg| cfg.crash_plan = Some(CrashPlan::kill(point)));
        let out = service
            .submit(spec(&s))
            .expect("admitted")
            .join()
            .into_result()
            .unwrap_or_else(|e| panic!("kill at {point} must still estimate: {e}"));
        assert_eq!(
            out.estimate.value.to_bits(),
            baseline.estimate.value.to_bits(),
            "estimate drifted after a kill at {point}"
        );
        assert_eq!(out.charged, baseline.charged, "charge drifted at {point}");
        assert_eq!(
            service.quota().consumed(),
            baseline.charged,
            "quota double-charged (or leaked) after a kill at {point}"
        );
        assert_eq!(
            service.quota().reserved(),
            0,
            "reservation leaked at {point}"
        );
        await_respawn(&service, point);
        let snap = service.metrics_snapshot();
        assert_eq!(
            snap.workers_respawned, 1,
            "supervisor must respawn at {point}"
        );
        assert!(snap.checkpoints_written > 0);
        assert_eq!(service.workers(), 3, "respawn joins the pool");
        let report = service.shutdown();
        assert!(report.clean, "{point}");

        // A fresh process sees the settled job and reruns nothing.
        let (restarted, _) = start(&dir, |_| {});
        let recovery = restarted.recovery().expect("journal replayed").clone();
        assert_eq!(recovery.settled_jobs, 1, "{point}");
        assert_eq!(recovery.resumed_jobs, 0, "{point}");
        assert_eq!(
            restarted.quota().consumed(),
            baseline.charged,
            "adopted consumption drifted at {point}"
        );
        restarted.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A torn-tail crash invalidates the in-process journal, so the job is
/// interrupted rather than requeued; the next startup repairs the tail,
/// resumes the job from its last durable checkpoint, and lands on the
/// uninterrupted answer without double-charging.
#[test]
fn torn_tail_crash_recovers_across_restart() {
    let baseline = run_uninterrupted(|_| {});
    let dir = journal_dir("torn");
    {
        let (service, s) = start(&dir, |cfg| {
            cfg.crash_plan = Some(CrashPlan::torn_tail("pre_settle", 9));
        });
        let outcome = service.submit(spec(&s)).expect("admitted").join();
        match &outcome {
            JobOutcome::Failed {
                error: ServiceError::Interrupted,
                charged: 0,
                ..
            } => {}
            other => panic!("torn-tail crash must interrupt, got {other:?}"),
        }
        assert_eq!(
            service.quota().consumed(),
            0,
            "nothing settles on a torn tail"
        );
        assert_eq!(service.quota().reserved(), 0);
        let snap = service.metrics_snapshot();
        assert_eq!(snap.jobs_interrupted, 1);
        assert!(
            snap.journal_records_dropped > 0,
            "torn journal drops appends"
        );
        assert!(service.shutdown().clean);
    }

    let (service, _) = start(&dir, |_| {});
    let recovery = service.recovery().expect("journal replayed").clone();
    assert!(recovery.dropped_bytes > 0, "the torn tail was repaired");
    assert_eq!(recovery.resumed_jobs, 1);
    assert_eq!(recovery.settled_jobs, 0);
    let handle = service.recovered_jobs()[0].clone();
    let out = handle
        .join()
        .into_result()
        .expect("recovered job estimates");
    assert_eq!(
        out.estimate.value.to_bits(),
        baseline.estimate.value.to_bits(),
        "recovery from a durable checkpoint must be bit-identical"
    );
    assert_eq!(out.charged, baseline.charged);
    assert_eq!(
        service.quota().consumed(),
        baseline.charged,
        "exactly one settlement across crash + restart"
    );
    assert_eq!(service.metrics_snapshot().jobs_resumed, 1);
    assert!(service.shutdown().clean);

    // Third start: now the journal shows the job settled.
    let (third, _) = start(&dir, |_| {});
    let recovery = third.recovery().expect("journal replayed").clone();
    assert_eq!(recovery.settled_jobs, 1);
    assert_eq!(recovery.resumed_jobs, 0);
    assert_eq!(third.quota().consumed(), baseline.charged);
    third.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash recovery composes with fault injection: a worker killed at a
/// checkpoint while the platform is throwing retryable faults still
/// lands on the fault-free run's bits (absorbed faults never touch the
/// walk, and the resumed walk re-reads memoized state, not the API).
#[test]
fn kill_under_faults_stays_bit_identical() {
    let faults = || Some(FaultPlan::mixed(99, 0.10).with_max_consecutive(2));
    let policy = RetryPolicy::resilient().without_breaker();
    let baseline = run_uninterrupted(|cfg| {
        cfg.fault_plan = faults();
        cfg.retry = policy;
    });
    let dir = journal_dir("faulty-kill");
    let (service, s) = start(&dir, |cfg| {
        cfg.fault_plan = faults();
        cfg.retry = policy;
        cfg.crash_plan = Some(CrashPlan::kill("checkpoint").with_hit(3));
    });
    let out = service
        .submit(spec(&s))
        .expect("admitted")
        .join()
        .into_result()
        .expect("faulty crashed run estimates");
    assert_eq!(
        out.estimate.value.to_bits(),
        baseline.estimate.value.to_bits()
    );
    assert_eq!(out.charged, baseline.charged);
    assert_eq!(service.quota().consumed(), baseline.charged);
    assert_eq!(service.metrics_snapshot().workers_respawned, 1);
    assert!(service.shutdown().clean);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A backend whose fetchers block forever once `open` stays false —
/// the regression stand-in for a hung estimator.
#[derive(Debug)]
struct HangingBackend {
    inner: Platform,
    open: std::sync::Mutex<bool>,
    gate: std::sync::Condvar,
}

impl HangingBackend {
    fn new(inner: Platform) -> Self {
        HangingBackend {
            inner,
            open: std::sync::Mutex::new(false),
            gate: std::sync::Condvar::new(),
        }
    }

    fn wait_open(&self) {
        let mut open = self.open.lock().unwrap_or_else(|e| e.into_inner());
        while !*open {
            open = self.gate.wait(open).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl ApiBackend for HangingBackend {
    fn store(&self) -> &Platform {
        &self.inner
    }

    fn fetch_search(&self, kw: KeywordId, window: TimeWindow) -> Result<Vec<PostId>, Fault> {
        self.wait_open();
        self.inner.fetch_search(kw, window)
    }

    fn fetch_timeline(&self, u: UserId) -> Result<&[PostId], Fault> {
        self.wait_open();
        self.inner.fetch_timeline(u)
    }

    fn fetch_connections(&self, u: UserId) -> Result<(&[u32], &[u32]), Fault> {
        self.wait_open();
        self.inner.fetch_connections(u)
    }
}

/// Without a drain deadline a hung estimator blocks `shutdown` forever.
/// With one, shutdown returns on time, the handle fails with
/// `Interrupted`, the straggler is journaled — and a restart with a
/// healthy backend runs it to completion.
#[test]
fn drain_deadline_interrupts_hung_jobs_and_restart_recovers_them() {
    let dir = journal_dir("drain");
    let s = scenario();
    let backend = Arc::new(HangingBackend::new(s.platform.clone()));
    let mut cfg = config();
    cfg.workers = 1;
    cfg.journal = Some(dir.clone());
    cfg.backend = Some(Arc::clone(&backend) as Arc<dyn ApiBackend>);
    cfg.drain_timeout = Some(Duration::from_millis(250));
    let service = Service::start(Arc::new(s.platform.clone()), ApiProfile::twitter(), cfg)
        .expect("journal opens");
    let handle = service.submit(spec(&s)).expect("admitted");
    let job = handle.id();

    // Run shutdown on a helper thread behind a watchdog: if the drain
    // deadline regresses, the test fails fast instead of hanging CI.
    let (done, watchdog) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = done.send(service.shutdown());
    });
    let report = watchdog
        .recv_timeout(Duration::from_secs(60))
        .expect("drain deadline must bound shutdown");
    assert!(!report.clean);
    assert_eq!(report.interrupted, vec![job]);
    match handle.join() {
        JobOutcome::Failed {
            error: ServiceError::Interrupted,
            ..
        } => {}
        other => panic!("hung job must be interrupted, got {other:?}"),
    }
    // Unblock the detached worker so the test process can exit cleanly.
    *backend.open.lock().unwrap_or_else(|e| e.into_inner()) = true;
    backend.gate.notify_all();

    let (restarted, _) = start(&dir, |_| {});
    let recovery = restarted.recovery().expect("journal replayed").clone();
    assert_eq!(recovery.resumed_jobs, 1);
    let out = restarted.recovered_jobs()[0]
        .join()
        .into_result()
        .expect("recovered after restart");
    assert!(out.charged > 0);
    assert!(restarted.shutdown().clean);
    let _ = std::fs::remove_dir_all(&dir);
}
