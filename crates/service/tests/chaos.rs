//! Heavy chaos stress tests, behind the `chaos` feature:
//!
//! ```text
//! cargo test -p microblog-service --features chaos
//! ```
//!
//! Many submitter threads race admissions against a quota that cannot
//! cover the demand, while every platform fetch runs a gauntlet of
//! transient errors, rate limits, timeouts, and truncated pages. The
//! service must come out with books that balance to the call.
#![cfg(feature = "chaos")]

use microblog_analyzer::query::parse::parse_query;
use microblog_analyzer::{Algorithm, MicroblogAnalyzer};
use microblog_api::{ApiProfile, RetryPolicy};
use microblog_platform::scenario::{twitter_2013, Scale, Scenario};
use microblog_platform::FaultPlan;
use microblog_service::{JobSpec, Service, ServiceConfig, ServiceError, SharedCacheConfig};
use std::sync::Arc;

const QUERIES: [&str; 6] = [
    "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy'",
    "SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'privacy'",
    "SELECT AVG(POSTS) FROM USERS WHERE KEYWORD = 'privacy'",
    "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'tahrir'",
    "SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'tahrir'",
    "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'oprah winfrey'",
];

fn spec(scenario: &Scenario, q: usize, budget: u64, seed: u64) -> JobSpec {
    JobSpec::new(
        parse_query(QUERIES[q % QUERIES.len()], scenario.platform.keywords())
            .expect("query parses"),
        Algorithm::MaTarw { interval: None },
        budget,
        seed,
    )
}

/// The big one: 8 submitters × 6 jobs, quota sized for roughly half the
/// demand, 20% mixed faults on every fetch. Exact settlement, no hangs,
/// books balance.
#[test]
fn chaos_storm_settles_exactly_under_contention() {
    const SUBMITTERS: u64 = 8;
    const JOBS_PER_SUBMITTER: u64 = 6;
    const BUDGET: u64 = 1_200;
    const LIMIT: u64 = SUBMITTERS * JOBS_PER_SUBMITTER * BUDGET / 2;

    let scenario = twitter_2013(Scale::Tiny, 2014);
    let service = Arc::new(Service::new(
        Arc::new(scenario.platform.clone()),
        ApiProfile::twitter(),
        ServiceConfig {
            workers: 4,
            global_quota: Some(LIMIT),
            cache: SharedCacheConfig {
                capacity: 65_536,
                shards: 8,
            },
            fault_plan: Some(FaultPlan::mixed(23, 0.2).with_max_consecutive(2)),
            retry: RetryPolicy::resilient().with_max_attempts(10),
            ..ServiceConfig::default()
        },
    ));
    let threads: Vec<_> = (0..SUBMITTERS)
        .map(|t| {
            let service = Arc::clone(&service);
            let scenario = twitter_2013(Scale::Tiny, 2014);
            std::thread::spawn(move || {
                let mut settled = 0u64;
                let mut admitted = 0u64;
                let mut rejected = 0u64;
                for j in 0..JOBS_PER_SUBMITTER {
                    let spec = spec(&scenario, (t + j) as usize, BUDGET, t * 1_000 + j);
                    match service.submit(spec) {
                        Ok(handle) => {
                            admitted += 1;
                            settled += handle.join().charged();
                        }
                        Err(ServiceError::Rejected { available, .. }) => {
                            rejected += 1;
                            assert!(available < BUDGET);
                        }
                        Err(other) => panic!("unexpected submit error: {other}"),
                    }
                }
                (settled, admitted, rejected)
            })
        })
        .collect();

    let mut settled_total = 0u64;
    let mut admitted_total = 0u64;
    let mut rejected_total = 0u64;
    for t in threads {
        let (settled, admitted, rejected) = t.join().expect("submitter terminates");
        settled_total += settled;
        admitted_total += admitted;
        rejected_total += rejected;
    }

    assert_eq!(service.quota().consumed(), settled_total);
    assert_eq!(service.quota().reserved(), 0, "everything settled");
    assert!(service.quota().consumed() <= LIMIT);
    assert!(admitted_total > 0);
    assert!(
        rejected_total > 0,
        "a half-sized pool under full demand must reject someone"
    );
    let snap = service.metrics_snapshot();
    assert_eq!(snap.jobs_submitted, admitted_total);
    assert_eq!(snap.jobs_succeeded + snap.jobs_failed, admitted_total);
    assert_eq!(snap.charged_calls, settled_total);
    assert!(snap.retries > 0, "20% faults must force retries");
    assert!(snap.wasted_calls > 0);
    let injected = service.fault_injector().expect("configured").injected();
    assert!(injected.total() > 0);
}

/// Chaos must stay invisible when absorbed: every query that completes
/// (not degraded) under heavy faults is bit-identical to its fault-free
/// twin, even with the shared cache in play.
#[test]
fn chaos_survivors_match_fault_free_runs_bit_for_bit() {
    let scenario = twitter_2013(Scale::Tiny, 2014);
    let analyzer = MicroblogAnalyzer::new(&scenario.platform, ApiProfile::twitter());
    let baselines: Vec<_> = (0..QUERIES.len())
        .map(|q| {
            let s = spec(&scenario, q, 2_000, 41 + q as u64);
            analyzer
                .estimate_with_cache(&s.query, s.budget, s.algorithm, s.seed, None)
                .expect("clean run")
                .0
        })
        .collect();

    let service = Service::new(
        Arc::new(scenario.platform.clone()),
        ApiProfile::twitter(),
        ServiceConfig {
            workers: 3,
            fault_plan: Some(FaultPlan::mixed(31, 0.35).with_max_consecutive(2)),
            retry: RetryPolicy::patient(),
            ..ServiceConfig::default()
        },
    );
    let handles: Vec<_> = (0..QUERIES.len())
        .map(|q| {
            service
                .submit(spec(&scenario, q, 2_000, 41 + q as u64))
                .expect("admitted")
        })
        .collect();
    for (q, handle) in handles.iter().enumerate() {
        let outcome = handle.join();
        assert!(
            outcome.is_complete(),
            "q{q}: patient retries must absorb capped faults: {outcome:?}"
        );
        let out = outcome.into_result().unwrap();
        assert_eq!(out.estimate.value.to_bits(), baselines[q].value.to_bits());
        assert_eq!(out.estimate.cost, baselines[q].cost);
        assert!(
            out.resilience.retries > 0,
            "q{q}: 35% faults, zero retries?"
        );
    }
    service.shutdown();
}
