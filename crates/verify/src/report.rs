//! Rendering audits for humans and for CI.

use crate::checks::Audit;

/// The audit of one trace file.
#[derive(Clone, Debug)]
pub struct FileAudit {
    /// Path as given on the command line.
    pub path: String,
    /// The audit result.
    pub audit: Audit,
}

/// All audited files of one invocation.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Per-file results, in argument order.
    pub files: Vec<FileAudit>,
}

impl Report {
    /// True when no file produced a violation.
    pub fn ok(&self) -> bool {
        self.files.iter().all(|f| f.audit.ok())
    }

    /// Total violations across all files.
    pub fn total_violations(&self) -> usize {
        self.files.iter().map(|f| f.audit.violations.len()).sum()
    }

    /// Human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for file in &self.files {
            let a = &file.audit;
            for v in &a.violations {
                out.push_str(&format!(
                    "{}:{}: [{}] {}\n",
                    file.path, v.line, v.check, v.message
                ));
            }
            out.push_str(&format!(
                "{}: {} frame(s), {} charged call(s) ({} fresh), {} job(s) conserved, {} stats window(s), {} violation(s)",
                file.path,
                a.frames,
                a.charged_calls,
                a.fresh_calls,
                a.conserved_jobs,
                a.stats_windows,
                a.violations.len()
            ));
            if !a.skipped.is_empty() {
                out.push_str(&format!(
                    " — skipped on concurrent trace: {}",
                    a.skipped.join(", ")
                ));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "ma-verify: {} file(s), {} violation(s)\n",
            self.files.len(),
            self.total_violations()
        ));
        out
    }

    /// Machine-readable rendering (stable key order, hand-rolled like
    /// the trace export itself).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"files\": [");
        for (i, file) in self.files.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let a = &file.audit;
            out.push_str(&format!(
                "\n    {{\"path\": {}, \"frames\": {}, \"charged_calls\": {}, \"fresh_calls\": {}, \"conserved_jobs\": {}, \"stats_windows\": {}, \"skipped\": [{}], \"violations\": [",
                json_str(&file.path),
                a.frames,
                a.charged_calls,
                a.fresh_calls,
                a.conserved_jobs,
                a.stats_windows,
                a.skipped
                    .iter()
                    .map(|s| json_str(s))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            for (j, v) in a.violations.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n      {{\"line\": {}, \"check\": {}, \"message\": {}}}",
                    v.line,
                    json_str(v.check),
                    json_str(&v.message)
                ));
            }
            if !a.violations.is_empty() {
                out.push_str("\n    ");
            }
            out.push_str("]}");
        }
        if !self.files.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"total_violations\": {},\n  \"ok\": {}\n}}\n",
            self.total_violations(),
            self.ok()
        ));
        out
    }
}

/// Minimal JSON string escaping (mirrors the obs exporter).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::Violation;

    fn sample() -> Report {
        let mut audit = Audit {
            frames: 3,
            charged_calls: 5,
            fresh_calls: 4,
            ..Audit::default()
        };
        audit.violations.push(Violation {
            line: 2,
            check: "settle-once",
            message: "job 1 settled 2 times — \"twice\"".to_string(),
        });
        Report {
            files: vec![FileAudit {
                path: "trace.jsonl".to_string(),
                audit,
            }],
        }
    }

    #[test]
    fn text_cites_file_line_and_check() {
        let text = sample().render_text();
        assert!(text.contains("trace.jsonl:2: [settle-once]"), "{text}");
        assert!(text.contains("1 violation(s)"), "{text}");
    }

    #[test]
    fn json_escapes_and_totals() {
        let json = sample().render_json();
        assert!(json.contains("\\\"twice\\\""), "{json}");
        assert!(json.contains("\"total_violations\": 1"), "{json}");
        assert!(json.contains("\"ok\": false"), "{json}");
    }
}
