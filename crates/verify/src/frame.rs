//! A never-panicking decoder for the JSONL trace format `microblog-obs`
//! exports.
//!
//! The decoder is hand-rolled on purpose: the auditor's first duty is to
//! reject frames the runtime could not have written, and a permissive
//! general-purpose deserializer would paper over exactly the corruption
//! we are hunting. Every deviation — bad UTF-8 escapes, unknown
//! categories, a string where a number belongs — surfaces as a
//! [`DecodeError`] carrying a byte offset, never as a panic. Property
//! tests feed the decoder arbitrary bytes to hold that line.

use microblog_obs::schema;
use microblog_obs::{Category, EventKind, WalkPhase};

/// Recursion ceiling for nested arrays/objects. The real format nests
/// two levels deep; anything past this is an attack or corruption, and
/// bottomless recursion would blow the stack before logic could object.
const MAX_DEPTH: u32 = 32;

/// A decode failure: where in the line, and what went wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset into the line.
    pub offset: usize,
    /// Human-readable cause.
    pub msg: String,
}

impl DecodeError {
    fn new(offset: usize, msg: impl Into<String>) -> Self {
        DecodeError {
            offset,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.msg)
    }
}

/// A parsed JSON number, kept in its narrowest faithful type.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Num {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Anything with a fraction or exponent.
    F64(f64),
}

impl Num {
    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Num::U64(v) => Some(v),
            Num::I64(v) => u64::try_from(v).ok(),
            Num::F64(_) => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Num::U64(v) => i64::try_from(v).ok(),
            Num::I64(v) => Some(v),
            Num::F64(_) => None,
        }
    }
}

/// A generic JSON value (object keys keep emission order).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(Num),
    /// A string, escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Parses one JSON value covering the entire input (trailing whitespace
/// allowed).
pub fn parse_json(input: &str) -> Result<Json, DecodeError> {
    let mut p = Parser {
        b: input.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(DecodeError::new(p.i, "trailing garbage after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, lit: &str) -> Result<(), DecodeError> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(DecodeError::new(self.i, format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, DecodeError> {
        if depth > MAX_DEPTH {
            return Err(DecodeError::new(self.i, "nesting too deep"));
        }
        match self.b.get(self.i) {
            None => Err(DecodeError::new(self.i, "unexpected end of input")),
            Some(b'n') => self.expect("null").map(|()| Json::Null),
            Some(b't') => self.expect("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.expect("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.b.get(self.i) == Some(&b']') {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.b.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(DecodeError::new(self.i, "expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.b.get(self.i) == Some(&b'}') {
                    self.i += 1;
                    return Ok(Json::Obj(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(":")?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.b.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Json::Obj(entries));
                        }
                        _ => return Err(DecodeError::new(self.i, "expected `,` or `}`")),
                    }
                }
            }
            Some(_) => self.number().map(Json::Num),
        }
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        if self.b.get(self.i) != Some(&b'"') {
            return Err(DecodeError::new(self.i, "expected string"));
        }
        self.i += 1;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(DecodeError::new(self.i, "unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let code = self.hex4()?;
                            // Lone surrogates become the replacement
                            // char — the emitter never writes them, and
                            // the auditor must not die on hostile input.
                            out.push(char::from_u32(u32::from(code)).unwrap_or('\u{FFFD}'));
                            continue;
                        }
                        _ => return Err(DecodeError::new(self.i, "bad escape")),
                    }
                    self.i += 1;
                }
                Some(&c) if c < 0x20 => {
                    return Err(DecodeError::new(self.i, "raw control char in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar. The input is a &str, so
                    // boundaries are guaranteed; find the next one.
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && (self.b[self.i] & 0xC0) == 0x80 {
                        self.i += 1;
                    }
                    match std::str::from_utf8(&self.b[start..self.i]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(DecodeError::new(start, "invalid UTF-8")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, DecodeError> {
        // self.i sits on the `u`.
        let mut code: u16 = 0;
        for k in 1..=4 {
            let d = match self.b.get(self.i + k) {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                _ => return Err(DecodeError::new(self.i + k, "bad \\u escape")),
            };
            code = (code << 4) | u16::from(d);
        }
        self.i += 5;
        Ok(code)
    }

    fn number(&mut self) -> Result<Num, DecodeError> {
        let start = self.i;
        while matches!(
            self.b.get(self.i),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| DecodeError::new(start, "invalid UTF-8 in number"))?;
        if text.is_empty() {
            return Err(DecodeError::new(start, "expected value"));
        }
        if text.bytes().any(|c| matches!(c, b'.' | b'e' | b'E')) {
            let v: f64 = text
                .parse()
                .map_err(|_| DecodeError::new(start, "bad float"))?;
            if !v.is_finite() {
                return Err(DecodeError::new(start, "non-finite float"));
            }
            Ok(Num::F64(v))
        } else if let Some(neg) = text.strip_prefix('-') {
            let v: i64 = neg
                .parse::<i64>()
                .map(|v| -v)
                .map_err(|_| DecodeError::new(start, "bad integer"))?;
            Ok(Num::I64(v))
        } else {
            let v: u64 = text
                .parse()
                .map_err(|_| DecodeError::new(start, "bad integer"))?;
            Ok(Num::U64(v))
        }
    }
}

/// One typed field value of a frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Field {
    /// Numeric field.
    Num(Num),
    /// String field.
    Str(String),
}

/// One decoded trace frame: the nine fixed keys of the export format,
/// with the enums resolved against the `microblog-obs` schema tables.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Logical (or wall) timestamp in microseconds.
    pub tick: u64,
    /// Global emission sequence number.
    pub seq: u64,
    /// Point event or span edge.
    pub kind: EventKind,
    /// Subsystem category.
    pub cat: Category,
    /// Event name (vocabulary is checked by the auditor, per kind).
    pub name: String,
    /// Span id for span edges, `None` for point events.
    pub span: Option<u64>,
    /// Ambient walk phase at emission.
    pub phase: WalkPhase,
    /// Published MA-TARW level, if any.
    pub level: Option<i64>,
    /// Typed payload fields, in emission order.
    pub fields: Vec<(String, Field)>,
}

impl Frame {
    /// Decodes one JSONL line. Structural problems (missing keys, wrong
    /// types, unknown enum strings) are errors; event-*name* vocabulary
    /// is left to the auditor so the message can cite the check.
    pub fn decode(line: &str) -> Result<Frame, DecodeError> {
        let Json::Obj(entries) = parse_json(line)? else {
            return Err(DecodeError::new(0, "frame is not a JSON object"));
        };
        let get = |key: &str| -> Result<&Json, DecodeError> {
            entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| DecodeError::new(0, format!("missing key `{key}`")))
        };
        let u64_of = |key: &str| -> Result<u64, DecodeError> {
            match get(key)? {
                Json::Num(n) => n
                    .as_u64()
                    .ok_or_else(|| DecodeError::new(0, format!("`{key}` is not a u64"))),
                other => Err(DecodeError::new(
                    0,
                    format!("`{key}` is {}, expected number", other.type_name()),
                )),
            }
        };
        let str_of = |key: &str| -> Result<&str, DecodeError> {
            match get(key)? {
                Json::Str(s) => Ok(s.as_str()),
                other => Err(DecodeError::new(
                    0,
                    format!("`{key}` is {}, expected string", other.type_name()),
                )),
            }
        };

        let kind = str_of("kind")?;
        let kind = schema::parse_kind(kind)
            .ok_or_else(|| DecodeError::new(0, format!("unknown kind `{kind}`")))?;
        let cat = str_of("cat")?;
        let cat = schema::parse_category(cat)
            .ok_or_else(|| DecodeError::new(0, format!("unknown category `{cat}`")))?;
        let phase = str_of("phase")?;
        let phase = schema::parse_phase(phase)
            .ok_or_else(|| DecodeError::new(0, format!("unknown phase `{phase}`")))?;
        let span = match get("span")? {
            Json::Null => None,
            Json::Num(n) => Some(
                n.as_u64()
                    .ok_or_else(|| DecodeError::new(0, "`span` is not a u64"))?,
            ),
            other => {
                return Err(DecodeError::new(
                    0,
                    format!("`span` is {}, expected number or null", other.type_name()),
                ))
            }
        };
        let level = match get("level")? {
            Json::Null => None,
            Json::Num(n) => Some(
                n.as_i64()
                    .ok_or_else(|| DecodeError::new(0, "`level` is not an i64"))?,
            ),
            other => {
                return Err(DecodeError::new(
                    0,
                    format!("`level` is {}, expected number or null", other.type_name()),
                ))
            }
        };
        let Json::Obj(raw_fields) = get("fields")? else {
            return Err(DecodeError::new(0, "`fields` is not an object"));
        };
        let mut fields = Vec::with_capacity(raw_fields.len());
        for (k, v) in raw_fields {
            let field = match v {
                Json::Num(n) => Field::Num(*n),
                Json::Str(s) => Field::Str(s.clone()),
                other => {
                    return Err(DecodeError::new(
                        0,
                        format!(
                            "field `{k}` is {}, expected number or string",
                            other.type_name()
                        ),
                    ))
                }
            };
            fields.push((k.clone(), field));
        }
        Ok(Frame {
            tick: u64_of("tick")?,
            seq: u64_of("seq")?,
            kind,
            cat,
            name: str_of("name")?.to_string(),
            span,
            phase,
            level,
            fields,
        })
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// A `u64` field, if present and numeric.
    pub fn u64_field(&self, name: &str) -> Option<u64> {
        match self.field(name)? {
            Field::Num(n) => n.as_u64(),
            Field::Str(_) => None,
        }
    }

    /// A string field, if present.
    pub fn str_field(&self, name: &str) -> Option<&str> {
        match self.field(name)? {
            Field::Str(s) => Some(s),
            Field::Num(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = r#"{"tick":42,"seq":7,"kind":"event","cat":"charge","name":"charge","span":null,"phase":"walk","level":2,"fields":{"endpoint":"search","calls":3,"source":"fresh"}}"#;

    #[test]
    fn decodes_a_charge_frame() {
        let f = Frame::decode(LINE).expect("decodes");
        assert_eq!(f.tick, 42);
        assert_eq!(f.seq, 7);
        assert_eq!(f.kind, EventKind::Event);
        assert_eq!(f.cat, Category::Charge);
        assert_eq!(f.name, "charge");
        assert_eq!(f.span, None);
        assert_eq!(f.phase, WalkPhase::Walk);
        assert_eq!(f.level, Some(2));
        assert_eq!(f.u64_field("calls"), Some(3));
        assert_eq!(f.str_field("source"), Some("fresh"));
    }

    #[test]
    fn rejects_unknown_enum_strings() {
        for (from, to) in [
            ("\"cat\":\"charge\"", "\"cat\":\"charges\""),
            ("\"kind\":\"event\"", "\"kind\":\"span\""),
            ("\"phase\":\"walk\"", "\"phase\":\"warmup\""),
        ] {
            let bad = LINE.replace(from, to);
            assert!(Frame::decode(&bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn rejects_structural_damage() {
        assert!(Frame::decode("").is_err());
        assert!(Frame::decode("[1,2,3]").is_err());
        assert!(Frame::decode("{\"tick\":1}").is_err());
        assert!(Frame::decode(&LINE[..LINE.len() - 2]).is_err());
        assert!(Frame::decode(&format!("{LINE} extra")).is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_recursing_forever() {
        let bomb = "[".repeat(10_000);
        assert!(parse_json(&bomb).is_err());
    }

    #[test]
    fn string_escapes_resolve() {
        let v = parse_json(r#""a\"b\\cA\n""#).expect("parses");
        assert_eq!(v, Json::Str("a\"b\\cA\n".to_string()));
    }
}
