//! `ma-verify` — replay structured traces and audit runtime invariants.
//!
//! ```text
//! ma-verify <trace.jsonl>... [--json] [--json-out <path>]
//! ```
//!
//! Exit codes: `0` all invariants hold, `1` violations found, `2` usage
//! or I/O error.

use ma_verify::{audit, FileAudit, Report};

fn main() {
    std::process::exit(run(std::env::args().skip(1).collect()));
}

fn run(args: Vec<String>) -> i32 {
    let mut paths: Vec<String> = Vec::new();
    let mut json = false;
    let mut json_out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--json-out" => match it.next() {
                Some(path) => json_out = Some(path),
                None => {
                    eprintln!("ma-verify: --json-out needs a path");
                    return 2;
                }
            },
            "--help" | "-h" => {
                println!("usage: ma-verify <trace.jsonl>... [--json] [--json-out <path>]");
                return 0;
            }
            flag if flag.starts_with("--") => {
                eprintln!("ma-verify: unknown flag `{flag}`");
                return 2;
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: ma-verify <trace.jsonl>... [--json] [--json-out <path>]");
        return 2;
    }

    let mut report = Report::default();
    for path in paths {
        let input = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ma-verify: cannot read {path}: {e}");
                return 2;
            }
        };
        report.files.push(FileAudit {
            path,
            audit: audit(&input),
        });
    }

    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, report.render_json()) {
            eprintln!("ma-verify: cannot write {path}: {e}");
            return 2;
        }
    }
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    i32::from(!report.ok())
}
