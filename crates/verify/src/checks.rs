//! The invariant checks replayed over a decoded trace.
//!
//! The runtime's money invariants — every charge attributed, every
//! reservation settled exactly once, checkpoints that never run
//! backwards, breakers that only move along their state machine — are
//! all *observable* in the structured trace. This module replays a
//! `.jsonl` stream and asserts them, so CI catches a violation the
//! moment the code that emits the trace regresses.
//!
//! Live-telemetry streams (`stats` frames from `ma-cli serve
//! --stats-every`) carry their own money invariant: every `window`
//! event reports per-counter deltas *and* cumulative totals, and the
//! deltas must telescope — each total equals the previous total plus
//! the delta, so the sum of all deltas equals the final total.
//!
//! Concurrency caveat: charge→job attribution and breaker state are
//! per-worker facts, but the trace is a single interleaved stream. When
//! two `job` spans overlap, the auditor cannot tell whose charge is
//! whose, so the span-conservation, tick-order and breaker checks are
//! skipped (reported in [`Audit::skipped`]); the settle, checkpoint,
//! vocabulary and attribution checks are interleaving-proof and always
//! run.

use crate::frame::Frame;
use microblog_obs::schema;
use microblog_obs::{Category, EventKind, WalkPhase};
use std::collections::BTreeMap;

/// One invariant violation, anchored to a 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// 1-based line in the trace file.
    pub line: usize,
    /// Stable check identifier (e.g. `settle-once`).
    pub check: &'static str,
    /// What went wrong.
    pub message: String,
}

/// The outcome of auditing one trace stream.
#[derive(Clone, Debug, Default)]
pub struct Audit {
    /// Frames decoded successfully.
    pub frames: usize,
    /// All violations, in line order.
    pub violations: Vec<Violation>,
    /// Checks skipped because `job` spans overlap (concurrent trace).
    pub skipped: Vec<&'static str>,
    /// Total charged calls across all `charge` events.
    pub charged_calls: u64,
    /// Charged calls with `source == "fresh"` (actual backend fetches).
    pub fresh_calls: u64,
    /// `job` spans whose charge conservation was verified.
    pub conserved_jobs: usize,
    /// `stats`/`window` events whose counter conservation was verified.
    pub stats_windows: usize,
}

impl Audit {
    /// No violations found.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One completed `job` span.
struct JobRun {
    job_id: u64,
    start_seq: u64,
    end_seq: u64,
    end_line: usize,
    charged: u64,
    outcome: String,
    resumed: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Breaker {
    Closed,
    Open,
    HalfOpen,
}

/// Replays `input` (one JSON frame per line) and audits every invariant.
pub fn audit(input: &str) -> Audit {
    let mut audit = Audit::default();
    let mut frames: Vec<(usize, Frame)> = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        match Frame::decode(line) {
            Ok(f) => frames.push((line_no, f)),
            Err(e) => audit.violations.push(Violation {
                line: line_no,
                check: "decode",
                message: format!("malformed frame: {e}"),
            }),
        }
    }
    audit.frames = frames.len();

    // Pass 1: does any pair of `job` spans overlap? Attribution of
    // charges to spans (and breaker state) is only sound when they
    // don't.
    let concurrent = job_spans_overlap(&frames);
    if concurrent {
        audit.skipped = vec!["job-conservation", "breaker-legality", "tick-order"];
    }

    let mut last_seq: Option<u64> = None;
    let mut last_tick: Option<u64> = None;
    // span id -> (line, cat, name)
    let mut open_spans: BTreeMap<u64, (usize, Category, String)> = BTreeMap::new();
    // Open `job` spans: span id -> (job_id, start_seq, resumed)
    let mut open_jobs: BTreeMap<u64, (u64, u64, bool)> = BTreeMap::new();
    let mut job_runs: Vec<JobRun> = Vec::new();
    // All charge events, as (seq, calls).
    let mut charges: Vec<(u64, u64)> = Vec::new();
    // job_id -> (line, used, reason) of each settle.
    let mut settles: BTreeMap<u64, Vec<(usize, u64, String)>> = BTreeMap::new();
    // job_id -> last checkpoint steps counter.
    let mut checkpoint_charged: BTreeMap<u64, u64> = BTreeMap::new();
    let mut breakers: BTreeMap<String, Breaker> = BTreeMap::new();
    // Stats conservation: per conserved key, the running sum of window
    // deltas and the last cumulative total seen.
    let mut last_win: Option<u64> = None;
    let mut stats_delta_sums = vec![0u64; schema::STATS_CONSERVED_KEYS.len()];
    let mut stats_last_totals = vec![None::<u64>; schema::STATS_CONSERVED_KEYS.len()];
    let mut stats_last_line = 0usize;

    for (line, f) in &frames {
        let line = *line;
        let mut fail = |check: &'static str, message: String| {
            audit.violations.push(Violation {
                line,
                check,
                message,
            });
        };

        // -- stream ordering ------------------------------------------
        if let Some(prev) = last_seq {
            if f.seq <= prev {
                fail(
                    "seq-order",
                    format!("seq {} does not increase past {prev}", f.seq),
                );
            }
        }
        last_seq = Some(f.seq);
        if !concurrent {
            if let Some(prev) = last_tick {
                if f.tick < prev {
                    fail(
                        "tick-order",
                        format!("tick {} runs backwards from {prev}", f.tick),
                    );
                }
            }
            last_tick = Some(f.tick);
        }

        // -- vocabulary -----------------------------------------------
        let name_ok = match f.kind {
            EventKind::Event => schema::is_event(f.cat, &f.name),
            EventKind::SpanStart | EventKind::SpanEnd => schema::is_span(f.cat, &f.name),
        };
        if !name_ok {
            fail(
                "vocab",
                format!(
                    "`{}` is not a known {} {} name",
                    f.name,
                    f.cat.as_str(),
                    match f.kind {
                        EventKind::Event => "event",
                        _ => "span",
                    }
                ),
            );
            continue;
        }

        // -- span pairing ---------------------------------------------
        match f.kind {
            EventKind::SpanStart => {
                let Some(id) = f.span else {
                    fail(
                        "span-pairing",
                        format!("span_start `{}` has no span id", f.name),
                    );
                    continue;
                };
                if let Some((opened, _, prev)) = open_spans.get(&id) {
                    let msg = format!("span id {id} reused while `{prev}` (line {opened}) is open");
                    fail("span-pairing", msg);
                    continue;
                }
                open_spans.insert(id, (line, f.cat, f.name.clone()));
                if f.cat == Category::Job && f.name == "job" {
                    let job_id = f.u64_field("job_id").unwrap_or(u64::MAX);
                    let resumed = f.u64_field("resumed").unwrap_or(0) == 1;
                    open_jobs.insert(id, (job_id, f.seq, resumed));
                    // Each job runs on a fresh client: breakers reset.
                    breakers.clear();
                }
            }
            EventKind::SpanEnd => {
                let Some(id) = f.span else {
                    fail(
                        "span-pairing",
                        format!("span_end `{}` has no span id", f.name),
                    );
                    continue;
                };
                match open_spans.remove(&id) {
                    None => fail(
                        "span-pairing",
                        format!("span_end `{}` (id {id}) closes nothing", f.name),
                    ),
                    Some((_, cat, name)) if cat != f.cat || name != f.name => fail(
                        "span-pairing",
                        format!(
                            "span id {id} opened as {}/{name} but closed as {}/{}",
                            cat.as_str(),
                            f.cat.as_str(),
                            f.name
                        ),
                    ),
                    Some(_) => {}
                }
                if let Some((job_id, start_seq, resumed)) = open_jobs.remove(&id) {
                    job_runs.push(JobRun {
                        job_id,
                        start_seq,
                        end_seq: f.seq,
                        end_line: line,
                        charged: f.u64_field("charged").unwrap_or(0),
                        outcome: f.str_field("outcome").unwrap_or("<missing>").to_string(),
                        resumed,
                    });
                }
            }
            EventKind::Event => {
                if f.span.is_some() {
                    fail(
                        "span-pairing",
                        format!("point event `{}` carries a span id", f.name),
                    );
                }
            }
        }

        // -- per-event invariants -------------------------------------
        match (f.cat, f.name.as_str()) {
            (Category::Charge, "charge") => {
                let calls = f.u64_field("calls").unwrap_or(0);
                if calls == 0 {
                    fail(
                        "charge-attribution",
                        "charge without positive `calls`".into(),
                    );
                }
                if f.str_field("endpoint").is_none() {
                    fail("charge-attribution", "charge without `endpoint`".into());
                }
                if f.phase == WalkPhase::Idle {
                    fail(
                        "charge-attribution",
                        format!("{calls} call(s) charged in idle phase — unattributed spend"),
                    );
                }
                match f.str_field("source") {
                    Some("fresh") => audit.fresh_calls += calls,
                    Some("shared") => {}
                    other => fail(
                        "charge-attribution",
                        format!("charge source {other:?} is not `fresh` or `shared`"),
                    ),
                }
                audit.charged_calls += calls;
                charges.push((f.seq, calls));
            }
            (Category::Job, "settle") => {
                let job_id = f.u64_field("job_id").unwrap_or(u64::MAX);
                let used = f.u64_field("used").unwrap_or(0);
                let reason = f.str_field("reason").unwrap_or("<missing>").to_string();
                if !matches!(
                    reason.as_str(),
                    "completed" | "panic" | "send_failed" | "torn_tail" | "requeue_raced"
                ) {
                    fail("settle-once", format!("unknown settle reason `{reason}`"));
                }
                settles
                    .entry(job_id)
                    .or_default()
                    .push((line, used, reason));
            }
            (Category::Checkpoint, "checkpoint") => {
                // `steps` is a per-phase marker and may legally reset at
                // a phase boundary; `charged` (cumulative budget spend
                // at capture) is the counter that must be monotone — a
                // later checkpoint claiming less spend would refund
                // already-consumed budget on resume.
                let job_id = f.u64_field("job_id").unwrap_or(u64::MAX);
                let charged = f.u64_field("charged").unwrap_or(0);
                if let Some(&prev) = checkpoint_charged.get(&job_id) {
                    if charged < prev {
                        fail(
                            "checkpoint-monotone",
                            format!(
                                "job {job_id} checkpoint charged counter fell from {prev} to {charged} — a resume from this checkpoint would re-spend settled budget"
                            ),
                        );
                    }
                }
                checkpoint_charged.insert(job_id, charged);
            }
            (Category::Stats, "window") => {
                audit.stats_windows += 1;
                stats_last_line = line;
                let win = f.u64_field("win").unwrap_or(u64::MAX);
                if let Some(prev) = last_win {
                    if win <= prev {
                        fail(
                            "stats-conservation",
                            format!("window index {win} does not increase past {prev}"),
                        );
                    }
                }
                last_win = Some(win);
                for (i, key) in schema::STATS_CONSERVED_KEYS.iter().enumerate() {
                    let delta = f.u64_field(&format!("d_{key}"));
                    let total = f.u64_field(&format!("t_{key}"));
                    let (Some(delta), Some(total)) = (delta, total) else {
                        fail(
                            "stats-conservation",
                            format!("window is missing its `d_{key}`/`t_{key}` counters"),
                        );
                        continue;
                    };
                    // Telescoping: each window's total is the previous
                    // total plus this window's delta (zero before the
                    // first window — streams start with fresh counters).
                    let expected = stats_last_totals[i].unwrap_or(0).saturating_add(delta);
                    if total != expected {
                        fail(
                            "stats-conservation",
                            format!(
                                "`t_{key}` is {total} but the previous total plus `d_{key}` gives {expected} — the window lost or double-counted traffic"
                            ),
                        );
                    }
                    stats_delta_sums[i] = stats_delta_sums[i].saturating_add(delta);
                    stats_last_totals[i] = Some(total);
                }
            }
            (
                Category::Resilience,
                name @ ("breaker_open" | "breaker_probe" | "breaker_close" | "breaker_fast_fail"),
            ) if !concurrent => {
                let endpoint = f.str_field("endpoint").unwrap_or("<missing>").to_string();
                let state = breakers.entry(endpoint.clone()).or_insert(Breaker::Closed);
                let legal = match (name, *state) {
                    ("breaker_open", Breaker::Closed | Breaker::HalfOpen) => {
                        *state = Breaker::Open;
                        true
                    }
                    ("breaker_probe", Breaker::Open) => {
                        *state = Breaker::HalfOpen;
                        true
                    }
                    ("breaker_close", Breaker::HalfOpen) => {
                        *state = Breaker::Closed;
                        true
                    }
                    ("breaker_fast_fail", Breaker::Open) => true,
                    _ => false,
                };
                if !legal {
                    fail(
                        "breaker-legality",
                        format!("`{name}` on `{endpoint}` is illegal in state {:?}", *state),
                    );
                }
            }
            _ => {}
        }
    }

    // -- end-of-stream checks -----------------------------------------
    for (id, (line, cat, name)) in &open_spans {
        audit.violations.push(Violation {
            line: *line,
            check: "span-pairing",
            message: format!("span {}/{name} (id {id}) never closed", cat.as_str()),
        });
    }

    // Settle exactly once per job id.
    for (job_id, list) in &settles {
        if list.len() > 1 {
            let (line, _, _) = list[1];
            audit.violations.push(Violation {
                line,
                check: "settle-once",
                message: format!(
                    "job {job_id} settled {} times — a reservation can settle at most once",
                    list.len()
                ),
            });
        }
    }

    // Per-job settlement and conservation against the final run of each
    // job id (a crash requeue re-runs the same id in a new span).
    let mut final_runs: BTreeMap<u64, &JobRun> = BTreeMap::new();
    for run in &job_runs {
        let slot = final_runs.entry(run.job_id).or_insert(run);
        if run.end_seq > slot.end_seq {
            *slot = run;
        }
    }
    for (job_id, run) in &final_runs {
        let crashed = run.outcome.starts_with("crash:");
        match settles.get(job_id).map(Vec::as_slice) {
            None | Some([]) if !crashed => audit.violations.push(Violation {
                line: run.end_line,
                check: "settle-once",
                message: format!(
                    "job {job_id} finished (`{}`) but its reservation was never settled — {} charged call(s) dropped from the ledger",
                    run.outcome, run.charged
                ),
            }),
            // A worker-side settle after a crash is illegal — the
            // reservation travels with the requeued job. Supervisor
            // settles (torn tail, shutdown racing the requeue) are the
            // legal exception: the job is parked for journal recovery.
            Some([(line, used, reason), ..])
                if crashed && matches!(reason.as_str(), "completed" | "panic") =>
            {
                audit.violations.push(Violation {
                    line: *line,
                    check: "settle-once",
                    message: format!(
                        "job {job_id} crashed (`{}`) yet settled ({reason}, used {used}) — the reservation must travel with the requeued job",
                        run.outcome
                    ),
                });
            }
            Some([(line, used, reason), ..])
                if matches!(reason.as_str(), "completed" | "panic") && *used != run.charged =>
            {
                audit.violations.push(Violation {
                    line: *line,
                    check: "settle-once",
                    message: format!(
                        "job {job_id} settled {used} call(s) but its span reported {} charged",
                        run.charged
                    ),
                });
            }
            _ => {}
        }
    }

    // Charge conservation inside each non-resumed job span.
    if !concurrent {
        for run in &job_runs {
            if run.resumed || run.outcome.starts_with("crash:") {
                continue;
            }
            let actual: u64 = charges
                .iter()
                .filter(|(seq, _)| *seq > run.start_seq && *seq < run.end_seq)
                .map(|(_, calls)| calls)
                .sum();
            let ok = if run.outcome == "panic" {
                // Nothing could be refunded: the full reservation is
                // treated as consumed, so charged may exceed actual.
                run.charged >= actual
            } else {
                run.charged == actual
            };
            if ok {
                audit.conserved_jobs += 1;
            } else {
                audit.violations.push(Violation {
                    line: run.end_line,
                    check: "job-conservation",
                    message: format!(
                        "job {} reported {} charged call(s) but its span contains {actual} — the meter and the trace disagree",
                        run.job_id, run.charged
                    ),
                });
            }
        }
    }

    // Stats conservation over the whole stream: the deltas of every
    // window must sum to the final cumulative total of the same key.
    for (i, key) in schema::STATS_CONSERVED_KEYS.iter().enumerate() {
        if let Some(total) = stats_last_totals[i] {
            if stats_delta_sums[i] != total {
                audit.violations.push(Violation {
                    line: stats_last_line,
                    check: "stats-conservation",
                    message: format!(
                        "`{key}` window deltas sum to {} but the final cumulative total is {total}",
                        stats_delta_sums[i]
                    ),
                });
            }
        }
    }

    // Coalescing can only ever lower the fresh-fetch count below the
    // charged count; the reverse means calls hit the backend unmetered.
    if audit.fresh_calls > audit.charged_calls {
        audit.violations.push(Violation {
            line: frames.last().map_or(1, |(l, _)| *l),
            check: "charge-attribution",
            message: format!(
                "{} fresh backend call(s) exceed {} charged — unmetered traffic",
                audit.fresh_calls, audit.charged_calls
            ),
        });
    }

    audit.violations.sort_by_key(|v| v.line);
    audit
}

/// Do any two `job` spans overlap in sequence order?
fn job_spans_overlap(frames: &[(usize, Frame)]) -> bool {
    let mut depth = 0u32;
    for (_, f) in frames {
        if f.cat != Category::Job || f.name != "job" {
            continue;
        }
        match f.kind {
            EventKind::SpanStart => {
                depth += 1;
                if depth > 1 {
                    return true;
                }
            }
            EventKind::SpanEnd => depth = depth.saturating_sub(1),
            EventKind::Event => {}
        }
    }
    false
}
