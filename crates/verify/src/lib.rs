//! # ma-verify
//!
//! A trace-replay invariant auditor for the MICROBLOG-ANALYZER stack.
//!
//! The service emits deterministic structured traces (`microblog-obs`
//! JSONL); this crate replays them and asserts the runtime invariants
//! the tests can only sample:
//!
//! * **Charge attribution** — every `charge` event names an endpoint,
//!   carries positive calls, and lands in a real walk phase (never
//!   `idle`); fresh backend fetches never exceed charged calls.
//! * **Job conservation** — a `job` span's reported `charged` equals the
//!   sum of the charge events inside it (`≥` for panics, where the full
//!   reservation is conservatively consumed).
//! * **Settle exactly once** — each job id settles at most once per
//!   process; finished jobs must settle; crashed jobs must not settle
//!   from the worker (the reservation travels with the requeue).
//! * **Checkpoint monotonicity** — per-job checkpoint step counters
//!   never run backwards.
//! * **Breaker legality** — per-endpoint circuit breakers only move
//!   along `Closed → Open → HalfOpen → {Closed, Open}`, and fast-fails
//!   only happen while open.
//! * **Stats conservation** — in live-telemetry streams, every
//!   `stats`/`window` event's cumulative totals telescope with its
//!   per-window deltas, so the deltas over the whole stream sum to the
//!   final totals.
//! * **Stream sanity** — frames decode, seq strictly increases, ticks
//!   never run backwards, the event vocabulary matches
//!   [`microblog_obs::schema`], and spans pair up.
//!
//! The decoder ([`frame`]) is hand-rolled and never panics — property
//! tests feed it arbitrary bytes. CI replays the `trace_demo` artifact
//! through the `ma-verify` binary and fails on any violation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;
pub mod frame;
pub mod report;

pub use checks::{audit, Audit, Violation};
pub use frame::{DecodeError, Frame};
pub use report::{FileAudit, Report};
