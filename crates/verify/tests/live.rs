//! Replay real traces through the auditor: an uninterrupted job (the
//! `trace_demo` shape) and a crash→respawn→resume run must both come out
//! violation-free.

use ma_verify::audit;
use microblog_analyzer::query::parse::parse_query;
use microblog_analyzer::Algorithm;
use microblog_api::ApiProfile;
use microblog_obs::{
    render_jsonl, Category, RecorderConfig, RingRecorder, TelemetryClock, TelemetryMode, Tracer,
};
use microblog_platform::scenario::{twitter_2013, Scale, Scenario};
use microblog_platform::CrashPlan;
use microblog_service::traceview::record_job;
use microblog_service::{JobSpec, Service, ServiceConfig, StatsConfig, StatsHub, StatsSink};
use std::io::Write;
use std::sync::{Arc, Mutex};

const BUDGET: u64 = 4_000;
const SEED: u64 = 7;

fn scenario() -> Scenario {
    twitter_2013(Scale::Tiny, 2014)
}

fn spec(s: &Scenario) -> JobSpec {
    JobSpec::new(
        parse_query(
            "SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'privacy'",
            s.platform.keywords(),
        )
        .expect("query parses"),
        Algorithm::MaTarw { interval: None },
        BUDGET,
        SEED,
    )
}

#[test]
fn uninterrupted_job_trace_is_violation_free() {
    let s = scenario();
    let run = record_job(
        Arc::new(s.platform.clone()),
        ApiProfile::twitter(),
        spec(&s),
        TelemetryMode::Logical,
        RecorderConfig::default(),
    )
    .expect("within quota");
    assert!(run.outcome.output().is_some(), "job estimates");
    let jsonl = render_jsonl(&run.events);
    let a = audit(&jsonl);
    assert!(a.ok(), "violations in live trace: {:#?}", a.violations);
    assert!(a.frames > 100, "trace too small to mean anything");
    assert!(a.charged_calls > 0);
    assert_eq!(a.conserved_jobs, 1, "the one job span must be conserved");
    // The settle emitted by the engine must be part of the stream.
    assert!(
        run.events
            .iter()
            .any(|e| e.category == Category::Job && e.name == "settle"),
        "trace carries the settle event"
    );
}

/// A `Write` handle into a shared buffer, standing in for the stats
/// file `ma-cli serve --stats-out` would write.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn live_stats_stream_conserves_its_counters() {
    let s = scenario();
    let buf = SharedBuf::default();
    let hub = Arc::new(StatsHub::new(StatsConfig::default()));
    let sink = StatsSink::new(Arc::clone(&hub)).with_output(Box::new(buf.clone()));
    let clock = Arc::new(TelemetryClock::new(TelemetryMode::Logical));
    let cfg = ServiceConfig {
        workers: 2,
        telemetry: TelemetryMode::Logical,
        tracer: Tracer::new(Arc::new(sink), clock),
        stats: Some(Arc::clone(&hub)),
        stats_every: 1,
        ..ServiceConfig::default()
    };
    let service = Service::start(Arc::new(s.platform.clone()), ApiProfile::twitter(), cfg)
        .expect("service starts");
    let handles: Vec<_> = (0..3)
        .map(|i| {
            let mut spec = spec(&s);
            spec.seed = SEED + i;
            service.submit(spec).expect("admitted")
        })
        .collect();
    for h in handles {
        h.join().into_result().expect("job completes");
    }
    // Final emission pins the cumulative totals the deltas must reach.
    service.emit_stats();
    service.shutdown();
    let stream = String::from_utf8(buf.0.lock().unwrap().clone()).expect("utf8 stream");
    let a = audit(&stream);
    assert!(
        a.ok(),
        "violations in live stats stream: {:#?}",
        a.violations
    );
    assert!(a.stats_windows >= 2, "expected several windows: {stream}");
    // The stream really carries the convergence gauges, not just counters.
    assert!(stream.contains("\"name\":\"query\""), "{stream}");
    assert!(stream.contains("ci_half"), "{stream}");
}

#[test]
fn pipelined_multichain_trace_is_violation_free() {
    let s = scenario();
    let sink = Arc::new(RingRecorder::new(RecorderConfig::default()));
    let clock = Arc::new(TelemetryClock::new(TelemetryMode::Logical));
    let tracer = Tracer::new(sink.clone(), clock);
    let cfg = ServiceConfig {
        workers: 1,
        pipeline: true,
        chains: 8,
        telemetry: TelemetryMode::Logical,
        tracer,
        ..ServiceConfig::default()
    };
    let service = Service::start(Arc::new(s.platform.clone()), ApiProfile::twitter(), cfg)
        .expect("service starts");
    let mut spec = spec(&s);
    spec.algorithm = Algorithm::MaSrw {
        interval: Some(microblog_platform::Duration::DAY),
    };
    let out = service
        .submit(spec)
        .expect("admitted")
        .join()
        .into_result()
        .expect("pipelined job estimates");
    assert!(out.charged > 0);
    service.shutdown();
    let events = sink.drain();
    let jsonl = render_jsonl(&events);
    let a = audit(&jsonl);
    assert!(a.ok(), "violations in pipelined trace: {:#?}", a.violations);
    assert!(a.charged_calls > 0);
    assert_eq!(a.conserved_jobs, 1, "the one job span must be conserved");
    let settles = events
        .iter()
        .filter(|e| e.category == Category::Job && e.name == "settle")
        .count();
    assert_eq!(settles, 1, "exactly one settle despite prefetch threads");
}

#[test]
fn crash_recovery_trace_is_violation_free() {
    let dir = std::env::temp_dir().join(format!("ma-verify-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let s = scenario();
    let sink = Arc::new(RingRecorder::new(RecorderConfig::default()));
    let clock = Arc::new(TelemetryClock::new(TelemetryMode::Logical));
    let tracer = Tracer::new(sink.clone(), clock);
    let cfg = ServiceConfig {
        workers: 1,
        global_quota: Some(50_000),
        checkpoint_every: 2,
        crash_plan: Some(CrashPlan::kill("pre_settle")),
        journal: Some(dir.clone()),
        telemetry: TelemetryMode::Logical,
        tracer,
        ..ServiceConfig::default()
    };
    let service = Service::start(Arc::new(s.platform.clone()), ApiProfile::twitter(), cfg)
        .expect("journal opens");
    let out = service
        .submit(spec(&s))
        .expect("admitted")
        .join()
        .into_result()
        .expect("resumed run completes");
    assert!(out.charged > 0);
    service.shutdown();
    let events = sink.drain();
    let jsonl = render_jsonl(&events);
    let a = audit(&jsonl);
    assert!(a.ok(), "violations in crash trace: {:#?}", a.violations);
    // The trace must actually contain the crash machinery it certifies:
    // a crashed span, a respawn, a resumed span, exactly one settle.
    assert!(jsonl.contains("crash:pre_settle"), "crashed span recorded");
    assert!(jsonl.contains("\"respawn\""), "supervisor respawn recorded");
    assert!(jsonl.contains("\"resumed\":1"), "requeued run is resumed");
    let settles = events
        .iter()
        .filter(|e| e.category == Category::Job && e.name == "settle")
        .count();
    assert_eq!(settles, 1, "exactly one settle for the whole job");
    let _ = std::fs::remove_dir_all(&dir);
}
