//! Seeded-violation fixtures: each file plants exactly one invariant
//! breach, and the auditor must name it — and nothing else — by its
//! stable check id.

use ma_verify::audit;

/// Asserts the fixture trips `check` and no *other* check.
fn assert_only(input: &str, check: &str) {
    let audit = audit(input);
    assert!(
        audit.violations.iter().any(|v| v.check == check),
        "expected a `{check}` violation, got {:?}",
        audit.violations
    );
    assert!(
        audit.violations.iter().all(|v| v.check == check),
        "unexpected extra violations: {:?}",
        audit.violations
    );
}

#[test]
fn clean_trace_passes() {
    let a = audit(include_str!("fixtures/clean_small.jsonl"));
    assert!(a.ok(), "{:?}", a.violations);
    assert_eq!(a.frames, 16);
    assert_eq!(a.charged_calls, 3);
    assert_eq!(a.fresh_calls, 2);
    assert_eq!(a.conserved_jobs, 1);
    assert!(a.skipped.is_empty());
}

#[test]
fn dropped_charge_is_flagged() {
    // The span reports 2 charged calls but contains 3 — one call fell
    // out of the meter.
    assert_only(
        include_str!("fixtures/violation_dropped_charge.jsonl"),
        "job-conservation",
    );
}

#[test]
fn double_settle_is_flagged() {
    assert_only(
        include_str!("fixtures/violation_double_settle.jsonl"),
        "settle-once",
    );
}

#[test]
fn nonmonotone_checkpoint_is_flagged() {
    assert_only(
        include_str!("fixtures/violation_nonmonotone_checkpoint.jsonl"),
        "checkpoint-monotone",
    );
}

#[test]
fn unattributed_charge_is_flagged() {
    assert_only(
        include_str!("fixtures/violation_unattributed_charge.jsonl"),
        "charge-attribution",
    );
}

#[test]
fn illegal_fast_fail_is_flagged() {
    assert_only(
        include_str!("fixtures/violation_illegal_fast_fail.jsonl"),
        "breaker-legality",
    );
}

#[test]
fn missing_settle_is_flagged() {
    assert_only(
        include_str!("fixtures/violation_missing_settle.jsonl"),
        "settle-once",
    );
}

#[test]
fn broken_stats_conservation_is_flagged() {
    // Window 1 claims 20 cumulative charged calls but the previous
    // total (10) plus its delta (5) only accounts for 15.
    assert_only(
        include_str!("fixtures/violation_stats_conservation.jsonl"),
        "stats-conservation",
    );
}

#[test]
fn seq_regression_and_unknown_vocab_are_flagged() {
    let base = include_str!("fixtures/clean_small.jsonl");
    // Swap two seq numbers.
    let shuffled = base.replace("\"seq\":3", "\"seq\":99");
    let a = audit(&shuffled);
    assert!(
        a.violations.iter().any(|v| v.check == "seq-order"),
        "{:?}",
        a.violations
    );
    // Rename an event outside the closed vocabulary.
    let renamed = base.replace("\"name\":\"step\"", "\"name\":\"stride\"");
    let a = audit(&renamed);
    assert!(
        a.violations.iter().any(|v| v.check == "vocab"),
        "{:?}",
        a.violations
    );
}

#[test]
fn malformed_lines_are_violations_not_crashes() {
    let a = audit("{\"tick\":1\nnot json at all\n");
    assert_eq!(a.frames, 0);
    assert_eq!(a.violations.len(), 2);
    assert!(a.violations.iter().all(|v| v.check == "decode"));
}
