//! Property tests: the frame decoder and the auditor must never panic,
//! whatever bytes they are fed — traces come from files, and a torn
//! write or hostile edit must surface as a violation, not a crash.

use ma_verify::{audit, Frame};
use proptest::prelude::*;

/// Fragments biased toward the JSONL grammar: real keys, enum strings,
/// broken escapes, unclosed brackets.
const FRAGMENTS: [&str; 18] = [
    "{\"tick\":1,",
    "\"seq\":0,",
    "\"kind\":\"event\",",
    "\"kind\":\"span_start\",",
    "\"cat\":\"charge\",",
    "\"cat\":\"job\",",
    "\"name\":\"settle\",",
    "\"span\":null,",
    "\"span\":7,",
    "\"phase\":\"walk\",",
    "\"level\":-3,",
    "\"fields\":{}}",
    "\"fields\":{\"calls\":2}}",
    "{{[[",
    "\\u12",
    "\"esc \\",
    "1e309",
    "é字🦀",
];

fn arb_bytes() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..256)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

fn arb_fragments() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..FRAGMENTS.len(), 0..16)
        .prop_map(|picks| picks.iter().map(|&i| FRAGMENTS[i]).collect::<String>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn frame_decoder_never_panics_on_arbitrary_bytes(line in arb_bytes()) {
        let _ = Frame::decode(&line);
    }

    #[test]
    fn frame_decoder_never_panics_on_grammar_fragments(line in arb_fragments()) {
        let _ = Frame::decode(&line);
    }

    #[test]
    fn auditor_never_panics_on_arbitrary_streams(
        lines in proptest::collection::vec(arb_fragments(), 0..8)
    ) {
        let _ = audit(&lines.join("\n"));
    }

    #[test]
    fn truncating_a_valid_line_errors_cleanly(cut in 0usize..200) {
        let line = r#"{"tick":42,"seq":7,"kind":"event","cat":"charge","name":"charge","span":null,"phase":"walk","level":2,"fields":{"endpoint":"search","calls":3,"source":"fresh"}}"#;
        let cut = cut.min(line.len());
        if line.is_char_boundary(cut) {
            let _ = Frame::decode(&line[..cut]);
        }
    }
}
