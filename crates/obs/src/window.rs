//! Rotating-window time series on the logical telemetry clock.
//!
//! Cumulative counters answer "how much since boot"; an operator
//! watching `ma-cli serve` needs "how much *lately*". These types slice
//! the [`crate::TelemetryClock`] tick stream into fixed-width windows
//! with bounded retention, so rates, gauges and latency percentiles can
//! be read per-window without unbounded memory. Everything here is a
//! pure function of the `(tick, value)` observation stream — no wall
//! time, no RNG — so two identical runs under the logical clock produce
//! byte-identical window histories, and the stats stream built on top
//! is golden-testable just like traces are (DESIGN.md §14).

use std::collections::VecDeque;

use crate::histogram::{Log2Histogram, BUCKETS};

/// Default window width in telemetry-clock ticks.
pub const DEFAULT_WINDOW_TICKS: u64 = 1024;

/// Default number of windows retained for history/sparklines.
pub const DEFAULT_RETAIN: usize = 16;

/// Aggregates of one window of observations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Window number: `tick / width`.
    pub index: u64,
    /// Observations recorded in this window.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Smallest observed value (0 when the window is empty).
    pub min: u64,
    /// Largest observed value (0 when the window is empty).
    pub max: u64,
    /// Most recent observed value — the gauge reading of the window.
    pub last: u64,
}

impl WindowStats {
    fn empty(index: u64) -> Self {
        WindowStats {
            index,
            ..WindowStats::default()
        }
    }

    fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.last = value;
    }
}

/// A bounded series of fixed-width windows over `(tick, value)`
/// observations; the storage behind rate and gauge telemetry.
///
/// Retained windows are contiguous in index (gaps are filled with empty
/// windows), the oldest are evicted once `retain` is exceeded, and an
/// observation older than the oldest retained window is dropped — the
/// series never rewrites history it already published.
#[derive(Clone, Debug)]
pub struct WindowedSeries {
    width: u64,
    retain: usize,
    windows: VecDeque<WindowStats>,
}

impl WindowedSeries {
    /// A series of `retain` windows, each `width` ticks wide (both
    /// clamped to at least 1).
    pub fn new(width: u64, retain: usize) -> Self {
        WindowedSeries {
            width: width.max(1),
            retain: retain.max(1),
            windows: VecDeque::new(),
        }
    }

    /// Window width in ticks.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Maximum windows retained.
    pub fn retain(&self) -> usize {
        self.retain
    }

    /// Records one observation stamped at `tick`.
    pub fn record(&mut self, tick: u64, value: u64) {
        let index = tick / self.width;
        if let Some(offset) = self.roll_to(index) {
            if let Some(window) = self.windows.get_mut(offset) {
                window.observe(value);
            }
        }
    }

    /// Ensures a window for `index` exists and returns its queue offset;
    /// `None` when `index` predates the oldest retained window.
    fn roll_to(&mut self, index: u64) -> Option<usize> {
        let first_keep = index.saturating_sub(self.retain as u64 - 1);
        match self.windows.back() {
            None => self.windows.push_back(WindowStats::empty(index)),
            Some(back) if index > back.index => {
                let mut next = back.index + 1;
                if next < first_keep {
                    // The gap alone exceeds retention: everything held
                    // falls out of the horizon.
                    self.windows.clear();
                    next = first_keep;
                }
                while next <= index {
                    self.windows.push_back(WindowStats::empty(next));
                    next += 1;
                }
            }
            Some(_) => {}
        }
        while self.windows.len() > self.retain {
            self.windows.pop_front();
        }
        let front = self.windows.front()?.index;
        if index < front {
            return None;
        }
        Some((index - front) as usize)
    }

    /// The retained windows, oldest first.
    pub fn snapshot(&self) -> Vec<WindowStats> {
        self.windows.iter().copied().collect()
    }

    /// The newest retained window, if any.
    pub fn latest(&self) -> Option<WindowStats> {
        self.windows.back().copied()
    }

    /// Total observations across retained windows.
    pub fn retained_count(&self) -> u64 {
        self.windows.iter().map(|w| w.count).sum()
    }

    /// Total observed value across retained windows (saturating).
    pub fn retained_sum(&self) -> u64 {
        self.windows
            .iter()
            .fold(0u64, |acc, w| acc.saturating_add(w.sum))
    }
}

/// A rotating-window [`Log2Histogram`]: per-window bucket counts with
/// bounded retention, plus percentile extraction over the retained
/// horizon. Same rotation semantics as [`WindowedSeries`].
#[derive(Clone, Debug)]
pub struct WindowedHistogram {
    width: u64,
    retain: usize,
    windows: VecDeque<(u64, [u64; BUCKETS])>,
}

impl WindowedHistogram {
    /// A histogram of `retain` windows, each `width` ticks wide.
    pub fn new(width: u64, retain: usize) -> Self {
        WindowedHistogram {
            width: width.max(1),
            retain: retain.max(1),
            windows: VecDeque::new(),
        }
    }

    /// Window width in ticks.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Records one observation stamped at `tick`.
    pub fn record(&mut self, tick: u64, value: u64) {
        let index = tick / self.width;
        let first_keep = index.saturating_sub(self.retain as u64 - 1);
        match self.windows.back() {
            None => self.windows.push_back((index, [0; BUCKETS])),
            Some(&(back, _)) if index > back => {
                let mut next = back + 1;
                if next < first_keep {
                    self.windows.clear();
                    next = first_keep;
                }
                while next <= index {
                    self.windows.push_back((next, [0; BUCKETS]));
                    next += 1;
                }
            }
            Some(_) => {}
        }
        while self.windows.len() > self.retain {
            self.windows.pop_front();
        }
        let Some(&(front, _)) = self.windows.front() else {
            return;
        };
        if index < front {
            return;
        }
        let offset = (index - front) as usize;
        if let Some((_, counts)) = self.windows.get_mut(offset) {
            // ma-lint: allow(panic-safety) reason="bucket_index is bounded to BUCKETS-1 by construction"
            counts[Log2Histogram::bucket_index(value)] += 1;
        }
    }

    /// The retained `(window index, bucket counts)` pairs, oldest first.
    pub fn snapshot(&self) -> Vec<(u64, [u64; BUCKETS])> {
        self.windows.iter().copied().collect()
    }

    /// Bucket counts merged across the retained horizon.
    pub fn merged(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (_, counts) in &self.windows {
            for (slot, n) in out.iter_mut().zip(counts.iter()) {
                *slot = slot.saturating_add(*n);
            }
        }
        out
    }

    /// Observations across the retained horizon.
    pub fn count(&self) -> u64 {
        self.merged().iter().sum()
    }

    /// Per-window observation counts, oldest first — the sparkline feed.
    pub fn window_counts(&self) -> Vec<u64> {
        self.windows
            .iter()
            .map(|(_, counts)| counts.iter().sum())
            .collect()
    }

    /// Quantile `q` over the retained horizon; see [`percentile`].
    pub fn percentile(&self, q: f64) -> u64 {
        percentile(&self.merged(), q)
    }

    /// Largest retained observation's bucket upper bound (0 when empty).
    pub fn max(&self) -> u64 {
        let merged = self.merged();
        merged
            .iter()
            .rposition(|&n| n > 0)
            .map_or(0, |i| Log2Histogram::bucket_bounds(i).1)
    }
}

/// Quantile extraction from log-linear bucket counts: the bucket holding
/// the rank-`⌈q·n⌉` observation is located, then the reported value is
/// interpolated linearly between the bucket's bounds by the rank's
/// position among the bucket's occupants (a lone occupant reports the
/// upper bound, keeping the estimate conservative). Deterministic pure
/// integer arithmetic; 0 when the histogram is empty.
pub fn percentile(counts: &[u64; BUCKETS], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for (i, &n) in counts.iter().enumerate() {
        if n > 0 && cum + n >= rank {
            let (lo, hi) = Log2Histogram::bucket_bounds(i);
            let into = rank - cum; // 1..=n
            let span = (hi - lo) as u128;
            return lo + (span * into as u128 / n as u128) as u64;
        }
        cum += n;
    }
    Log2Histogram::bucket_bounds(BUCKETS - 1).1
}

const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders per-window values as a fixed-height sparkline, scaled to the
/// series maximum (zeros render as the lowest bar; an empty or all-zero
/// series renders as all-lowest). Pure text, deterministic.
pub fn sparkline(values: &[u64]) -> String {
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if max == 0 || v == 0 {
                SPARK_LEVELS[0] // ma-lint: allow(panic-safety) reason="SPARK_LEVELS is a non-empty const table"
            } else {
                // Map (0, max] onto the 8 levels; v == max hits the top.
                let idx = ((v as u128 * SPARK_LEVELS.len() as u128).div_ceil(max as u128) as usize)
                    .clamp(1, SPARK_LEVELS.len());
                SPARK_LEVELS[idx - 1] // ma-lint: allow(panic-safety) reason="idx clamped to 1..=SPARK_LEVELS.len()"
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_rotates_and_fills_gaps() {
        let mut s = WindowedSeries::new(10, 3);
        s.record(5, 2);
        s.record(7, 4);
        s.record(25, 1); // window 2; window 1 is an empty gap-filler
        let snap = s.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(
            snap.iter().map(|w| w.index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(snap[0].count, 2);
        assert_eq!(snap[0].sum, 6);
        assert_eq!(snap[0].min, 2);
        assert_eq!(snap[0].max, 4);
        assert_eq!(snap[0].last, 4);
        assert_eq!(snap[1].count, 0);
        assert_eq!(snap[2].count, 1);
        // Window 3 evicts window 0.
        s.record(30, 9);
        let snap = s.snapshot();
        assert_eq!(
            snap.iter().map(|w| w.index).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(s.retained_count(), 2);
        assert_eq!(s.retained_sum(), 10);
    }

    #[test]
    fn series_drops_observations_past_the_horizon() {
        let mut s = WindowedSeries::new(10, 2);
        s.record(95, 1); // window 9
        s.record(5, 7); // window 0 — long evicted
        assert_eq!(s.retained_count(), 1);
        assert_eq!(s.latest().unwrap().index, 9);
    }

    #[test]
    fn series_survives_a_gap_wider_than_retention() {
        let mut s = WindowedSeries::new(10, 3);
        s.record(0, 1);
        s.record(1_000, 2); // window 100: every held window falls out
        let snap = s.snapshot();
        assert_eq!(
            snap.iter().map(|w| w.index).collect::<Vec<_>>(),
            vec![98, 99, 100]
        );
        assert_eq!(s.retained_count(), 1);
    }

    #[test]
    fn series_is_deterministic() {
        let run = || {
            let mut s = WindowedSeries::new(8, 4);
            for (t, v) in [(1u64, 3u64), (9, 1), (17, 4), (33, 1), (34, 5)] {
                s.record(t, v);
            }
            s.snapshot()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn histogram_windows_merge_and_rank() {
        let mut h = WindowedHistogram::new(100, 4);
        for v in [1u64, 1, 3, 200] {
            h.record(10, v);
        }
        h.record(150, 1000); // second window
        assert_eq!(h.count(), 5);
        assert_eq!(h.window_counts(), vec![4, 1]);
        let merged = h.merged();
        assert_eq!(merged[1], 2);
        assert_eq!(merged[3], 1);
        assert_eq!(merged[Log2Histogram::bucket_index(200)], 1);
        assert_eq!(merged[Log2Histogram::bucket_index(1000)], 1);
        // Ranks: p50 is the 3rd of 5 → the singleton bucket for 3.
        assert_eq!(h.percentile(0.5), 3);
        // p90 is the 5th of 5 → 1000's bucket [896, 1023], lone occupant
        // → upper bound.
        assert_eq!(h.percentile(0.9), 1023);
        assert_eq!(h.max(), 1023);
    }

    #[test]
    fn histogram_eviction_forgets_old_tails() {
        let mut h = WindowedHistogram::new(10, 2);
        h.record(5, 1 << 20); // huge value in window 0
        h.record(25, 2); // window 2 evicts window 0
        h.record(35, 2);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 2, "the 2^20 outlier left the horizon");
    }

    #[test]
    fn percentile_edge_cases() {
        let empty = [0u64; BUCKETS];
        assert_eq!(percentile(&empty, 0.99), 0);
        let mut zeros = [0u64; BUCKETS];
        zeros[0] = 10;
        assert_eq!(percentile(&zeros, 0.5), 0);
        let mut one = [0u64; BUCKETS];
        one[BUCKETS - 1] = 1;
        assert_eq!(percentile(&one, 0.5), u64::MAX);
    }

    #[test]
    fn percentiles_resolve_a_sub_ms_spread() {
        // Regression for BENCH_5.json's queue_wait_us p50 == p95 == 63:
        // the whole distribution sat inside the [32, 63] octave and
        // power-of-two buckets flattened it. With log-linear sub-buckets
        // and interpolation the spread must be visible again.
        let mut h = WindowedHistogram::new(100, 4);
        for v in 32..64u64 {
            h.record(1, v);
        }
        let p50 = h.percentile(0.5);
        let p95 = h.percentile(0.95);
        assert!(p50 < p95, "p50={p50} p95={p95}");
        assert!((40..=50).contains(&p50), "p50={p50}");
        assert!(p95 >= 56, "p95={p95}");
    }

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        let line = sparkline(&[1, 4, 8]);
        assert_eq!(line.chars().count(), 3);
        assert_eq!(line.chars().last(), Some('█'));
        assert_eq!(sparkline(&[5]), "█", "a lone value is its own maximum");
        assert_eq!(sparkline(&[1, 4, 8]), sparkline(&[1, 4, 8]));
    }
}
