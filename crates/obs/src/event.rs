//! The trace record: categories, kinds, walk phases and typed fields.
//!
//! A [`TraceEvent`] is deliberately flat — a timestamp, a global sequence
//! number, a small closed set of categories, a `&'static str` name and a
//! short list of typed fields — so that serialization is a fixed-order
//! byte-for-byte deterministic rendering (see [`crate::export`]) and the
//! hot-path cost of recording one is a handful of copies.

/// What part of the stack an event describes. Categories shard the
/// recorder and carry independent sampling rates: walk steps are
/// high-volume and may be downsampled while charge events are always
/// kept, because cost attribution must account for every charged call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// Walker transitions: steps, MH accept/reject, samples, restarts,
    /// burn-in boundaries, level moves.
    Walk,
    /// Budget charges in the metered client stack (fresh calls and
    /// logically-charged shared hits).
    Charge,
    /// Cache activity: local/shared hits, misses, evictions.
    Cache,
    /// Resilience: retries, backoff, breaker transitions, fast-fails,
    /// waste-meter charges, give-ups.
    Resilience,
    /// Job lifecycle spans in the service engine.
    Job,
    /// Diagnostics: running Geweke z-scores, accumulator snapshots.
    Diag,
    /// Miss coalescing: in-flight leader elections, waiter joins,
    /// aborted flights handed back for re-election.
    Coalesce,
    /// Walker checkpoints: cadence emissions and journal appends.
    Checkpoint,
    /// Crash recovery: journal replay, worker respawns, job requeues.
    Recovery,
    /// Live telemetry: windowed counter deltas, operational gauges and
    /// per-query convergence readings emitted on a cadence.
    Stats,
    /// Fetch scheduler: prefetch announcements from the logical walk
    /// thread and checkpoint-drain barriers. Only deterministic
    /// logical-thread points emit here — worker-pool completions feed
    /// gauges, not events, so traces stay byte-identical.
    Sched,
}

impl Category {
    /// Number of categories; sizes per-category arrays.
    pub const COUNT: usize = 11;

    /// All categories, in shard/index order.
    pub const ALL: [Category; Category::COUNT] = [
        Category::Walk,
        Category::Charge,
        Category::Cache,
        Category::Resilience,
        Category::Job,
        Category::Diag,
        Category::Coalesce,
        Category::Checkpoint,
        Category::Recovery,
        Category::Stats,
        Category::Sched,
    ];

    /// Stable shard index for this category.
    pub fn index(self) -> usize {
        match self {
            Category::Walk => 0,
            Category::Charge => 1,
            Category::Cache => 2,
            Category::Resilience => 3,
            Category::Job => 4,
            Category::Diag => 5,
            Category::Coalesce => 6,
            Category::Checkpoint => 7,
            Category::Recovery => 8,
            Category::Stats => 9,
            Category::Sched => 10,
        }
    }

    /// Short lowercase name used in JSON exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Walk => "walk",
            Category::Charge => "charge",
            Category::Cache => "cache",
            Category::Resilience => "resilience",
            Category::Job => "job",
            Category::Diag => "diag",
            Category::Coalesce => "coalesce",
            Category::Checkpoint => "checkpoint",
            Category::Recovery => "recovery",
            Category::Stats => "stats",
            Category::Sched => "sched",
        }
    }
}

/// Whether a record is a point event or one end of a span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A point-in-time event.
    Event,
    /// The opening edge of a span; carries the span id.
    SpanStart,
    /// The closing edge of a span; carries the same span id.
    SpanEnd,
}

impl EventKind {
    /// Name used in JSON exports.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Event => "event",
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
        }
    }
}

/// The walk phase a charge or event is attributed to. Walkers publish
/// their current phase on the [`crate::Tracer`]; the client stack stamps
/// it onto every charge it records, which is how `ma-cli trace --summary`
/// builds its per-phase cost tree without the client knowing anything
/// about walk structure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum WalkPhase {
    /// No walk phase published (engine bookkeeping, setup, teardown).
    #[default]
    Idle,
    /// Fetching seed users through the SEARCH API.
    Seed,
    /// Pilot walks used to pick the MA-TARW time interval.
    Pilot,
    /// Burn-in steps of a random walk (samples discarded).
    BurnIn,
    /// Post-burn-in sampling steps of SRW / MHRW / M&R walks.
    Walk,
    /// MA-TARW bottom-to-top path construction.
    Up,
    /// MA-TARW top-to-bottom path construction.
    Down,
    /// MA-TARW visit-probability estimation (the Eq. (6) recursion).
    Probability,
}

impl WalkPhase {
    /// All phases, in display order.
    pub const ALL: [WalkPhase; 8] = [
        WalkPhase::Idle,
        WalkPhase::Seed,
        WalkPhase::Pilot,
        WalkPhase::BurnIn,
        WalkPhase::Walk,
        WalkPhase::Up,
        WalkPhase::Down,
        WalkPhase::Probability,
    ];

    /// Short lowercase name used in JSON exports.
    pub fn as_str(self) -> &'static str {
        match self {
            WalkPhase::Idle => "idle",
            WalkPhase::Seed => "seed",
            WalkPhase::Pilot => "pilot",
            WalkPhase::BurnIn => "burn_in",
            WalkPhase::Walk => "walk",
            WalkPhase::Up => "up",
            WalkPhase::Down => "down",
            WalkPhase::Probability => "probability",
        }
    }

    /// Stable index into [`WalkPhase::ALL`].
    pub fn index(self) -> usize {
        match self {
            WalkPhase::Idle => 0,
            WalkPhase::Seed => 1,
            WalkPhase::Pilot => 2,
            WalkPhase::BurnIn => 3,
            WalkPhase::Walk => 4,
            WalkPhase::Up => 5,
            WalkPhase::Down => 6,
            WalkPhase::Probability => 7,
        }
    }
}

/// A typed field value. Floats are rendered with Rust's shortest
/// round-trip formatting, which is deterministic across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// An unsigned counter or identifier.
    U64(u64),
    /// A signed quantity.
    I64(i64),
    /// A measurement (probabilities, z-scores).
    F64(f64),
    /// A short label (endpoint or algorithm names).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One trace record. Produced by [`crate::Tracer`], buffered by a
/// [`crate::TraceSink`], exported by [`crate::export`].
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Timestamp in telemetry-clock microseconds (logical ticks by
    /// default — see [`crate::TelemetryClock`]).
    pub tick: u64,
    /// Global sequence number; total order over one tracer's output.
    pub seq: u64,
    /// Point event or span edge.
    pub kind: EventKind,
    /// Which part of the stack emitted it.
    pub category: Category,
    /// Event name, from a closed per-category vocabulary (see
    /// DESIGN.md §10).
    pub name: &'static str,
    /// Span id for span edges; `None` for point events outside a span.
    pub span: Option<u64>,
    /// Ambient walk phase at record time.
    pub phase: WalkPhase,
    /// Ambient level-graph level at record time, if the walker published
    /// one (MA-TARW only).
    pub level: Option<i64>,
    /// Typed payload fields, in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl TraceEvent {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v)
    }

    /// Looks up a `U64` field by name.
    pub fn u64_field(&self, name: &str) -> Option<u64> {
        match self.field(name) {
            Some(FieldValue::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Looks up an `F64` field by name.
    pub fn f64_field(&self, name: &str) -> Option<f64> {
        match self.field(name) {
            Some(FieldValue::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a `Str` field by name.
    pub fn str_field(&self, name: &str) -> Option<&str> {
        match self.field(name) {
            Some(FieldValue::Str(v)) => Some(v.as_str()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_index_matches_all_order() {
        for (i, c) in Category::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn phase_index_matches_all_order() {
        for (i, p) in WalkPhase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn field_lookup_by_name_and_type() {
        let ev = TraceEvent {
            tick: 1,
            seq: 0,
            kind: EventKind::Event,
            category: Category::Charge,
            name: "charge",
            span: None,
            phase: WalkPhase::Walk,
            level: None,
            fields: vec![
                ("calls", FieldValue::U64(3)),
                ("endpoint", FieldValue::from("search")),
                ("z", FieldValue::F64(0.25)),
            ],
        };
        assert_eq!(ev.u64_field("calls"), Some(3));
        assert_eq!(ev.str_field("endpoint"), Some("search"));
        assert_eq!(ev.f64_field("z"), Some(0.25));
        assert_eq!(ev.u64_field("missing"), None);
        assert_eq!(ev.u64_field("endpoint"), None);
    }
}
