//! The telemetry time source shared by trace events and job latency.
//!
//! Estimation itself runs entirely on the simulated platform clock
//! (`microblog_platform::Timestamp`), but the stack also reports how
//! long jobs queued and executed, and timestamps every trace event —
//! operator telemetry that has nothing to do with estimates. Reading the
//! machine clock for it would make `queue_wait`/`exec` readings (and any
//! recorded trace) nondeterministic, so the default
//! [`TelemetryMode::Logical`] clock is a monotone atomic counter: every
//! observation advances it by one microsecond-sized tick. Sequential
//! submit-then-join workloads and single-threaded trace recordings replay
//! identically; pipelined batches can still shift a reading by a tick
//! when the submitter races a worker for the counter, but never by
//! machine-time noise. Operators who want real latencies opt into
//! [`TelemetryMode::Wall`], the one place in the tracing stack allowed to
//! touch `std::time::Instant`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Which time source feeds trace timestamps and job latency telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TelemetryMode {
    /// A logical tick counter: deterministic, advances one tick per
    /// observation. The default.
    #[default]
    Logical,
    /// The machine clock: real latencies, nondeterministic.
    Wall,
}

enum Inner {
    Logical(AtomicU64),
    Wall(Instant),
}

/// A monotone clock for trace timestamps and job latency telemetry; see
/// [`TelemetryMode`]. Readings are instants expressed as a [`Duration`]
/// since the clock was created, so `later.saturating_sub(earlier)` is an
/// elapsed time.
pub struct TelemetryClock {
    inner: Inner,
}

impl TelemetryClock {
    /// A clock in the given mode.
    pub fn new(mode: TelemetryMode) -> Self {
        match mode {
            TelemetryMode::Logical => TelemetryClock {
                inner: Inner::Logical(AtomicU64::new(0)),
            },
            TelemetryMode::Wall => TelemetryClock {
                // ma-lint: allow(wall-clock) reason="operator-facing latency telemetry behind TelemetryMode::Wall; never feeds estimates"
                inner: Inner::Wall(Instant::now()),
            },
        }
    }

    /// The mode this clock was built in.
    pub fn mode(&self) -> TelemetryMode {
        match self.inner {
            Inner::Logical(_) => TelemetryMode::Logical,
            Inner::Wall(_) => TelemetryMode::Wall,
        }
    }

    /// The current reading, as time since the clock was created. In
    /// logical mode each call advances the clock by one tick (1µs), so
    /// consecutive readings are strictly increasing.
    pub fn now(&self) -> Duration {
        match &self.inner {
            Inner::Logical(ticks) => {
                Duration::from_micros(ticks.fetch_add(1, Ordering::Relaxed) + 1)
            }
            Inner::Wall(start) => start.elapsed(),
        }
    }
}

impl std::fmt::Debug for TelemetryClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryClock")
            .field("mode", &self.mode())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_readings_strictly_increase() {
        let clock = TelemetryClock::new(TelemetryMode::Logical);
        let a = clock.now();
        let b = clock.now();
        let c = clock.now();
        assert!(a < b && b < c);
        assert_eq!(b.saturating_sub(a), Duration::from_micros(1));
    }

    #[test]
    fn logical_is_reproducible_across_clocks() {
        let readings = |n: usize| {
            let clock = TelemetryClock::new(TelemetryMode::Logical);
            (0..n).map(|_| clock.now()).collect::<Vec<_>>()
        };
        assert_eq!(readings(5), readings(5));
    }

    #[test]
    fn wall_mode_reports_itself() {
        let clock = TelemetryClock::new(TelemetryMode::Wall);
        assert_eq!(clock.mode(), TelemetryMode::Wall);
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }
}
