//! Turning recorded [`WalkTrace`]s into trace events.
//!
//! The graph crate's walk functions return a [`WalkTrace`] — a vector of
//! [`Visit`]s — rather than emitting events step by step; pilot walks in
//! the interval selector use them. This module replays such a trace into
//! a [`Tracer`] so offline walks appear in the same event stream as live
//! instrumented ones, without duplicating visit bookkeeping.

use microblog_graph::{Visit, WalkTrace};

use crate::event::{Category, FieldValue};
use crate::tracer::Tracer;

/// Emits one `visit` event per trace entry, in step order, under the
/// tracer's current phase/level context. The `step` field is the
/// position in the trace (0 is the start node).
pub fn emit_walk_trace(tracer: &Tracer, trace: &WalkTrace) {
    if !tracer.is_enabled() {
        return;
    }
    for (step, visit) in trace.visits.iter().enumerate() {
        emit_visit(tracer, step, visit);
    }
}

/// Emits a single `visit` event.
pub fn emit_visit(tracer: &Tracer, step: usize, visit: &Visit) {
    tracer.emit(
        Category::Walk,
        "visit",
        &[
            ("step", FieldValue::U64(step as u64)),
            ("node", FieldValue::U64(u64::from(visit.node))),
            ("degree", FieldValue::U64(visit.degree as u64)),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{TelemetryClock, TelemetryMode};
    use crate::event::WalkPhase;
    use crate::recorder::RingRecorder;
    use std::sync::Arc;

    #[test]
    fn replays_every_visit_in_order() {
        let recorder = Arc::new(RingRecorder::default());
        let clock = Arc::new(TelemetryClock::new(TelemetryMode::Logical));
        let tracer = Tracer::new(recorder.clone(), clock);
        tracer.set_phase(WalkPhase::Pilot);

        let trace = WalkTrace {
            visits: vec![Visit { node: 4, degree: 2 }, Visit { node: 9, degree: 3 }],
        };
        emit_walk_trace(&tracer, &trace);

        let events = recorder.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].u64_field("step"), Some(0));
        assert_eq!(events[0].u64_field("node"), Some(4));
        assert_eq!(events[1].u64_field("degree"), Some(3));
        assert!(events.iter().all(|e| e.phase == WalkPhase::Pilot));
    }

    #[test]
    fn disabled_tracer_short_circuits() {
        let trace = WalkTrace {
            visits: vec![Visit { node: 1, degree: 1 }],
        };
        emit_walk_trace(&Tracer::disabled(), &trace);
    }
}
