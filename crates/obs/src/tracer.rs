//! The instrumentation handle: cheap to clone, free when disabled.
//!
//! A [`Tracer`] is an `Option<Arc<…>>` around a sink, a clock and the
//! ambient attribution state. Disabled tracers ([`Tracer::disabled`],
//! also `Default`) are a `None` — every operation is a branch and a
//! return, so instrumented hot loops cost nothing when tracing is off.
//!
//! Attribution works by *ambient context*: a walker publishes its
//! current [`WalkPhase`] (and, for MA-TARW, its level) on the tracer, and
//! every event recorded afterwards — including charge events recorded
//! layers below in the metered client stack — carries that phase. The
//! client stack never needs to know what a burn-in is, yet `ma-cli trace
//! --summary` can still say "62% of this job's calls were spent in
//! burn-in".

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::clock::TelemetryClock;
use crate::event::{Category, EventKind, FieldValue, TraceEvent, WalkPhase};
use crate::sink::TraceSink;

/// Sentinel for "no level published" in the ambient level cell. Real
/// levels are `level_of_time` quotients, which can be large (an
/// unbounded query window puts the origin at a far-past sentinel) but
/// never reach `i64::MIN`.
const NO_LEVEL: i64 = i64::MIN;

struct TracerCore {
    sink: Arc<dyn TraceSink>,
    clock: Arc<TelemetryClock>,
    seq: AtomicU64,
    next_span: AtomicU64,
    phase: AtomicUsize,
    level: AtomicI64,
}

/// A handle for emitting trace events; see the module docs. Clones share
/// the same sink, clock, sequence counter and ambient phase/level.
#[derive(Clone, Default)]
pub struct Tracer {
    core: Option<Arc<TracerCore>>,
}

impl Tracer {
    /// A tracer that records nothing; every operation is a no-op.
    pub fn disabled() -> Self {
        Tracer { core: None }
    }

    /// A tracer writing to `sink`, timestamping with `clock`.
    pub fn new(sink: Arc<dyn TraceSink>, clock: Arc<TelemetryClock>) -> Self {
        Tracer {
            core: Some(Arc::new(TracerCore {
                sink,
                clock,
                seq: AtomicU64::new(0),
                next_span: AtomicU64::new(1),
                phase: AtomicUsize::new(WalkPhase::Idle.index()),
                level: AtomicI64::new(NO_LEVEL),
            })),
        }
    }

    /// Whether events are recorded at all. Instrumentation with a
    /// nontrivial setup cost (string formatting, trace conversion)
    /// should check this first; plain numeric emits don't need to.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// The clock timestamps come from, when enabled. The service engine
    /// reuses it for queue/exec telemetry so traces and metrics share
    /// one tick stream.
    pub fn clock(&self) -> Option<&Arc<TelemetryClock>> {
        self.core.as_ref().map(|c| &c.clock)
    }

    /// Publishes the ambient walk phase attributed to subsequent events.
    pub fn set_phase(&self, phase: WalkPhase) {
        if let Some(core) = &self.core {
            core.phase.store(phase.index(), Ordering::Relaxed);
        }
    }

    /// The currently-published walk phase.
    pub fn phase(&self) -> WalkPhase {
        match &self.core {
            Some(core) => {
                let idx = core.phase.load(Ordering::Relaxed);
                WalkPhase::ALL.get(idx).copied().unwrap_or_default()
            }
            None => WalkPhase::Idle,
        }
    }

    /// Publishes (or clears) the ambient MA-TARW level.
    pub fn set_level(&self, level: Option<i64>) {
        if let Some(core) = &self.core {
            core.level
                .store(level.unwrap_or(NO_LEVEL), Ordering::Relaxed);
        }
    }

    /// Records a point event in the current phase/level context.
    pub fn emit(
        &self,
        category: Category,
        name: &'static str,
        fields: &[(&'static str, FieldValue)],
    ) {
        self.push(EventKind::Event, category, name, None, fields);
    }

    /// Opens a span and returns its id (0 when disabled; passing 0 back
    /// to [`Tracer::span_end`] is a harmless no-op-tagged edge).
    pub fn span_start(
        &self,
        category: Category,
        name: &'static str,
        fields: &[(&'static str, FieldValue)],
    ) -> u64 {
        let Some(core) = &self.core else { return 0 };
        let id = core.next_span.fetch_add(1, Ordering::Relaxed);
        self.push(EventKind::SpanStart, category, name, Some(id), fields);
        id
    }

    /// Closes the span opened under `id`.
    pub fn span_end(
        &self,
        category: Category,
        name: &'static str,
        id: u64,
        fields: &[(&'static str, FieldValue)],
    ) {
        self.push(EventKind::SpanEnd, category, name, Some(id), fields);
    }

    fn push(
        &self,
        kind: EventKind,
        category: Category,
        name: &'static str,
        span: Option<u64>,
        fields: &[(&'static str, FieldValue)],
    ) {
        let Some(core) = &self.core else { return };
        let level_raw = core.level.load(Ordering::Relaxed);
        let event = TraceEvent {
            tick: core.clock.now().as_micros() as u64,
            seq: core.seq.fetch_add(1, Ordering::Relaxed),
            kind,
            category,
            name,
            span,
            phase: self.phase(),
            level: (level_raw != NO_LEVEL).then_some(level_raw),
            fields: fields.to_vec(),
        };
        core.sink.record(event);
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("phase", &self.phase())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{TelemetryClock, TelemetryMode};
    use crate::recorder::RingRecorder;

    fn traced() -> (Tracer, Arc<RingRecorder>) {
        let recorder = Arc::new(RingRecorder::default());
        let clock = Arc::new(TelemetryClock::new(TelemetryMode::Logical));
        (Tracer::new(recorder.clone(), clock), recorder)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        tracer.set_phase(WalkPhase::Walk);
        assert_eq!(tracer.phase(), WalkPhase::Idle);
        tracer.emit(Category::Walk, "step", &[]);
        assert_eq!(tracer.span_start(Category::Job, "job", &[]), 0);
    }

    #[test]
    fn events_carry_ambient_phase_and_level() {
        let (tracer, recorder) = traced();
        tracer.emit(Category::Charge, "charge", &[("calls", FieldValue::U64(1))]);
        tracer.set_phase(WalkPhase::Up);
        tracer.set_level(Some(3));
        tracer.emit(Category::Charge, "charge", &[("calls", FieldValue::U64(2))]);
        tracer.set_level(None);
        tracer.emit(Category::Charge, "charge", &[("calls", FieldValue::U64(3))]);

        let events = recorder.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].phase, WalkPhase::Idle);
        assert_eq!(events[0].level, None);
        assert_eq!(events[1].phase, WalkPhase::Up);
        assert_eq!(events[1].level, Some(3));
        assert_eq!(events[2].level, None);
    }

    #[test]
    fn ticks_and_seqs_strictly_increase() {
        let (tracer, recorder) = traced();
        for _ in 0..5 {
            tracer.emit(Category::Walk, "step", &[]);
        }
        let events = recorder.drain();
        for pair in events.windows(2) {
            assert!(pair[0].tick < pair[1].tick);
            assert!(pair[0].seq < pair[1].seq);
        }
    }

    #[test]
    fn spans_pair_by_id() {
        let (tracer, recorder) = traced();
        let id = tracer.span_start(Category::Job, "job", &[]);
        tracer.emit(Category::Cache, "miss", &[]);
        tracer.span_end(Category::Job, "job", id, &[]);
        let events = recorder.drain();
        assert_eq!(events[0].kind, EventKind::SpanStart);
        assert_eq!(events[2].kind, EventKind::SpanEnd);
        assert_eq!(events[0].span, events[2].span);
        assert!(id > 0);
    }

    #[test]
    fn clones_share_state() {
        let (tracer, recorder) = traced();
        let clone = tracer.clone();
        clone.set_phase(WalkPhase::BurnIn);
        tracer.emit(Category::Walk, "step", &[]);
        assert_eq!(recorder.drain()[0].phase, WalkPhase::BurnIn);
    }
}
