//! The sink trait trace events flow into.

use crate::event::TraceEvent;

/// A consumer of trace events. Implementations must be cheap and
/// non-blocking on the hot path — walkers emit from inside their step
/// loop. The workspace's charging lint bans raw `.record(…)` calls in
/// estimator code: instrumentation goes through [`crate::Tracer`], which
/// stamps phase/level attribution on every event, never straight to a
/// sink.
pub trait TraceSink: Send + Sync {
    /// Accepts one event. Must not panic; sinks under backpressure drop
    /// (and count) rather than block.
    fn record(&self, event: TraceEvent);
}

/// A sink that discards everything; backs disabled tracers in tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: TraceEvent) {}
}
