//! The closed trace vocabulary, as data.
//!
//! `ma-verify` replays `.jsonl` traces and must reject events the
//! runtime never emits — but hard-coding the vocabulary in the auditor
//! would let the two drift apart silently. This module is the single
//! source of truth: the emitting code uses [`Category`] / [`WalkPhase`]
//! enums directly, and the auditor validates decoded frames against the
//! tables here. Adding an event name without registering it is caught by
//! the CI replay step the moment the new event appears in a trace.

use crate::event::{Category, EventKind, WalkPhase};

/// Point-event names the runtime emits, per category.
///
/// Span names live in [`span_names`]; a name may legally appear in both
/// (`pilot` does: the Walk point event reports a pilot measurement, the
/// Walk span brackets the whole pilot phase).
pub fn event_names(category: Category) -> &'static [&'static str] {
    match category {
        Category::Walk => &[
            "step",
            "mh_accept",
            "mh_reject",
            "sample",
            "restart",
            "burnin_end",
            "pilot",
            "interval_selected",
            "seeds",
            "visit",
            "level_up",
            "level_down",
        ],
        Category::Charge => &["charge"],
        Category::Cache => &["local_hit", "miss", "shared_hit", "shared_evict"],
        Category::Resilience => &[
            "retry",
            "rate_limited",
            "waste",
            "give_up",
            "breaker_open",
            "breaker_probe",
            "breaker_close",
            "breaker_fast_fail",
        ],
        Category::Job => &["settle"],
        Category::Diag => &["geweke"],
        Category::Coalesce => &["lead", "join", "abort"],
        Category::Checkpoint => &["checkpoint"],
        Category::Recovery => &["replay", "respawn"],
        Category::Stats => &["window", "gauges", "query"],
        Category::Sched => &["announce", "drain"],
    }
}

/// Span names (emitted as `span_start` / `span_end` pairs), per category.
pub fn span_names(category: Category) -> &'static [&'static str] {
    match category {
        Category::Walk => &["tarw_instance", "pilot"],
        Category::Job => &["job", "estimate"],
        _ => &[],
    }
}

/// Conserved counter names carried by every `stats`/`window` event.
///
/// Each emission reports, per key, the delta since the previous emission
/// (field `d_<key>`) and the cumulative total so far (field `t_<key>`).
/// The contract — audited by `ma-verify` — is that the deltas telescope:
/// every window's total equals the previous total plus its delta, so the
/// sum of all deltas in a stream equals the final cumulative total.
pub const STATS_CONSERVED_KEYS: [&str; 11] = [
    "jobs_submitted",
    "jobs_succeeded",
    "jobs_degraded",
    "jobs_failed",
    "charged_calls",
    "refunded_calls",
    "actual_calls",
    "local_hits",
    "shared_hits",
    "cache_misses",
    "walk_samples",
];

/// Whether `name` is a legal point-event name for `category`.
pub fn is_event(category: Category, name: &str) -> bool {
    event_names(category).contains(&name)
}

/// Whether `name` is a legal span name for `category`.
pub fn is_span(category: Category, name: &str) -> bool {
    span_names(category).contains(&name)
}

/// Parses the `cat` field of a serialized frame.
pub fn parse_category(s: &str) -> Option<Category> {
    Category::ALL.iter().copied().find(|c| c.as_str() == s)
}

/// Parses the `kind` field of a serialized frame.
pub fn parse_kind(s: &str) -> Option<EventKind> {
    [EventKind::Event, EventKind::SpanStart, EventKind::SpanEnd]
        .into_iter()
        .find(|k| k.as_str() == s)
}

/// Parses the `phase` field of a serialized frame.
pub fn parse_phase(s: &str) -> Option<WalkPhase> {
    WalkPhase::ALL.iter().copied().find(|p| p.as_str() == s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_category_round_trips_through_parse() {
        for c in Category::ALL {
            assert_eq!(parse_category(c.as_str()), Some(c));
        }
        assert_eq!(parse_category("walks"), None);
    }

    #[test]
    fn every_phase_round_trips_through_parse() {
        for p in WalkPhase::ALL {
            assert_eq!(parse_phase(p.as_str()), Some(p));
        }
        assert_eq!(parse_phase("warmup"), None);
    }

    #[test]
    fn kinds_round_trip_and_reject_unknowns() {
        for k in [EventKind::Event, EventKind::SpanStart, EventKind::SpanEnd] {
            assert_eq!(parse_kind(k.as_str()), Some(k));
        }
        assert_eq!(parse_kind("span"), None);
    }

    #[test]
    fn settle_is_a_job_event_and_job_is_a_span() {
        assert!(is_event(Category::Job, "settle"));
        assert!(is_span(Category::Job, "job"));
        assert!(is_span(Category::Job, "estimate"));
        assert!(!is_event(Category::Job, "job"));
        assert!(!is_span(Category::Charge, "charge"));
    }
}
