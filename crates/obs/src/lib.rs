//! # microblog-obs
//!
//! A dependency-free structured-tracing subsystem for the
//! MICROBLOG-ANALYZER stack.
//!
//! The paper's currency is *API calls per unit of accuracy*, and the
//! end-of-job `MetricsRegistry` totals cannot explain where inside a walk
//! the budget went. This crate provides the missing step-level view:
//!
//! * [`event`] — the [`TraceEvent`] record: a span or point event with a
//!   category, a name, a walk [`WalkPhase`] / level attribution, and typed
//!   key-value fields.
//! * [`clock`] — the [`TelemetryClock`] that timestamps every record.
//!   The default [`TelemetryMode::Logical`] is a monotone atomic counter,
//!   so two runs with the same seed produce **bit-identical** traces —
//!   traces are golden-testable and replay-diffable.
//! * [`sink`] — the [`TraceSink`] trait events flow into, with
//!   [`NullSink`] for the disabled path.
//! * [`recorder`] — [`RingRecorder`], a bounded, per-category-sharded
//!   ring buffer with deterministic counter-based sampling (no RNG, no
//!   wall time — sampling decisions replay identically too).
//! * [`tracer`] — [`Tracer`], the cheap cloneable handle instrumentation
//!   code holds. It carries ambient *walk phase* and *level* state so a
//!   charge recorded deep in the client stack is attributed to the walk
//!   phase that caused it.
//! * [`histogram`] — [`Log2Histogram`], lock-free log2-bucket counters
//!   merged into the service metrics renderings.
//! * [`window`] — rotating-window time series on the logical clock:
//!   [`WindowedSeries`] for rates/gauges and [`WindowedHistogram`] for
//!   per-window latency percentiles, feeding the live stats stream.
//! * [`export`] — hand-rolled JSON-lines serialization with a fixed field
//!   order, so byte-identical traces really are byte-identical.
//! * [`convert`] — turning a [`microblog_graph::WalkTrace`] into trace
//!   events without re-implementing visit bookkeeping.
//!
//! The crate is deliberately dependency-free apart from the workspace's
//! own `microblog-graph`: tracing must never perturb what it measures, so
//! everything here is `std` atomics, mutexed ring buffers and string
//! formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod convert;
pub mod event;
pub mod export;
pub mod histogram;
pub mod recorder;
pub mod schema;
pub mod sink;
pub mod tracer;
pub mod window;

pub use clock::{TelemetryClock, TelemetryMode};
pub use event::{Category, EventKind, FieldValue, TraceEvent, WalkPhase};
pub use export::{render_jsonl, to_json_line};
pub use histogram::{render_buckets, Log2Histogram};
pub use recorder::{RecorderConfig, RecorderStats, RingRecorder};
pub use sink::{NullSink, TraceSink};
pub use tracer::Tracer;
pub use window::{sparkline, WindowStats, WindowedHistogram, WindowedSeries};
