//! Lock-free log-linear histograms for latency- and cost-shaped data.
//!
//! Means hide the paper's pathologies: one breaker-open backoff of 2¹⁴
//! simulated seconds disappears inside ten thousand 1-tick waits. A
//! logarithmic histogram keeps the tail visible at a fixed cost — but
//! pure power-of-two buckets proved too coarse at the bottom end
//! (BENCH_5.json reported `queue_wait_us` p50 == p95 == 63 because the
//! whole distribution fit in the `[32, 63]` octave). Each octave is
//! therefore split into 4 linear sub-buckets, bounding the relative
//! quantization error at ~25% across the entire `u64` range, and the
//! snapshot stays a plain `[u64; 252]`, so `MetricsSnapshot` stays
//! `Copy` after growing four of them.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: 4 singleton buckets for values `0..=3`, then 4
/// linear sub-buckets per octave for the remaining 62 octaves of a
/// `u64` (`4 + 62 × 4 = 252`).
pub const BUCKETS: usize = 252;

/// A concurrent histogram over `u64` values with log-linear buckets:
/// values `0..=3` each get their own bucket; above that, the octave
/// `[2^e, 2^(e+1))` is split into 4 equal linear sub-buckets keyed by
/// the two bits below the most significant bit.
pub struct Log2Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The bucket a value lands in.
    pub fn bucket_index(value: u64) -> usize {
        if value < 4 {
            value as usize
        } else {
            let msb = 63 - value.leading_zeros() as usize;
            4 + (msb - 2) * 4 + ((value >> (msb - 2)) & 3) as usize
        }
    }

    /// `[low, high]` inclusive value bounds of bucket `index`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        if index < 4 {
            (index as u64, index as u64)
        } else {
            let exp = (index - 4) / 4 + 2;
            let sub = ((index - 4) % 4) as u128;
            let lo = (4 + sub) << (exp - 2);
            let hi = ((5 + sub) << (exp - 2)) - 1;
            (
                u64::try_from(lo).unwrap_or(u64::MAX),
                u64::try_from(hi).unwrap_or(u64::MAX),
            )
        }
    }

    /// Counts one observation.
    pub fn record(&self, value: u64) {
        if let Some(bucket) = self.buckets.get(Self::bucket_index(value)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A copyable snapshot of the bucket counts.
    pub fn snapshot(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

impl std::fmt::Debug for Log2Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Log2Histogram")
            .field("count", &self.snapshot().iter().sum::<u64>())
            .finish()
    }
}

/// Renders the non-empty buckets of a snapshot as `lo..=hi  count` rows,
/// one per line, each indented two spaces — the shared presentation for
/// metrics text output and trace summaries. Empty histograms render as
/// an empty string.
pub fn render_buckets(counts: &[u64; BUCKETS]) -> String {
    let mut out = String::new();
    for (i, &n) in counts.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let (lo, hi) = Log2Histogram::bucket_bounds(i);
        let range = if lo == hi {
            format!("{lo}")
        } else {
            format!("{lo}..={hi}")
        };
        out.push_str(&format!("  {range:<24}{n}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 3);
        assert_eq!(Log2Histogram::bucket_index(4), 4);
        assert_eq!(Log2Histogram::bucket_index(5), 5);
        assert_eq!(Log2Histogram::bucket_index(7), 7);
        assert_eq!(Log2Histogram::bucket_index(8), 8);
        assert_eq!(Log2Histogram::bucket_index(9), 8);
        assert_eq!(Log2Histogram::bucket_index(10), 9);
        assert_eq!(Log2Histogram::bucket_index(63), 19);
        assert_eq!(Log2Histogram::bucket_index(64), 20);
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bounds_cover_the_domain_without_gaps() {
        let mut next = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = Log2Histogram::bucket_bounds(i);
            assert_eq!(lo, next, "bucket {i} starts where the previous ended");
            assert!(hi >= lo);
            if hi == u64::MAX {
                assert_eq!(i, BUCKETS - 1);
                return;
            }
            next = hi + 1;
        }
        panic!("top bucket never reached u64::MAX");
    }

    #[test]
    fn index_and_bounds_agree() {
        for v in [
            0,
            1,
            3,
            4,
            7,
            8,
            31,
            32,
            63,
            64,
            100,
            1000,
            1 << 40,
            u64::MAX,
        ] {
            let i = Log2Histogram::bucket_index(v);
            let (lo, hi) = Log2Histogram::bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} i={i} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn sub_buckets_resolve_within_an_octave() {
        // The [32, 63] octave that flattened queue_wait_us in BENCH_5
        // now splits into four buckets: 32..=39, 40..=47, 48..=55, 56..=63.
        let mut seen = std::collections::BTreeSet::new();
        for v in 32..64u64 {
            seen.insert(Log2Histogram::bucket_index(v));
        }
        assert_eq!(seen.len(), 4, "buckets: {seen:?}");
    }

    #[test]
    fn record_and_snapshot_round_trip() {
        let h = Log2Histogram::new();
        for v in [0, 1, 1, 3, 200, 200, 200] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap[0], 1, "one zero");
        assert_eq!(snap[1], 2, "two ones");
        assert_eq!(snap[3], 1, "one three");
        let b200 = Log2Histogram::bucket_index(200);
        assert_eq!(snap[b200], 3, "three values of 200");
        assert_eq!(snap.iter().sum::<u64>(), 7);
    }

    #[test]
    fn render_shows_only_nonzero_buckets() {
        let h = Log2Histogram::new();
        h.record(0);
        h.record(5);
        h.record(100);
        let text = render_buckets(&h.snapshot());
        assert!(text.contains("0                       1"), "text: {text}");
        assert!(text.contains("5                       1"), "text: {text}");
        assert!(text.contains("96..=111                1"), "text: {text}");
        assert_eq!(text.lines().count(), 3);
        assert!(render_buckets(&Log2Histogram::new().snapshot()).is_empty());
    }
}
