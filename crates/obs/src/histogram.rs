//! Lock-free log2-bucket histograms for latency- and cost-shaped data.
//!
//! Means hide the paper's pathologies: one breaker-open backoff of 2¹⁴
//! simulated seconds disappears inside ten thousand 1-tick waits. A
//! power-of-two histogram keeps the tail visible at a fixed 65 × 8-byte
//! cost, and its snapshot is a plain `[u64; 65]`, so
//! `MetricsSnapshot` stays `Copy` after growing four of them.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub const BUCKETS: usize = 65;

/// A concurrent histogram over `u64` values with power-of-two buckets:
/// bucket 0 holds zeros, bucket `k ≥ 1` holds values in `[2^(k-1), 2^k)`.
pub struct Log2Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The bucket a value lands in.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// `[low, high]` inclusive value bounds of bucket `index`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        if index == 0 {
            (0, 0)
        } else {
            let low = 1u64 << (index - 1).min(63);
            let high = low.checked_mul(2).map_or(u64::MAX, |h| h - 1);
            (low, high)
        }
    }

    /// Counts one observation.
    pub fn record(&self, value: u64) {
        if let Some(bucket) = self.buckets.get(Self::bucket_index(value)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A copyable snapshot of the bucket counts.
    pub fn snapshot(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

impl std::fmt::Debug for Log2Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Log2Histogram")
            .field("count", &self.snapshot().iter().sum::<u64>())
            .finish()
    }
}

/// Renders the non-empty buckets of a snapshot as `lo..=hi  count` rows,
/// one per line, each indented two spaces — the shared presentation for
/// metrics text output and trace summaries. Empty histograms render as
/// an empty string.
pub fn render_buckets(counts: &[u64; BUCKETS]) -> String {
    let mut out = String::new();
    for (i, &n) in counts.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let (lo, hi) = Log2Histogram::bucket_bounds(i);
        let range = if lo == hi {
            format!("{lo}")
        } else {
            format!("{lo}..={hi}")
        };
        out.push_str(&format!("  {range:<24}{n}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 2);
        assert_eq!(Log2Histogram::bucket_index(4), 3);
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bounds_cover_the_domain_without_gaps() {
        let mut next = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = Log2Histogram::bucket_bounds(i);
            assert_eq!(lo, next, "bucket {i} starts where the previous ended");
            assert!(hi >= lo);
            if hi == u64::MAX {
                assert_eq!(i, BUCKETS - 1);
                return;
            }
            next = hi + 1;
        }
    }

    #[test]
    fn record_and_snapshot_round_trip() {
        let h = Log2Histogram::new();
        for v in [0, 1, 1, 3, 200, 200, 200] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap[0], 1, "one zero");
        assert_eq!(snap[1], 2, "two ones");
        assert_eq!(snap[2], 1, "one value in [2, 3]");
        assert_eq!(snap[8], 3, "three values in [128, 255]");
        assert_eq!(snap.iter().sum::<u64>(), 7);
    }

    #[test]
    fn render_shows_only_nonzero_buckets() {
        let h = Log2Histogram::new();
        h.record(0);
        h.record(5);
        let text = render_buckets(&h.snapshot());
        assert!(text.contains("0                       1"), "text: {text}");
        assert!(text.contains("4..=7                   1"), "text: {text}");
        assert_eq!(text.lines().count(), 2);
        assert!(render_buckets(&Log2Histogram::new().snapshot()).is_empty());
    }
}
