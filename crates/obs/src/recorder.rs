//! A bounded, sharded, deterministically-sampled ring-buffer recorder.
//!
//! One shard per [`Category`] keeps high-volume walk steps from evicting
//! rare-but-precious resilience or job events, and keeps hot-path
//! contention low: a walker writing step events and a client writing
//! charge events never touch the same mutex. Sampling is counter-based —
//! keep every Nth event of a category — so the kept subset is a pure
//! function of the event stream, never of wall time or an RNG: a sampled
//! trace replays byte-identically just like a full one.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::{Category, TraceEvent};
use crate::sink::TraceSink;

/// Recorder limits and per-category sampling rates.
#[derive(Clone, Copy, Debug)]
pub struct RecorderConfig {
    /// Maximum buffered events per category; the oldest event of that
    /// category is dropped (and counted) when full.
    pub capacity_per_category: usize,
    /// Keep one event in `sample_every[cat.index()]` for each category
    /// (1 = keep all, 0 behaves as 1). Indexed by [`Category::index`].
    pub sample_every: [u64; Category::COUNT],
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            capacity_per_category: 1 << 16,
            sample_every: [1; Category::COUNT],
        }
    }
}

impl RecorderConfig {
    /// Sets the sampling rate for one category.
    pub fn with_sampling(mut self, category: Category, every: u64) -> Self {
        if let Some(slot) = self.sample_every.get_mut(category.index()) {
            *slot = every.max(1);
        }
        self
    }
}

/// Per-category occupancy and loss counters; see [`RingRecorder::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Events offered per category (before sampling).
    pub seen: [u64; Category::COUNT],
    /// Events skipped by the sampling rate.
    pub sampled_out: [u64; Category::COUNT],
    /// Buffered events evicted because the shard was full.
    pub dropped: [u64; Category::COUNT],
}

impl RecorderStats {
    /// Total events offered across categories.
    pub fn total_seen(&self) -> u64 {
        self.seen.iter().sum()
    }

    /// Total events lost to sampling or eviction.
    pub fn total_lost(&self) -> u64 {
        self.sampled_out.iter().sum::<u64>() + self.dropped.iter().sum::<u64>()
    }
}

struct Shard {
    every: u64,
    capacity: usize,
    seen: AtomicU64,
    sampled_out: AtomicU64,
    dropped: AtomicU64,
    buf: Mutex<VecDeque<TraceEvent>>,
}

impl Shard {
    fn new(every: u64, capacity: usize) -> Self {
        Shard {
            every: every.max(1),
            capacity: capacity.max(1),
            seen: AtomicU64::new(0),
            sampled_out: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    fn push(&self, event: TraceEvent) {
        let n = self.seen.fetch_add(1, Ordering::Relaxed);
        if self.every > 1 && !n.is_multiple_of(self.every) {
            self.sampled_out.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut buf = self
            .buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if buf.len() >= self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event);
    }

    fn drain(&self) -> Vec<TraceEvent> {
        let mut buf = self
            .buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        buf.drain(..).collect()
    }
}

/// The standard in-memory [`TraceSink`]: one bounded ring buffer per
/// [`Category`], drained into a single seq-ordered stream.
pub struct RingRecorder {
    shards: Vec<Shard>,
}

impl RingRecorder {
    /// A recorder with the given limits and sampling rates.
    pub fn new(config: RecorderConfig) -> Self {
        let shards = Category::ALL
            .iter()
            .map(|c| {
                let every = config.sample_every.get(c.index()).copied().unwrap_or(1);
                Shard::new(every, config.capacity_per_category)
            })
            .collect();
        RingRecorder { shards }
    }

    /// Removes and returns every buffered event, ordered by sequence
    /// number (the tracer's emission order).
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = self.shards.iter().flat_map(Shard::drain).collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Current counters, for loss reporting in summaries.
    pub fn stats(&self) -> RecorderStats {
        let mut stats = RecorderStats::default();
        for (i, shard) in self.shards.iter().enumerate() {
            if let Some(slot) = stats.seen.get_mut(i) {
                *slot = shard.seen.load(Ordering::Relaxed);
            }
            if let Some(slot) = stats.sampled_out.get_mut(i) {
                *slot = shard.sampled_out.load(Ordering::Relaxed);
            }
            if let Some(slot) = stats.dropped.get_mut(i) {
                *slot = shard.dropped.load(Ordering::Relaxed);
            }
        }
        stats
    }
}

impl Default for RingRecorder {
    fn default() -> Self {
        RingRecorder::new(RecorderConfig::default())
    }
}

impl std::fmt::Debug for RingRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingRecorder")
            .field("stats", &self.stats())
            .finish()
    }
}

impl TraceSink for RingRecorder {
    fn record(&self, event: TraceEvent) {
        if let Some(shard) = self.shards.get(event.category.index()) {
            shard.push(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, WalkPhase};

    fn ev(seq: u64, category: Category) -> TraceEvent {
        TraceEvent {
            tick: seq + 1,
            seq,
            kind: EventKind::Event,
            category,
            name: "t",
            span: None,
            phase: WalkPhase::Idle,
            level: None,
            fields: Vec::new(),
        }
    }

    #[test]
    fn drain_merges_shards_in_seq_order() {
        let rec = RingRecorder::default();
        rec.record(ev(2, Category::Walk));
        rec.record(ev(0, Category::Charge));
        rec.record(ev(1, Category::Walk));
        let seqs: Vec<u64> = rec.drain().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert!(rec.drain().is_empty(), "drain removes events");
    }

    #[test]
    fn capacity_evicts_oldest_and_counts_drops() {
        let rec = RingRecorder::new(RecorderConfig {
            capacity_per_category: 2,
            ..RecorderConfig::default()
        });
        for seq in 0..5 {
            rec.record(ev(seq, Category::Walk));
        }
        let seqs: Vec<u64> = rec.drain().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4], "oldest evicted first");
        let stats = rec.stats();
        assert_eq!(stats.dropped[Category::Walk.index()], 3);
        assert_eq!(stats.seen[Category::Walk.index()], 5);
    }

    #[test]
    fn sampling_keeps_every_nth_deterministically() {
        let run = || {
            let rec = RingRecorder::new(RecorderConfig::default().with_sampling(Category::Walk, 3));
            for seq in 0..10 {
                rec.record(ev(seq, Category::Walk));
            }
            rec.drain().iter().map(|e| e.seq).collect::<Vec<_>>()
        };
        assert_eq!(run(), vec![0, 3, 6, 9]);
        assert_eq!(run(), run(), "sampling is a pure function of the stream");
    }

    #[test]
    fn sampling_is_per_category() {
        let rec = RingRecorder::new(RecorderConfig::default().with_sampling(Category::Walk, 1000));
        for seq in 0..10 {
            rec.record(ev(seq, Category::Charge));
        }
        assert_eq!(rec.drain().len(), 10, "charge events are never sampled out");
    }
}
