//! JSON-lines serialization with a fixed, documented field order.
//!
//! The determinism acceptance test diffs two recorded traces *as bytes*,
//! so the writer is hand-rolled rather than going through a generic
//! serializer: keys always appear in the same order
//! (`tick`, `seq`, `kind`, `cat`, `name`, `span`, `phase`, `level`,
//! `fields`), absent span/level render as `null` to keep the schema
//! fixed, and floats use Rust's shortest-round-trip `Display`, which is
//! deterministic across runs and platforms.

use std::fmt::Write as _;

use crate::event::{FieldValue, TraceEvent};

/// Serializes one event as a single JSON object (no trailing newline).
pub fn to_json_line(event: &TraceEvent) -> String {
    let mut out = String::with_capacity(128);
    // Writing to a String is infallible; `let _ =` keeps fmt's Result
    // discipline without a panic path.
    let _ = write!(
        out,
        "{{\"tick\":{},\"seq\":{},\"kind\":\"{}\",\"cat\":\"{}\",\"name\":",
        event.tick,
        event.seq,
        event.kind.as_str(),
        event.category.as_str(),
    );
    push_json_str(&mut out, event.name);
    out.push_str(",\"span\":");
    match event.span {
        Some(id) => {
            let _ = write!(out, "{id}");
        }
        None => out.push_str("null"),
    }
    let _ = write!(out, ",\"phase\":\"{}\",\"level\":", event.phase.as_str());
    match event.level {
        Some(level) => {
            let _ = write!(out, "{level}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"fields\":{");
    for (i, (key, value)) in event.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, key);
        out.push(':');
        push_field(&mut out, value);
    }
    out.push_str("}}");
    out
}

/// Serializes a drained event stream as JSON lines (one object per line,
/// trailing newline after the last).
pub fn render_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&to_json_line(event));
        out.push('\n');
    }
    out
}

fn push_field(out: &mut String, value: &FieldValue) {
    match value {
        FieldValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::I64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::F64(v) if v.is_finite() => {
            // Shortest round-trip Display; force a `.0` onto integral
            // values so the field parses back as a float.
            let mut s = format!("{v}");
            if !s.contains(['.', 'e', 'E']) {
                s.push_str(".0");
            }
            out.push_str(&s);
        }
        // NaN / infinities have no JSON spelling.
        FieldValue::F64(_) => out.push_str("null"),
        FieldValue::Str(s) => push_json_str(out, s),
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Category, EventKind, WalkPhase};

    fn sample() -> TraceEvent {
        TraceEvent {
            tick: 7,
            seq: 3,
            kind: EventKind::SpanStart,
            category: Category::Job,
            name: "job",
            span: Some(1),
            phase: WalkPhase::Walk,
            level: Some(2),
            fields: vec![
                ("calls", FieldValue::U64(12)),
                ("delta", FieldValue::I64(-4)),
                ("z", FieldValue::F64(0.5)),
                ("whole", FieldValue::F64(3.0)),
                ("endpoint", FieldValue::from("search")),
            ],
        }
    }

    #[test]
    fn field_order_is_fixed() {
        let line = to_json_line(&sample());
        assert_eq!(
            line,
            "{\"tick\":7,\"seq\":3,\"kind\":\"span_start\",\"cat\":\"job\",\
             \"name\":\"job\",\"span\":1,\"phase\":\"walk\",\"level\":2,\
             \"fields\":{\"calls\":12,\"delta\":-4,\"z\":0.5,\"whole\":3.0,\
             \"endpoint\":\"search\"}}"
        );
    }

    #[test]
    fn absent_span_and_level_render_as_null() {
        let mut ev = sample();
        ev.kind = EventKind::Event;
        ev.span = None;
        ev.level = None;
        ev.fields.clear();
        let line = to_json_line(&ev);
        assert!(line.contains("\"span\":null"), "line: {line}");
        assert!(line.contains("\"level\":null"), "line: {line}");
        assert!(line.ends_with("\"fields\":{}}"), "line: {line}");
    }

    #[test]
    fn strings_are_escaped() {
        let mut ev = sample();
        ev.fields = vec![("s", FieldValue::Str("a\"b\\c\nd\u{1}".to_string()))];
        let line = to_json_line(&ev);
        assert!(
            line.contains("\"s\":\"a\\\"b\\\\c\\nd\\u0001\""),
            "line: {line}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut ev = sample();
        ev.fields = vec![("z", FieldValue::F64(f64::NAN))];
        assert!(to_json_line(&ev).contains("\"z\":null"));
    }

    #[test]
    fn jsonl_is_one_line_per_event_with_trailing_newline() {
        let events = vec![sample(), sample()];
        let text = render_jsonl(&events);
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
        assert_eq!(render_jsonl(&[]), "");
    }
}
