//! The MICROBLOG-ANALYZER facade (Figure 1).
//!
//! Takes an aggregate query, a query budget and an algorithm choice;
//! returns an [`Estimate`]. All platform access goes through a fresh
//! budget-limited [`CachingClient`].

use crate::checkpoint::{self, CheckpointCtl, SamplerState, WalkerCheckpoint};
use crate::error::EstimateError;
use crate::estimate::Estimate;
use crate::query::AggregateQuery;
use crate::view::ViewKind;
use crate::walker::{mhrw, mr, multi, snowball, srw, tarw};
use microblog_api::cache::{CacheLayer, CacheStats};
use microblog_api::{
    ApiProfile, CachingClient, MicroblogClient, PrefetchSink, QueryBudget, ResilienceStats,
    ResilientClient, RetryPolicy,
};
use microblog_obs::{Category, FieldValue, Tracer, WalkPhase};
use microblog_platform::{ApiBackend, Duration, Platform};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which estimation algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Simple random walk over the full social graph (Fig. 2/3 baseline).
    SrwFullGraph,
    /// Simple random walk over the term-induced subgraph (§4.1 baseline).
    SrwTermInduced,
    /// MA-SRW: simple random walk over the level-by-level subgraph
    /// (Algorithm 1). `interval = None` uses one day, the paper's default
    /// segmentation example.
    MaSrw {
        /// Level interval `T`.
        interval: Option<Duration>,
    },
    /// MA-TARW: topology-aware random walk (Algorithm 3). `interval =
    /// None` auto-selects via pilot walks (§4.2.3).
    MaTarw {
        /// Level interval `T`; `None` = pilot selection.
        interval: Option<Duration>,
    },
    /// Mark-and-recapture baseline on the given view (COUNT only).
    MarkRecapture {
        /// The view to walk.
        view: ViewKind,
    },
    /// Simple random walk over an arbitrary view — the general form behind
    /// the ablations (e.g. Fig. 4's partial intra-edge removal).
    SrwView {
        /// The view to walk.
        view: ViewKind,
    },
    /// Metropolis–Hastings random walk over the given view — the slower
    /// oblivious baseline the paper dismisses via Gjoka et al. [13].
    Mhrw {
        /// The view to walk.
        view: ViewKind,
    },
    /// BFS/DFS snowball crawl — the classic *biased* baseline from the
    /// graph-sampling literature ([13, 19]).
    Snowball {
        /// The view to crawl.
        view: ViewKind,
        /// Crawl order.
        order: crate::walker::snowball::CrawlOrder,
    },
}

impl Algorithm {
    /// Short display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::SrwFullGraph => "SRW(social)",
            Algorithm::SrwTermInduced => "SRW(term)",
            Algorithm::MaSrw { .. } => "MA-SRW",
            Algorithm::MaTarw { .. } => "MA-TARW",
            Algorithm::MarkRecapture { .. } => "M&R",
            Algorithm::SrwView { .. } => "SRW(view)",
            Algorithm::Mhrw { .. } => "MHRW",
            Algorithm::Snowball { order, .. } => match order {
                crate::walker::snowball::CrawlOrder::Bfs => "BFS",
                crate::walker::snowball::CrawlOrder::Dfs => "DFS",
            },
        }
    }
}

/// Everything one estimation run produced: the estimate (or why there is
/// none), what it charged, and what the resilience layer absorbed along
/// the way.
#[must_use = "a RunReport accounts for spent API budget; dropping it discards the charge"]
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The estimate, or the failure that prevented one.
    pub outcome: Result<Estimate, EstimateError>,
    /// API calls actually charged to the run's budget (≤ the budget; the
    /// unspent remainder is refundable by an admission controller).
    pub charged: u64,
    /// Cache hit/miss accounting.
    pub cache: CacheStats,
    /// Retry/backoff/breaker accounting.
    pub resilience: ResilienceStats,
    /// `true` when the walk ended early on a fatal resilience error but
    /// still produced an estimate from the samples collected before it —
    /// a partial answer, not a full-budget one.
    pub degraded: bool,
}

/// The top-level system facade.
pub struct MicroblogAnalyzer<'p> {
    backend: &'p dyn ApiBackend,
    api: ApiProfile,
    /// Interleaved chains for SRW-family runs (1 = the classic solo walk).
    chains: usize,
    /// Optional per-chain step cap for SRW-family runs: clamps
    /// [`crate::walker::srw::SrwConfig::max_steps`]. Bounds the CPU a walk
    /// can spend free-stepping over already-memoized nodes after its API
    /// budget stops mattering.
    step_cap: Option<usize>,
    /// Optional fetch-pipeline sink walks announce upcoming fetches to.
    prefetch: Option<&'p dyn PrefetchSink>,
}

impl<'p> MicroblogAnalyzer<'p> {
    /// Creates an analyzer over `platform` accessed through `api`.
    pub fn new(platform: &'p Platform, api: ApiProfile) -> Self {
        Self::with_backend(platform, api)
    }

    /// Creates an analyzer over an arbitrary backend — e.g. a
    /// [`microblog_platform::FaultyPlatform`] injecting failures.
    pub fn with_backend(backend: &'p dyn ApiBackend, api: ApiProfile) -> Self {
        MicroblogAnalyzer {
            backend,
            api,
            chains: 1,
            step_cap: None,
            prefetch: None,
        }
    }

    /// Runs SRW-family algorithms as `chains` interleaved chains
    /// ([`crate::walker::multi`]). A *run*-level knob, not part of
    /// [`Algorithm`]: job specs and journals stay stable, and the same
    /// logical job can be executed solo or interleaved.
    pub fn with_chains(mut self, chains: usize) -> Self {
        self.chains = chains.max(1);
        self
    }

    /// Caps SRW-family walks at `cap` steps per chain (clamping the
    /// config's own `max_steps`). Like [`Self::with_chains`] a run-level
    /// knob: it never changes *what* a walk fetches per step, only how
    /// long the free post-coverage tail may spin, so checkpoints and job
    /// specs stay stable.
    pub fn with_step_cap(mut self, cap: usize) -> Self {
        self.step_cap = Some(cap.max(1));
        self
    }

    /// Attaches a prefetch sink (normally a
    /// [`microblog_api::FetchScheduler`]): walkers announce the fetches
    /// their next steps will need so the sink can overlap the RTTs.
    /// Purely a latency optimization — estimates, charges and checkpoints
    /// are bit-identical with or without a sink.
    pub fn with_prefetch(mut self, sink: &'p dyn PrefetchSink) -> Self {
        self.prefetch = Some(sink);
        self
    }

    /// The API profile in force.
    pub fn api_profile(&self) -> &ApiProfile {
        &self.api
    }

    /// Estimates `query` with at most `budget` API calls using `algorithm`;
    /// `seed` makes the run reproducible.
    pub fn estimate(
        &self,
        query: &AggregateQuery,
        budget: u64,
        algorithm: Algorithm,
        seed: u64,
    ) -> Result<Estimate, EstimateError> {
        self.estimate_with_cache(query, budget, algorithm, seed, None)
            .map(|(est, _)| est)
    }

    /// Like [`estimate`](Self::estimate), optionally layering the query's
    /// client over a shared cross-query response cache. Shared hits are
    /// charged logically (see `microblog_api::cache`), so the returned
    /// estimate and its cost are bit-identical to an uncached run with the
    /// same seed; the accompanying [`CacheStats`] report how many platform
    /// fetches the layer absorbed.
    pub fn estimate_with_cache(
        &self,
        query: &AggregateQuery,
        budget: u64,
        algorithm: Algorithm,
        seed: u64,
        shared: Option<Arc<dyn CacheLayer>>,
    ) -> Result<(Estimate, CacheStats), EstimateError> {
        let report = self.run(query, budget, algorithm, seed, shared, &RetryPolicy::none());
        let cache = report.cache;
        report.outcome.map(|est| (est, cache))
    }

    /// The full-fidelity run: like
    /// [`estimate_with_cache`](Self::estimate_with_cache) but with a
    /// [`RetryPolicy`] absorbing retryable API failures, and returning a
    /// [`RunReport`] with charge/cache/resilience accounting either way.
    ///
    /// Retries never touch the walk's budget or RNG (failed attempts
    /// charge the report's waste meter instead), so when every fault is
    /// absorbed the estimate is bit-identical to a fault-free run with
    /// the same seed. When the policy gives up mid-walk — deadline,
    /// retries exhausted, breaker open — the walk finalizes with the
    /// samples it has and the report is marked [`RunReport::degraded`].
    pub fn run(
        &self,
        query: &AggregateQuery,
        budget: u64,
        algorithm: Algorithm,
        seed: u64,
        shared: Option<Arc<dyn CacheLayer>>,
        policy: &RetryPolicy,
    ) -> RunReport {
        self.run_traced(
            query,
            budget,
            algorithm,
            seed,
            shared,
            policy,
            Tracer::disabled(),
        )
    }

    /// Like [`run`](Self::run), with a [`Tracer`] threaded through the
    /// whole client stack and the walkers. Tracing is strictly
    /// observational: the walk RNG, the budget charges and therefore the
    /// estimate are bit-identical whether the tracer is enabled, disabled
    /// or sampled. With a logical-tick [`microblog_obs::TelemetryClock`]
    /// the recorded event stream is itself byte-for-byte reproducible.
    #[allow(clippy::too_many_arguments)]
    pub fn run_traced(
        &self,
        query: &AggregateQuery,
        budget: u64,
        algorithm: Algorithm,
        seed: u64,
        shared: Option<Arc<dyn CacheLayer>>,
        policy: &RetryPolicy,
        tracer: Tracer,
    ) -> RunReport {
        self.run_recoverable(
            query,
            budget,
            algorithm,
            seed,
            shared,
            policy,
            tracer,
            &mut CheckpointCtl::disabled(),
            None,
        )
    }

    /// The crash-safe run: like [`run_traced`](Self::run_traced), plus a
    /// [`CheckpointCtl`] through which the walk emits checkpoints at the
    /// control's cadence, and an optional [`WalkerCheckpoint`] to resume
    /// from. A resumed run restores the client memo from the pristine
    /// platform, pre-charges the budget with the checkpointed spend, and
    /// repositions the RNG — so its estimate, total charge and sample
    /// counts are **bit-identical** to the uninterrupted run's.
    #[allow(clippy::too_many_arguments)]
    pub fn run_recoverable(
        &self,
        query: &AggregateQuery,
        budget: u64,
        algorithm: Algorithm,
        seed: u64,
        shared: Option<Arc<dyn CacheLayer>>,
        policy: &RetryPolicy,
        tracer: Tracer,
        ctl: &mut CheckpointCtl<'_>,
        resume: Option<&WalkerCheckpoint>,
    ) -> RunReport {
        let limit = budget;
        let budget = QueryBudget::limited(budget);
        let inner = MicroblogClient::from_backend(self.backend, self.api.clone(), budget.clone())
            .with_tracer(tracer.clone());
        let span = if tracer.is_enabled() {
            tracer.span_start(
                Category::Job,
                "estimate",
                &[
                    ("algorithm", FieldValue::from(algorithm.name())),
                    ("seed", FieldValue::U64(seed)),
                    ("budget", FieldValue::U64(limit)),
                ],
            )
        } else {
            0
        };
        // Derive the jitter stream from the job seed so concurrent jobs
        // don't share backoff sequences; the walk RNG is untouched.
        let policy = policy.with_jitter_seed(policy.jitter_seed ^ seed.rotate_left(17));
        let resilient = ResilientClient::new(inner, policy);
        let mut client = CachingClient::resilient(resilient, shared);
        if let Some(sink) = self.prefetch {
            client = client.with_prefetch(sink);
        }
        ctl.set_job(algorithm.name(), seed);
        // Rebuild the checkpointed context, if resuming: memo from the
        // pristine platform, budget pre-charged with the checkpointed
        // spend, RNG repositioned on its stream.
        let setup: Result<(ChaCha8Rng, Option<&SamplerState>), EstimateError> = match resume {
            Some(cp) => (|| {
                if cp.seed != seed {
                    return Err(EstimateError::Unsupported(
                        "checkpoint seed does not match the job",
                    ));
                }
                let rng = cp.rng.to_chacha8().ok_or(EstimateError::Unsupported(
                    "checkpoint carries a malformed RNG state",
                ))?;
                checkpoint::restore_client(
                    &mut client,
                    &cp.client,
                    self.backend.store(),
                    &self.api,
                )?;
                client.client().budget().charge(cp.client.charged)?;
                Ok((rng, Some(&cp.sampler)))
            })(),
            None => Ok((ChaCha8Rng::seed_from_u64(seed), None)),
        };
        let result = match setup {
            Err(e) => Err(e),
            Ok((mut rng, state)) => match algorithm {
                Algorithm::SrwFullGraph => {
                    let cfg = srw::SrwConfig::new(ViewKind::FullGraph);
                    run_srw(
                        &mut client,
                        query,
                        &cfg,
                        self.chains,
                        self.step_cap,
                        seed,
                        &mut rng,
                        ctl,
                        state,
                    )
                }
                Algorithm::SrwTermInduced => {
                    let cfg = srw::SrwConfig::new(ViewKind::TermInduced);
                    run_srw(
                        &mut client,
                        query,
                        &cfg,
                        self.chains,
                        self.step_cap,
                        seed,
                        &mut rng,
                        ctl,
                        state,
                    )
                }
                Algorithm::MaSrw { interval } => {
                    let t = interval.unwrap_or(Duration::DAY);
                    let cfg = srw::SrwConfig::new(ViewKind::level(t));
                    run_srw(
                        &mut client,
                        query,
                        &cfg,
                        self.chains,
                        self.step_cap,
                        seed,
                        &mut rng,
                        ctl,
                        state,
                    )
                }
                Algorithm::MaTarw { interval } => {
                    let cfg = tarw::TarwConfig {
                        interval,
                        ..Default::default()
                    };
                    tarw::estimate_recoverable(&mut client, query, &cfg, &mut rng, ctl, state)
                }
                Algorithm::MarkRecapture { view } => {
                    let cfg = mr::MrConfig::new(view);
                    match state {
                        None => {
                            mr::estimate_recoverable(&mut client, query, &cfg, &mut rng, ctl, None)
                        }
                        Some(SamplerState::Srw(s)) => mr::estimate_recoverable(
                            &mut client,
                            query,
                            &cfg,
                            &mut rng,
                            ctl,
                            Some(s),
                        ),
                        Some(_) => Err(mismatch()),
                    }
                }
                Algorithm::SrwView { view } => {
                    let cfg = srw::SrwConfig::new(view);
                    run_srw(
                        &mut client,
                        query,
                        &cfg,
                        self.chains,
                        self.step_cap,
                        seed,
                        &mut rng,
                        ctl,
                        state,
                    )
                }
                Algorithm::Mhrw { view } => {
                    let cfg = mhrw::MhrwConfig::new(view);
                    match state {
                        None => mhrw::estimate_recoverable(
                            &mut client,
                            query,
                            &cfg,
                            &mut rng,
                            ctl,
                            None,
                        ),
                        Some(SamplerState::Mhrw(s)) => mhrw::estimate_recoverable(
                            &mut client,
                            query,
                            &cfg,
                            &mut rng,
                            ctl,
                            Some(s),
                        ),
                        Some(_) => Err(mismatch()),
                    }
                }
                Algorithm::Snowball { view, order } => {
                    let cfg = snowball::SnowballConfig {
                        view,
                        order,
                        max_nodes: usize::MAX,
                    };
                    match state {
                        None => snowball::estimate_recoverable(
                            &mut client,
                            query,
                            &cfg,
                            &mut rng,
                            ctl,
                            None,
                        ),
                        Some(SamplerState::Snowball(s)) => snowball::estimate_recoverable(
                            &mut client,
                            query,
                            &cfg,
                            &mut rng,
                            ctl,
                            Some(s),
                        ),
                        Some(_) => Err(mismatch()),
                    }
                }
            },
        };
        let cache = *client.cache_stats();
        let resilience = client.resilience().clone();
        let degraded = resilience.degraded() && result.is_ok();
        tracer.set_phase(WalkPhase::Idle);
        tracer.set_level(None);
        if tracer.is_enabled() {
            let outcome = match &result {
                Ok(_) => FieldValue::from("ok"),
                Err(e) => FieldValue::from(e.to_string()),
            };
            tracer.span_end(
                Category::Job,
                "estimate",
                span,
                &[
                    ("charged", FieldValue::U64(budget.spent())),
                    ("outcome", outcome),
                    ("degraded", FieldValue::U64(u64::from(degraded))),
                ],
            );
        }
        RunReport {
            outcome: result,
            charged: budget.spent(),
            cache,
            resilience,
            degraded,
        }
    }

    /// Exact ground truth for `query` (from the simulator's omniscient
    /// view; used only for evaluation, never by the estimators).
    pub fn ground_truth(&self, query: &AggregateQuery) -> Option<f64> {
        query.ground_truth(self.backend.store())
    }
}

/// Dispatches an SRW-family run, matching the checkpoint variant. With
/// `chains > 1` the interleaved multi-chain executor runs (and resumes)
/// instead of the solo walker — the checkpoint variants differ, so a job
/// must keep its chain count across crash/resume.
#[allow(clippy::too_many_arguments)]
fn run_srw(
    client: &mut CachingClient<'_>,
    query: &AggregateQuery,
    cfg: &srw::SrwConfig,
    chains: usize,
    step_cap: Option<usize>,
    seed: u64,
    rng: &mut ChaCha8Rng,
    ctl: &mut CheckpointCtl<'_>,
    state: Option<&SamplerState>,
) -> Result<Estimate, EstimateError> {
    let mut cfg = *cfg;
    if let Some(cap) = step_cap {
        cfg.max_steps = cfg.max_steps.min(cap);
    }
    let cfg = &cfg;
    if chains > 1 {
        let mcfg = multi::MultiSrwConfig { srw: *cfg, chains };
        return match state {
            None => multi::estimate_recoverable(client, query, &mcfg, seed, rng, ctl, None),
            Some(SamplerState::MultiSrw(s)) => {
                multi::estimate_recoverable(client, query, &mcfg, seed, rng, ctl, Some(s))
            }
            Some(_) => Err(mismatch()),
        };
    }
    match state {
        None => srw::estimate_recoverable(client, query, cfg, rng, ctl, None),
        Some(SamplerState::Srw(s)) => {
            srw::estimate_recoverable(client, query, cfg, rng, ctl, Some(s))
        }
        Some(_) => Err(mismatch()),
    }
}

fn mismatch() -> EstimateError {
    EstimateError::Unsupported("checkpoint does not match the job's algorithm")
}

#[cfg(test)]
mod tests {
    use super::*;
    use microblog_platform::scenario::{twitter_2013, Scale};
    use microblog_platform::UserMetric;

    #[test]
    fn facade_runs_every_algorithm() {
        let s = twitter_2013(Scale::Tiny, 81);
        let kw = s.keyword("privacy").unwrap();
        let analyzer = MicroblogAnalyzer::new(&s.platform, ApiProfile::twitter());
        let avg = AggregateQuery::avg(UserMetric::FollowerCount, kw).in_window(s.window);
        let count = AggregateQuery::count(kw).in_window(s.window);
        let truth_avg = analyzer.ground_truth(&avg).unwrap();
        assert!(truth_avg > 0.0);

        for (algo, q) in [
            (
                Algorithm::MaTarw {
                    interval: Some(Duration::DAY),
                },
                &avg,
            ),
            (Algorithm::MaSrw { interval: None }, &avg),
            (Algorithm::SrwTermInduced, &avg),
            (
                Algorithm::MarkRecapture {
                    view: ViewKind::level(Duration::DAY),
                },
                &count,
            ),
        ] {
            let est = analyzer.estimate(q, 50_000, algo, 3).unwrap();
            assert!(
                est.value.is_finite(),
                "{} produced {}",
                algo.name(),
                est.value
            );
            assert!(est.cost <= 50_000);
            assert!(est.samples > 0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let s = twitter_2013(Scale::Tiny, 82);
        let kw = s.keyword("boston").unwrap();
        let analyzer = MicroblogAnalyzer::new(&s.platform, ApiProfile::twitter());
        let q = AggregateQuery::avg(UserMetric::DisplayNameLength, kw).in_window(s.window);
        let algo = Algorithm::MaTarw {
            interval: Some(Duration::DAY),
        };
        let a = analyzer.estimate(&q, 20_000, algo, 9).unwrap();
        let b = analyzer.estimate(&q, 20_000, algo, 9).unwrap();
        assert_eq!(a.value, b.value);
        assert_eq!(a.cost, b.cost);
        // A different RNG seed takes a different path.
        let c = analyzer.estimate(&q, 20_000, algo, 10).unwrap();
        assert_ne!(a.value, c.value);
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(Algorithm::MaTarw { interval: None }.name(), "MA-TARW");
        assert_eq!(Algorithm::MaSrw { interval: None }.name(), "MA-SRW");
        assert_eq!(Algorithm::SrwFullGraph.name(), "SRW(social)");
        assert_eq!(Algorithm::SrwTermInduced.name(), "SRW(term)");
        assert_eq!(
            Algorithm::MarkRecapture {
                view: ViewKind::TermInduced
            }
            .name(),
            "M&R"
        );
    }
}
