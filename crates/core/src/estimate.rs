//! Estimation results and running statistics.

use serde::{Deserialize, Serialize};

/// The output of an estimation run.
#[must_use = "an Estimate embodies spent API budget; dropping it discards the answer"]
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Estimate {
    /// The estimated aggregate value.
    pub value: f64,
    /// Standard error of the estimate across walk instances (when the
    /// algorithm can produce one).
    pub std_err: Option<f64>,
    /// API calls spent producing it (the paper's "query cost").
    pub cost: u64,
    /// Usable samples (nodes) the estimate is based on.
    pub samples: usize,
    /// Independent walk instances averaged (1 for single-chain methods).
    pub instances: usize,
}

impl Estimate {
    /// Relative error against a ground-truth value (the paper's accuracy
    /// metric, §2).
    ///
    /// # Panics
    /// Panics if `truth == 0.0`.
    pub fn relative_error(&self, truth: f64) -> f64 {
        assert!(
            truth != 0.0,
            "relative error undefined for zero ground truth"
        );
        (self.value - truth).abs() / truth.abs()
    }
}

/// Numerically-stable running mean/variance (Welford).
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Snapshot as `(count, mean_bits, m2_bits)` for walker checkpoints
    /// (floats as raw IEEE-754 bits, so serialization is bit-exact).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (self.n, self.mean.to_bits(), self.m2.to_bits())
    }

    /// Rebuilds the accumulator from a [`RunningStats::snapshot`].
    pub fn restore(state: (u64, u64, u64)) -> Self {
        RunningStats {
            n: state.0,
            mean: f64::from_bits(state.1),
            m2: f64::from_bits(state.2),
        }
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; `None` with fewer than two observations.
    pub fn variance(&self) -> Option<f64> {
        if self.n < 2 {
            None
        } else {
            Some(self.m2 / (self.n - 1) as f64)
        }
    }

    /// Standard error of the mean; `None` with fewer than two observations.
    pub fn std_err(&self) -> Option<f64> {
        self.variance().map(|v| (v / self.n as f64).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error() {
        let e = Estimate {
            value: 110.0,
            std_err: None,
            cost: 10,
            samples: 5,
            instances: 1,
        };
        assert!((e.relative_error(100.0) - 0.1).abs() < 1e-12);
        assert!((e.relative_error(-110.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "undefined for zero")]
    fn relative_error_zero_truth() {
        let e = Estimate {
            value: 1.0,
            std_err: None,
            cost: 0,
            samples: 0,
            instances: 0,
        };
        let _ = e.relative_error(0.0);
    }

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Naive unbiased variance = 32/7.
        assert!((s.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((s.std_err().unwrap() - (32.0 / 56.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), None);
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), None);
        assert_eq!(s.std_err(), None);
    }
}
