//! GRAPH-BUILDER: lazily-materialized subgraph views (§4).
//!
//! The analyzer never downloads the social graph. Instead a [`QueryGraph`]
//! answers neighbor queries *on the fly* from USER CONNECTIONS and USER
//! TIMELINE responses, filtered according to the chosen [`ViewKind`]:
//!
//! * [`ViewKind::FullGraph`] — the raw undirected social graph (the
//!   baseline of Figures 2–3);
//! * [`ViewKind::TermInduced`] — only neighbors whose timeline matches the
//!   keyword predicate (§4.1);
//! * [`ViewKind::LevelByLevel`] — the term-induced subgraph minus
//!   intra-level edges (§4.2). `keep_intra` retains a deterministic random
//!   fraction of intra-level edges for the Figure 4 ablation (1.0 = keep
//!   all = term-induced behaviour; 0.0 = the pure level-by-level graph).

use crate::level::LevelAssigner;
use crate::query::AggregateQuery;
use microblog_api::{ApiError, CachingClient, UserView};
use microblog_platform::{Duration, TimeWindow, UserId};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::sync::Arc;

/// Which subgraph the walker sees.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ViewKind {
    /// The whole undirected social graph.
    FullGraph,
    /// Users matching the keyword predicate only.
    TermInduced,
    /// Term-induced minus intra-level edges.
    LevelByLevel {
        /// Bucket width `T`.
        interval: Duration,
        /// Fraction of intra-level edges to *keep* (Fig. 4 ablation;
        /// 0.0 for the paper's level-by-level graph).
        keep_intra: f64,
    },
}

impl ViewKind {
    /// The standard level-by-level view with bucket width `interval`.
    pub fn level(interval: Duration) -> Self {
        ViewKind::LevelByLevel {
            interval,
            keep_intra: 0.0,
        }
    }
}

/// A node's level-split neighbor lists: `(above, below)`. Shared via
/// `Arc` so repeat visits to a hot node hand out the memoized split
/// without cloning both vectors.
pub type LevelSplit = Arc<(Vec<UserId>, Vec<UserId>)>;

/// A lazily-materialized, API-backed graph view scoped to one query.
pub struct QueryGraph<'c, 'p> {
    client: &'c mut CachingClient<'p>,
    kind: ViewKind,
    keyword: microblog_platform::KeywordId,
    window: TimeWindow,
    assigner: Option<LevelAssigner>,
    /// Salt for the deterministic intra-edge coin (Fig. 4 ablation).
    salt: u64,
    /// Memoized member levels (`first_mention` scans a whole timeline, so
    /// recomputing it per neighbor probe would dominate CPU time; the API
    /// cost is already paid once through the caching client).
    level_memo: std::collections::HashMap<UserId, Option<i64>>,
    /// Memoized `(above, below)` splits for the level walks.
    split_memo: std::collections::HashMap<UserId, LevelSplit>,
}

impl<'c, 'p> QueryGraph<'c, 'p> {
    /// Builds the view for `query` over `client`.
    pub fn new(client: &'c mut CachingClient<'p>, query: &AggregateQuery, kind: ViewKind) -> Self {
        let now = client.now();
        let window = query.effective_window(now);
        let assigner = match kind {
            ViewKind::LevelByLevel { interval, .. } => {
                Some(LevelAssigner::new(query.keyword, window, interval))
            }
            _ => None,
        };
        QueryGraph {
            client,
            kind,
            keyword: query.keyword,
            window,
            assigner,
            salt: 0x5EED,
            level_memo: std::collections::HashMap::new(),
            split_memo: std::collections::HashMap::new(),
        }
    }

    /// Overrides the ablation salt (so repeated runs drop *different*
    /// random subsets of intra-level edges).
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// The view kind.
    pub fn kind(&self) -> ViewKind {
        self.kind
    }

    /// The level assigner (present only for level-by-level views).
    pub fn assigner(&self) -> Option<&LevelAssigner> {
        self.assigner.as_ref()
    }

    /// API calls spent so far (through the shared client).
    pub fn cost(&self) -> u64 {
        self.client.cost()
    }

    /// The (cached) timeline+profile view of `u`.
    pub fn view(&mut self, u: UserId) -> Result<Arc<UserView>, ApiError> {
        self.client.user_timeline(u)
    }

    /// Mutable access to the underlying client (seed search etc.).
    pub fn client_mut(&mut self) -> &mut CachingClient<'p> {
        self.client
    }

    /// Shared access to the underlying client (checkpoint capture).
    pub fn client(&self) -> &CachingClient<'p> {
        self.client
    }

    /// Whether `u` belongs to this view's node set.
    pub fn is_member(&mut self, u: UserId) -> Result<bool, ApiError> {
        match self.kind {
            ViewKind::FullGraph => Ok(true),
            _ => Ok(self.member_level(u)?.is_some()),
        }
    }

    /// `u`'s level when it is a member (meaningful for all keyword-scoped
    /// views; `FullGraph` members have no level). Memoized.
    pub fn member_level(&mut self, u: UserId) -> Result<Option<i64>, ApiError> {
        if let Some(&cached) = self.level_memo.get(&u) {
            return Ok(cached);
        }
        let view = self.client.user_timeline(u)?;
        let first = view.first_mention(self.keyword, self.window);
        let level = match (first, &self.assigner) {
            (Some(t), Some(a)) => Some(a.level_of_time(t)),
            (Some(t), None) => Some(t.0), // membership marker; level unused
            (None, _) => None,
        };
        self.level_memo.insert(u, level);
        Ok(level)
    }

    /// Neighbors of `u` under the view.
    ///
    /// For keyword-scoped views, every candidate neighbor's timeline is
    /// fetched (and charged, once) to test membership — this is the real
    /// cost structure the paper pays during its walks.
    pub fn neighbors(&mut self, u: UserId) -> Result<Vec<UserId>, ApiError> {
        let mut out = Vec::new();
        self.neighbors_into(u, &mut out)?;
        Ok(out)
    }

    /// [`Self::neighbors`] into a caller-owned buffer, so the step loops
    /// can reuse one allocation for the whole walk. Clears `out` first;
    /// on error `out` holds an unspecified prefix.
    pub fn neighbors_into(&mut self, u: UserId, out: &mut Vec<UserId>) -> Result<(), ApiError> {
        out.clear();
        let conns = self.client.connections(u)?;
        match self.kind {
            ViewKind::FullGraph => out.extend_from_slice(&conns),
            ViewKind::TermInduced => {
                // Announce the whole candidate batch before the serial
                // membership probes: a fetch scheduler can then overlap
                // the (1 + k) round trips of a step into ~2.
                self.client.announce_timelines(&conns);
                for &v in conns.iter() {
                    if self.is_member(v)? {
                        out.push(v);
                    }
                }
            }
            ViewKind::LevelByLevel { keep_intra, .. } => {
                // Resolve `u`'s own level first: a non-member expands to
                // nothing, and announcing candidates for it would strand
                // their prefetches.
                let lu = match self.member_level(u)? {
                    Some(l) => l,
                    None => return Ok(()),
                };
                self.client.announce_timelines(&conns);
                for &v in conns.iter() {
                    if let Some(lv) = self.member_level(v)? {
                        if lv != lu || self.keep_intra_edge(u, v, keep_intra) {
                            out.push(v);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Warm path for interleaved executors: resolves `u`'s connections
    /// now (consuming any prefetch announced for them) and announces the
    /// candidate membership probes [`Self::neighbors_into`] will issue,
    /// without running the probes. Calling this for every live chain
    /// before any chain steps puts *all* of a round's timeline batches in
    /// flight at once, instead of one chain's batch at a time — the
    /// difference between ~N serial RTT walls per round and ~one.
    ///
    /// Errors are deliberately swallowed: nothing is memoized on failure,
    /// so the step's own fetch re-issues the call and settles walk-ending
    /// conditions exactly as it would have without the warm call. The
    /// fetch sequence is identical with or without a sink attached (the
    /// announces are no-ops without one), which keeps pipelined and
    /// sequential execution — and therefore charging — on one sequence.
    pub fn prefetch_step(&mut self, u: UserId) {
        let Ok(conns) = self.client.connections(u) else {
            return;
        };
        match self.kind {
            ViewKind::FullGraph => {}
            ViewKind::TermInduced => self.client.announce_timelines(&conns),
            ViewKind::LevelByLevel { .. } => {
                // Mirror `neighbors_into`: a non-member's candidates are
                // never probed, so announcing them would strand their
                // prefetches.
                if matches!(self.member_level(u), Ok(Some(_))) {
                    self.client.announce_timelines(&conns);
                }
            }
        }
    }

    /// Partition of `u`'s view-neighbors into `(above, below)` levels:
    /// `above` = strictly earlier levels (the paper's `∇(u)`), `below` =
    /// strictly later (`∆(u)`). Retained intra-level neighbors are
    /// excluded from both.
    ///
    /// # Panics
    /// Panics if called on a non-level view.
    pub fn level_split(&mut self, u: UserId) -> Result<LevelSplit, ApiError> {
        assert!(
            self.assigner.is_some(),
            "level_split requires a level-by-level view"
        );
        if let Some(cached) = self.split_memo.get(&u) {
            return Ok(Arc::clone(cached));
        }
        let lu = match self.member_level(u)? {
            Some(l) => l,
            None => {
                let empty = Arc::new((Vec::new(), Vec::new()));
                self.split_memo.insert(u, Arc::clone(&empty));
                return Ok(empty);
            }
        };
        let conns = self.client.connections(u)?;
        self.client.announce_timelines(&conns);
        let mut above = Vec::new();
        let mut below = Vec::new();
        for &v in conns.iter() {
            if let Some(lv) = self.member_level(v)? {
                if lv < lu {
                    above.push(v);
                } else if lv > lu {
                    below.push(v);
                }
            }
        }
        let split = Arc::new((above, below));
        self.split_memo.insert(u, Arc::clone(&split));
        Ok(split)
    }

    /// Deterministic coin for the Fig. 4 ablation: whether the intra-level
    /// edge `(u, v)` survives when keeping a `keep` fraction.
    fn keep_intra_edge(&self, u: UserId, v: UserId, keep: f64) -> bool {
        if keep >= 1.0 {
            return true;
        }
        if keep <= 0.0 {
            return false;
        }
        let (a, b) = if u.0 <= v.0 { (u.0, v.0) } else { (v.0, u.0) };
        let h = splitmix64(((a as u64) << 32 | b as u64) ^ self.salt);
        (h as f64 / u64::MAX as f64) < keep
    }
}

/// SplitMix64 — cheap deterministic hashing for the edge coin and the
/// parallel chains' per-chain seed stream.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Adapter letting the generic random walks of `microblog-graph` run over
/// a [`QueryGraph`] (node ids are raw `u32` user ids).
impl microblog_graph::walk::NeighborSource for QueryGraph<'_, '_> {
    type Error = ApiError;

    fn neighbors(&mut self, u: u32) -> Result<Cow<'_, [u32]>, ApiError> {
        let nbrs = QueryGraph::neighbors(self, UserId(u))?;
        Ok(Cow::Owned(nbrs.into_iter().map(|v| v.0).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microblog_api::{ApiProfile, MicroblogClient};
    use microblog_platform::scenario::{twitter_2013, Scale};
    use microblog_platform::UserMetric;

    fn setup() -> (microblog_platform::scenario::Scenario, AggregateQuery) {
        let s = twitter_2013(Scale::Tiny, 21);
        let kw = s.keyword("privacy").unwrap();
        let q = AggregateQuery::avg(UserMetric::FollowerCount, kw).in_window(s.window);
        (s, q)
    }

    #[test]
    fn term_induced_filters_non_members() {
        let (s, q) = setup();
        let mut client =
            CachingClient::new(MicroblogClient::new(&s.platform, ApiProfile::twitter()));
        let seeds = client.search(q.keyword).unwrap();
        let seed = seeds[0].author;
        let mut full = QueryGraph::new(&mut client, &q, ViewKind::FullGraph);
        let all = full.neighbors(seed).unwrap();
        let mut term = QueryGraph::new(&mut client, &q, ViewKind::TermInduced);
        let members = term.neighbors(seed).unwrap();
        assert!(members.len() <= all.len());
        // Every term-induced neighbor is a full-graph neighbor and a member.
        for v in &members {
            assert!(all.contains(v));
            assert!(term.is_member(*v).unwrap());
        }
        // Every excluded neighbor is a non-member.
        for v in &all {
            if !members.contains(v) {
                assert!(!term.is_member(*v).unwrap());
            }
        }
    }

    #[test]
    fn level_view_drops_exactly_intra_edges() {
        let (s, q) = setup();
        let mut client =
            CachingClient::new(MicroblogClient::new(&s.platform, ApiProfile::twitter()));
        let seeds = client.search(q.keyword).unwrap();
        let seed = seeds[0].author;
        let interval = Duration::DAY;

        let mut term = QueryGraph::new(&mut client, &q, ViewKind::TermInduced);
        let term_nbrs = term.neighbors(seed).unwrap();
        let mut level = QueryGraph::new(&mut client, &q, ViewKind::level(interval));
        let level_nbrs = level.neighbors(seed).unwrap();
        let lu = level.member_level(seed).unwrap().unwrap();
        for v in &term_nbrs {
            let lv = level.member_level(*v).unwrap().unwrap();
            assert_eq!(
                level_nbrs.contains(v),
                lv != lu,
                "edge to level {lv} vs own {lu}"
            );
        }
        // keep_intra = 1.0 restores the term-induced neighbor set.
        let mut keep_all = QueryGraph::new(
            &mut client,
            &q,
            ViewKind::LevelByLevel {
                interval,
                keep_intra: 1.0,
            },
        );
        assert_eq!(keep_all.neighbors(seed).unwrap(), term_nbrs);
    }

    #[test]
    fn keep_intra_fraction_is_monotone_and_deterministic() {
        let (s, q) = setup();
        let mut client =
            CachingClient::new(MicroblogClient::new(&s.platform, ApiProfile::twitter()));
        let seeds = client.search(q.keyword).unwrap();
        let interval = Duration::DAY;
        let count_with = |client: &mut CachingClient, keep: f64| -> usize {
            let mut g = QueryGraph::new(
                client,
                &q,
                ViewKind::LevelByLevel {
                    interval,
                    keep_intra: keep,
                },
            );
            seeds
                .iter()
                .take(5)
                .map(|h| g.neighbors(h.author).unwrap().len())
                .sum()
        };
        let none = count_with(&mut client, 0.0);
        let half = count_with(&mut client, 0.5);
        let all = count_with(&mut client, 1.0);
        assert!(none <= half && half <= all, "{none} {half} {all}");
        // Deterministic: same salt, same result.
        assert_eq!(half, count_with(&mut client, 0.5));
    }

    #[test]
    fn level_split_partitions_neighbors() {
        let (s, q) = setup();
        let mut client =
            CachingClient::new(MicroblogClient::new(&s.platform, ApiProfile::twitter()));
        let seeds = client.search(q.keyword).unwrap();
        let mut g = QueryGraph::new(&mut client, &q, ViewKind::level(Duration::DAY));
        let u = seeds[0].author;
        let lu = g.member_level(u).unwrap().unwrap();
        let split = g.level_split(u).unwrap();
        let (above, below) = (split.0.clone(), split.1.clone());
        let merged = g.neighbors(u).unwrap();
        assert_eq!(above.len() + below.len(), merged.len());
        // Repeat lookups hand out the same memoized split, not a copy.
        assert!(Arc::ptr_eq(&split, &g.level_split(u).unwrap()));
        for v in &above {
            assert!(g.member_level(*v).unwrap().unwrap() < lu);
        }
        for v in &below {
            assert!(g.member_level(*v).unwrap().unwrap() > lu);
        }
    }

    #[test]
    fn full_graph_neighbors_match_connections() {
        let (s, q) = setup();
        let mut client =
            CachingClient::new(MicroblogClient::new(&s.platform, ApiProfile::twitter()));
        let expected: Vec<UserId> = client.connections(UserId(0)).unwrap().to_vec();
        let mut g = QueryGraph::new(&mut client, &q, ViewKind::FullGraph);
        assert_eq!(g.neighbors(UserId(0)).unwrap(), expected);
        assert!(g.is_member(UserId(0)).unwrap());
    }
}
