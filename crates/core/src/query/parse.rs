// ma-lint: allow-file(panic-safety) reason="parser expects fire only after the matching token was peeked; grammar invariants"
//! A small SQL-ish surface syntax for aggregate queries (§2 of the paper
//! writes them as `SELECT AGGR(f(u)) FROM U WHERE CONDITION`).
//!
//! Grammar (case-insensitive keywords; whitespace-separated):
//!
//! ```text
//! query      := SELECT agg FROM USERS WHERE predicates
//! agg        := COUNT(*) | COUNT(USERS)
//!             | AVG(metric) | SUM(metric)
//!             | AVG(LIKES PER POST)            -- Fig. 14's per-post ratio
//! metric     := FOLLOWERS | FOLLOWEES | NAME_LENGTH | POSTS
//!             | KEYWORD_POSTS | KEYWORD_LIKES | ACCOUNT_AGE_DAYS
//! predicates := predicate (AND predicate)*
//! predicate  := KEYWORD = 'text'
//!             | TIME BETWEEN DAY n AND DAY m
//!             | AGE DISCLOSED | AGE >= n
//!             | GENDER = MALE|FEMALE|UNDISCLOSED
//!             | REGION = n
//!             | FOLLOWERS >= n | FOLLOWERS < n
//! ```
//!
//! Exactly one `KEYWORD` predicate is required (the paper's queries always
//! carry one).
//!
//! ```
//! use microblog_analyzer::query::parse::parse_query;
//! # use microblog_platform::post::KeywordCatalog;
//! let mut catalog = KeywordCatalog::new();
//! catalog.intern("privacy");
//! let q = parse_query(
//!     "SELECT AVG(FOLLOWERS) FROM USERS \
//!      WHERE KEYWORD = 'privacy' AND TIME BETWEEN DAY 0 AND DAY 303",
//!     &catalog,
//! ).unwrap();
//! assert!(q.window.is_some());
//! ```

use crate::query::{Aggregate, AggregateQuery};
use microblog_platform::metric::ProfilePredicate;
use microblog_platform::post::KeywordCatalog;
use microblog_platform::{Gender, TimeWindow, Timestamp, UserMetric};

/// Parse failure with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// Tokenizer: uppercased words, numbers, quoted strings, and punctuation.
fn tokenize(input: &str) -> Result<Vec<String>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some(c) => s.push(c),
                        None => return err("unterminated string literal"),
                    }
                }
                tokens.push(format!("'{s}"));
            }
            '(' | ')' | '=' | '*' | ',' => {
                chars.next();
                tokens.push(c.to_string());
            }
            '>' | '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(format!("{c}="));
                } else {
                    tokens.push(c.to_string());
                }
            }
            _ => {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '$' {
                        word.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if word.is_empty() {
                    return err(format!("unexpected character '{c}'"));
                }
                tokens.push(word.to_uppercase());
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<String>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(|s| s.as_str())
    }

    /// Consumes and returns the next token. Each position is consumed at
    /// most once, so the token is *moved* out of its slot — no caller
    /// needs to copy it just to keep borrowing rules happy.
    fn next(&mut self) -> Result<String, ParseError> {
        let t = self
            .tokens
            .get_mut(self.pos)
            .map(std::mem::take)
            .ok_or_else(|| ParseError("unexpected end".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, token: &str) -> Result<(), ParseError> {
        let got = self.next()?;
        if got == token {
            Ok(())
        } else {
            err(format!("expected '{token}', got '{got}'"))
        }
    }

    fn number(&mut self) -> Result<i64, ParseError> {
        let t = self.next()?;
        t.parse()
            .map_err(|_| ParseError(format!("expected a number, got '{t}'")))
    }

    fn metric(&mut self) -> Result<UserMetric, ParseError> {
        let t = self.next()?;
        Ok(match t.as_str() {
            "FOLLOWERS" => UserMetric::FollowerCount,
            "FOLLOWEES" => UserMetric::FolloweeCount,
            "NAME_LENGTH" => UserMetric::DisplayNameLength,
            "POSTS" => UserMetric::TotalPostCount,
            "KEYWORD_POSTS" => UserMetric::KeywordPostCount,
            "KEYWORD_LIKES" => UserMetric::KeywordPostLikes,
            "ACCOUNT_AGE_DAYS" => UserMetric::AccountAgeDays,
            "AGE" => UserMetric::AgeYears,
            other => return err(format!("unknown metric '{other}'")),
        })
    }
}

/// Parses `input` against `catalog` (the keyword must already exist on the
/// platform).
pub fn parse_query(input: &str, catalog: &KeywordCatalog) -> Result<AggregateQuery, ParseError> {
    let mut p = Parser {
        tokens: tokenize(input)?,
        pos: 0,
    };
    p.expect("SELECT")?;
    let agg = parse_aggregate(&mut p)?;
    p.expect("FROM")?;
    p.expect("USERS")?;
    p.expect("WHERE")?;

    let mut keyword = None;
    let mut window = None;
    let mut predicates = Vec::new();
    loop {
        match p.next()?.as_str() {
            "KEYWORD" => {
                p.expect("=")?;
                let lit = p.next()?;
                let text = lit
                    .strip_prefix('\'')
                    .ok_or_else(|| ParseError("KEYWORD needs a quoted string".into()))?;
                let id = catalog
                    .get(text)
                    .ok_or_else(|| ParseError(format!("unknown keyword '{text}'")))?;
                if keyword.replace(id).is_some() {
                    return err("duplicate KEYWORD predicate");
                }
            }
            "TIME" => {
                p.expect("BETWEEN")?;
                p.expect("DAY")?;
                let from = p.number()?;
                p.expect("AND")?;
                p.expect("DAY")?;
                let to = p.number()?;
                if to < from {
                    return err("TIME window end before start");
                }
                window = Some(TimeWindow::new(
                    Timestamp::at_day(from),
                    Timestamp::at_day(to),
                ));
            }
            "GENDER" => {
                p.expect("=")?;
                let g = match p.next()?.as_str() {
                    "MALE" => Gender::Male,
                    "FEMALE" => Gender::Female,
                    "UNDISCLOSED" => Gender::Undisclosed,
                    other => return err(format!("unknown gender '{other}'")),
                };
                predicates.push(ProfilePredicate::GenderIs(g));
            }
            "REGION" => {
                p.expect("=")?;
                let r = p.number()?;
                if !(0..=255).contains(&r) {
                    return err("REGION out of range");
                }
                predicates.push(ProfilePredicate::RegionIs(r as u8));
            }
            "AGE" => {
                let op = p.next()?;
                match op.as_str() {
                    "DISCLOSED" => predicates.push(ProfilePredicate::AgeDisclosed),
                    ">=" => {
                        let n = p.number()?;
                        if !(0..=255).contains(&n) {
                            return err("AGE bound out of range");
                        }
                        predicates.push(ProfilePredicate::MinAge(n as u8));
                    }
                    other => return err(format!("AGE supports DISCLOSED and >=, got '{other}'")),
                }
            }
            "FOLLOWERS" => {
                let op = p.next()?;
                let n = p.number()?;
                if n < 0 {
                    return err("FOLLOWERS bound must be non-negative");
                }
                match op.as_str() {
                    ">=" => predicates.push(ProfilePredicate::MinFollowers(n as usize)),
                    "<" => predicates.push(ProfilePredicate::MaxFollowers(n as usize)),
                    other => return err(format!("FOLLOWERS supports >= and <, got '{other}'")),
                }
            }
            other => return err(format!("unknown predicate '{other}'")),
        }
        match p.peek() {
            Some("AND") => {
                p.pos += 1;
            }
            None => break,
            Some(other) => return err(format!("expected AND or end of query, got '{other}'")),
        }
    }

    let keyword = match keyword {
        Some(k) => k,
        None => return err("queries require exactly one KEYWORD predicate"),
    };
    Ok(AggregateQuery {
        aggregate: agg,
        keyword,
        window,
        predicates,
    })
}

fn parse_aggregate(p: &mut Parser) -> Result<Aggregate, ParseError> {
    let head = p.next()?;
    p.expect("(")?;
    let agg = match head.as_str() {
        "COUNT" => {
            let arg = p.next()?;
            if arg != "*" && arg != "USERS" {
                return err(format!("COUNT takes * or USERS, got '{arg}'"));
            }
            Aggregate::Count
        }
        "AVG" => {
            if p.peek() == Some("LIKES") {
                p.pos += 1;
                p.expect("PER")?;
                p.expect("POST")?;
                Aggregate::RatioOfSums {
                    numerator: UserMetric::KeywordPostLikes,
                    denominator: UserMetric::KeywordPostCount,
                }
            } else {
                Aggregate::Avg(p.metric()?)
            }
        }
        "SUM" => Aggregate::Sum(p.metric()?),
        other => return err(format!("unknown aggregate '{other}'")),
    };
    p.expect(")")?;
    Ok(agg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> KeywordCatalog {
        let mut c = KeywordCatalog::new();
        c.intern("privacy");
        c.intern("new york");
        c
    }

    #[test]
    fn parses_the_running_example() {
        let q = parse_query(
            "SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'privacy' \
             AND TIME BETWEEN DAY 0 AND DAY 303",
            &catalog(),
        )
        .unwrap();
        assert_eq!(q.aggregate, Aggregate::Avg(UserMetric::FollowerCount));
        assert_eq!(
            q.window.unwrap().length(),
            microblog_platform::Duration::days(303)
        );
        assert!(q.predicates.is_empty());
    }

    #[test]
    fn parses_count_and_predicates() {
        let q = parse_query(
            "select count(*) from users where keyword = 'privacy' \
             and gender = male and followers >= 10 and region = 3",
            &catalog(),
        )
        .unwrap();
        assert_eq!(q.aggregate, Aggregate::Count);
        assert_eq!(q.predicates.len(), 3);
        assert!(matches!(
            q.predicates[0],
            ProfilePredicate::GenderIs(Gender::Male)
        ));
        assert!(matches!(
            q.predicates[1],
            ProfilePredicate::MinFollowers(10)
        ));
        assert!(matches!(q.predicates[2], ProfilePredicate::RegionIs(3)));
    }

    #[test]
    fn parses_age_metric_and_predicates() {
        let q = parse_query(
            "SELECT AVG(AGE) FROM USERS WHERE KEYWORD = 'privacy' AND AGE DISCLOSED AND AGE >= 18",
            &catalog(),
        )
        .unwrap();
        assert_eq!(q.aggregate, Aggregate::Avg(UserMetric::AgeYears));
        assert!(matches!(q.predicates[0], ProfilePredicate::AgeDisclosed));
        assert!(matches!(q.predicates[1], ProfilePredicate::MinAge(18)));
        assert!(parse_query(
            "SELECT COUNT(*) FROM USERS WHERE KEYWORD = 'privacy' AND AGE < 5",
            &catalog()
        )
        .is_err());
    }

    #[test]
    fn parses_per_post_ratio_and_multiword_keyword() {
        let q = parse_query(
            "SELECT AVG(LIKES PER POST) FROM USERS WHERE KEYWORD = 'New York'",
            &catalog(),
        )
        .unwrap();
        assert!(matches!(q.aggregate, Aggregate::RatioOfSums { .. }));
    }

    #[test]
    fn rejects_malformed_queries() {
        let c = catalog();
        for (query, needle) in [
            ("SELECT AVG(FOLLOWERS) FROM USERS WHERE TIME BETWEEN DAY 0 AND DAY 5", "KEYWORD"),
            ("SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'nope'", "unknown keyword"),
            ("SELECT MEDIAN(FOLLOWERS) FROM USERS WHERE KEYWORD = 'privacy'", "unknown aggregate"),
            ("SELECT AVG(SHOE_SIZE) FROM USERS WHERE KEYWORD = 'privacy'", "unknown metric"),
            ("SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = privacy", "quoted"),
            (
                "SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'privacy' AND TIME BETWEEN DAY 9 AND DAY 2",
                "end before start",
            ),
            (
                "SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'privacy' KEYWORD = 'privacy'",
                "expected AND",
            ),
            ("SELECT COUNT(FOLLOWERS) FROM USERS WHERE KEYWORD = 'privacy'", "COUNT takes"),
            ("SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'privacy' AND", "unexpected end"),
            (
                "SELECT AVG(FOLLOWERS) FROM USERS WHERE KEYWORD = 'privacy' AND FOLLOWERS > 3",
                "supports >=",
            ),
        ] {
            let e = parse_query(query, &c).unwrap_err();
            assert!(e.0.contains(needle), "query {query:?}: error {e:?} missing {needle:?}");
        }
    }

    #[test]
    fn tokenizer_handles_strings_and_operators() {
        let t = tokenize("AVG >= 'two words' (x)").unwrap();
        assert_eq!(t, vec!["AVG", ">=", "'two words", "(", "X", ")"]);
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("#").is_err());
    }
}
