//! Time-interval selection for the level-by-level subgraph (§4.2.3).
//!
//! Given candidate bucket widths `T` (the paper sweeps 2H..1M, Fig. 5),
//! run a cheap *pilot* random walk per candidate, estimate the stylized
//! model parameters `h` (number of levels) and `d` (mean adjacent-level
//! degree), score each candidate with the Eq. (3) closed-form conductance,
//! and pick the maximum. Only the ranking matters, so the unknown graph
//! size `n` is fixed to a common reference value across candidates.

use crate::checkpoint::{CheckpointCtl, CheckpointRng, PilotState, SamplerState};
use crate::error::EstimateError;
use crate::query::AggregateQuery;
use crate::view::{QueryGraph, ViewKind};
use microblog_api::{ApiError, CachingClient};
use microblog_graph::conductance::conductance_level;
use microblog_obs::{Category, FieldValue, WalkPhase};
use microblog_platform::{Duration, UserId};
use rand::Rng;

/// The candidate intervals of Figure 5 (2H, 4H, 12H, 1D, 2D, 1W, 1M).
pub fn candidate_intervals() -> Vec<Duration> {
    vec![
        Duration::hours(2),
        Duration::hours(4),
        Duration::hours(12),
        Duration::DAY,
        Duration::days(2),
        Duration::WEEK,
        Duration::MONTH,
    ]
}

/// The outcome of scoring one candidate interval.
#[derive(Clone, Copy, Debug)]
pub struct IntervalScore {
    /// The candidate bucket width.
    pub interval: Duration,
    /// Estimated number of levels `h`.
    pub h: f64,
    /// Estimated mean adjacent-level degree `d`.
    pub d: f64,
    /// Eq. (3) conductance at the reference size (NaN when out of domain).
    pub conductance: f64,
}

/// Scores every candidate with a pilot walk of `pilot_steps` transitions
/// and returns all scores, best first.
///
/// Budget exhaustion mid-pilot is tolerated: candidates already scored are
/// used, and the current candidate is scored from whatever the partial
/// pilot saw.
pub fn score_intervals<R: CheckpointRng>(
    client: &mut CachingClient<'_>,
    query: &AggregateQuery,
    seeds: &[UserId],
    candidates: &[Duration],
    pilot_steps: usize,
    rng: &mut R,
) -> Result<Vec<IntervalScore>, EstimateError> {
    score_intervals_recoverable(
        client,
        query,
        seeds,
        candidates,
        pilot_steps,
        rng,
        &mut CheckpointCtl::disabled(),
        None,
    )
}

/// [`score_intervals`] with checkpointing: a [`SamplerState::Pilot`]
/// checkpoint is offered before each candidate's pilot walk, and `resume`
/// skips candidates whose scores the checkpoint already carries (their
/// pilot walks' RNG draws are reflected in the restored RNG state).
#[allow(clippy::too_many_arguments)]
pub fn score_intervals_recoverable<R: CheckpointRng>(
    client: &mut CachingClient<'_>,
    query: &AggregateQuery,
    seeds: &[UserId],
    candidates: &[Duration],
    pilot_steps: usize,
    rng: &mut R,
    ctl: &mut CheckpointCtl<'_>,
    resume: Option<&PilotState>,
) -> Result<Vec<IntervalScore>, EstimateError> {
    if seeds.is_empty() {
        return Err(EstimateError::NoSeeds);
    }
    let tracer = client.tracer().clone();
    tracer.set_phase(WalkPhase::Pilot);
    // Bracket the whole candidate sweep so live telemetry can attribute
    // wall-to-wall pilot latency to the `pilot` pipeline stage.
    let pilot_span = tracer.span_start(
        Category::Walk,
        "pilot",
        &[("candidates", FieldValue::from(candidates.len()))],
    );
    let mut scores = Vec::with_capacity(candidates.len());
    let mut done: Vec<(i64, u64, u64)> = Vec::new();
    if let Some(state) = resume {
        for &(secs, h_bits, d_bits) in &state.done {
            scores.push(IntervalScore {
                interval: Duration(secs),
                h: f64::from_bits(h_bits),
                d: f64::from_bits(d_bits),
                conductance: f64::NAN,
            });
        }
        done.clone_from(&state.done);
    }
    for &interval in candidates.iter().skip(done.len()) {
        // Safe point between candidates: completed scores plus the RNG
        // position fully determine the remaining pilots.
        ctl.tick(|| {
            Some((
                done.len() as u64,
                rng.rng_state()?,
                client.checkpoint_state(),
                SamplerState::Pilot(PilotState { done: done.clone() }),
            ))
        });
        let (h, d) = match pilot(client, query, interval, seeds, pilot_steps, rng) {
            Ok(hd) => hd,
            Err(e) if e.ends_walk() => break,
            Err(e) => {
                tracer.span_end(
                    Category::Walk,
                    "pilot",
                    pilot_span,
                    &[("scored", FieldValue::from(scores.len()))],
                );
                return Err(e.into());
            }
        };
        tracer.emit(
            Category::Walk,
            "pilot",
            &[
                ("interval_secs", FieldValue::I64(interval.0)),
                ("h", FieldValue::F64(h)),
                ("d", FieldValue::F64(d)),
            ],
        );
        done.push((interval.0, h.to_bits(), d.to_bits()));
        // Reference size: common across candidates, far enough above d·h
        // that Eq. (3)'s domain (d < n/h) holds for every candidate.
        scores.push(IntervalScore {
            interval,
            h,
            d,
            conductance: f64::NAN,
        });
    }
    tracer.span_end(
        Category::Walk,
        "pilot",
        pilot_span,
        &[("scored", FieldValue::from(scores.len()))],
    );
    if scores.is_empty() {
        return Err(EstimateError::NoSamples);
    }
    let n_ref = scores
        .iter()
        .map(|s| s.h * (s.d + 1.0) * 4.0)
        .fold(1024.0f64, f64::max);
    for s in &mut scores {
        s.conductance = conductance_level(n_ref, s.h.max(2.0), s.d.max(0.25));
    }
    scores.sort_by(|a, b| {
        let ka = if a.conductance.is_nan() {
            f64::NEG_INFINITY
        } else {
            a.conductance
        };
        let kb = if b.conductance.is_nan() {
            f64::NEG_INFINITY
        } else {
            b.conductance
        };
        kb.partial_cmp(&ka).unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(scores)
}

/// Picks the best interval (first of [`score_intervals`]).
pub fn select_interval<R: CheckpointRng>(
    client: &mut CachingClient<'_>,
    query: &AggregateQuery,
    seeds: &[UserId],
    pilot_steps: usize,
    rng: &mut R,
) -> Result<IntervalScore, EstimateError> {
    select_interval_recoverable(
        client,
        query,
        seeds,
        pilot_steps,
        rng,
        &mut CheckpointCtl::disabled(),
        None,
    )
}

/// [`select_interval`] with checkpointing (see
/// [`score_intervals_recoverable`]).
pub fn select_interval_recoverable<R: CheckpointRng>(
    client: &mut CachingClient<'_>,
    query: &AggregateQuery,
    seeds: &[UserId],
    pilot_steps: usize,
    rng: &mut R,
    ctl: &mut CheckpointCtl<'_>,
    resume: Option<&PilotState>,
) -> Result<IntervalScore, EstimateError> {
    let scores = score_intervals_recoverable(
        client,
        query,
        seeds,
        &candidate_intervals(),
        pilot_steps,
        rng,
        ctl,
        resume,
    )?;
    let best = scores[0]; // ma-lint: allow(panic-safety) reason="score_intervals yields one score per candidate; the candidate list is non-empty"
    client.tracer().emit(
        Category::Walk,
        "interval_selected",
        &[
            ("interval_secs", FieldValue::I64(best.interval.0)),
            ("conductance", FieldValue::F64(best.conductance)),
        ],
    );
    Ok(best)
}

/// One pilot walk: a short simple random walk over the level-by-level view
/// for the candidate interval; returns `(h_est, d_est)`.
fn pilot<R: Rng>(
    client: &mut CachingClient<'_>,
    query: &AggregateQuery,
    interval: Duration,
    seeds: &[UserId],
    steps: usize,
    rng: &mut R,
) -> Result<(f64, f64), ApiError> {
    let mut graph = QueryGraph::new(client, query, ViewKind::level(interval));
    let mut current = seeds[rng.gen_range(0..seeds.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
    let mut min_level = i64::MAX;
    let mut max_level = i64::MIN;
    let mut degree_sum = 0.0f64;
    let mut visited = 0usize;
    let mut nbrs = Vec::new();
    for _ in 0..steps.max(1) {
        let level = match graph.member_level(current)? {
            Some(l) => l,
            None => break,
        };
        min_level = min_level.min(level);
        max_level = max_level.max(level);
        let split = graph.level_split(current)?;
        // Adjacent-level degree in the stylized model is per-direction;
        // average the two directions.
        degree_sum += (split.0.len() + split.1.len()) as f64 / 2.0;
        visited += 1;
        graph.neighbors_into(current, &mut nbrs)?;
        if nbrs.is_empty() {
            // Dangling: restart from another seed.
            current = seeds[rng.gen_range(0..seeds.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
            continue;
        }
        current = nbrs[rng.gen_range(0..nbrs.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
    }
    if visited == 0 {
        return Ok((2.0, 1.0));
    }
    // h: observed level span, extrapolated by the assigner's full span if
    // the pilot saw only one level.
    let observed_h = (max_level - min_level + 1) as f64;
    let full_h = graph
        .assigner()
        .map_or(observed_h, |a| a.level_count() as f64);
    let h = observed_h.max(2.0).min(full_h.max(2.0));
    let d = (degree_sum / visited as f64).max(0.25);
    Ok((h, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeds::fetch_seeds;
    use microblog_api::{ApiProfile, MicroblogClient, QueryBudget};
    use microblog_platform::scenario::{twitter_2013, Scale};
    use microblog_platform::UserMetric;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn scores_cover_candidates_and_pick_finite_best() {
        let s = twitter_2013(Scale::Tiny, 41);
        let kw = s.keyword("new york").unwrap();
        let q =
            crate::query::AggregateQuery::avg(UserMetric::FollowerCount, kw).in_window(s.window);
        let mut client =
            CachingClient::new(MicroblogClient::new(&s.platform, ApiProfile::twitter()));
        let seeds = fetch_seeds(&mut client, &q).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let scores = score_intervals(
            &mut client,
            &q,
            &seeds,
            &candidate_intervals(),
            15,
            &mut rng,
        )
        .unwrap();
        assert_eq!(scores.len(), candidate_intervals().len());
        // Sorted best-first.
        for w in scores.windows(2) {
            let a = if w[0].conductance.is_nan() {
                f64::NEG_INFINITY
            } else {
                w[0].conductance
            };
            let b = if w[1].conductance.is_nan() {
                f64::NEG_INFINITY
            } else {
                w[1].conductance
            };
            assert!(a >= b);
        }
        let best = select_interval(&mut client, &q, &seeds, 15, &mut rng).unwrap();
        assert!(best.conductance.is_finite());
        assert!(best.h >= 2.0);
        // Longer intervals mean fewer levels.
        let h_2h = scores
            .iter()
            .find(|s| s.interval == Duration::hours(2))
            .unwrap()
            .h;
        let h_1m = scores
            .iter()
            .find(|s| s.interval == Duration::MONTH)
            .unwrap()
            .h;
        assert!(h_1m <= h_2h);
    }

    #[test]
    fn budget_exhaustion_mid_scan_uses_partial_scores() {
        let s = twitter_2013(Scale::Tiny, 42);
        let kw = s.keyword("privacy").unwrap();
        let q = crate::query::AggregateQuery::count(kw).in_window(s.window);
        // Enough budget for the search and roughly one pilot.
        let budget = QueryBudget::limited(400);
        let mut client = CachingClient::new(MicroblogClient::with_budget(
            &s.platform,
            ApiProfile::twitter(),
            budget,
        ));
        let seeds = fetch_seeds(&mut client, &q).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        match score_intervals(
            &mut client,
            &q,
            &seeds,
            &candidate_intervals(),
            25,
            &mut rng,
        ) {
            Ok(scores) => assert!(!scores.is_empty()),
            Err(e) => assert_eq!(e, EstimateError::NoSamples),
        }
    }
}
