//! MA-TARW: the topology-aware, level-by-level random walk (§5).
//!
//! Each *instance* starts at a uniformly random seed (a search-returned
//! user on the recent levels), climbs the level-by-level subgraph one
//! strictly-earlier level at a time until it reaches a root (no earlier
//! neighbors), then descends to strictly-later levels until it reaches a
//! sink — at most `2(h−1)` transitions, with **no burn-in**.
//!
//! For every visited node `u`, `ESTIMATE-p` (Algorithm 2) produces an
//! unbiased estimate of the probability the phase visits `u`:
//!
//! * up phase:   `p̄(u) = [u∈seeds]/s + Σ_{v∈∆(u)} p̄(v)/|∇(v)|`
//! * down phase: `p̂(u) = p̄(u)` at roots, else `Σ_{v∈∇(u)} p̂(v)/|∆(v)|`
//!
//! (`∇`/`∆` are the neighbors on earlier/later levels.) The seed-mass term
//! `[u∈seeds]/s` generalizes the paper's bottom-level base case to seeds
//! that are not literal sinks, which real search results need.
//!
//! SUM/COUNT estimates are Hansen–Hurwitz sums `Σ f(u)/p(u)` per phase;
//! each phase sum is unbiased for the population total, and the instance
//! estimate is the mean of the two (see the crate-level fidelity note on
//! Algorithm 3's printed normalization). AVG is the ratio of the SUM and
//! COUNT totals across instances. Root probabilities can be cached and
//! reused across instances (§5.2's "single cache" optimization).

use crate::checkpoint::{CheckpointCtl, CheckpointRng, InstanceState, SamplerState, TarwState};
use crate::error::EstimateError;
use crate::estimate::{Estimate, RunningStats};
use crate::interval::select_interval_recoverable;
use crate::query::{Aggregate, AggregateQuery};
use crate::seeds::fetch_seeds;
use crate::view::{QueryGraph, ViewKind};
use microblog_api::{ApiError, CachingClient};
use microblog_obs::{Category, FieldValue, Tracer, WalkPhase};
use microblog_platform::{Duration, UserId};
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// How MA-TARW obtains the visit probabilities `p(u)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PMode {
    /// Evaluate the Eq. (6) recursion *exactly* with memoization: instead
    /// of sampling one random below-neighbor per step (Algorithm 2), sum
    /// over all of them, caching each node's value. The client-side cache
    /// makes this affordable (each node's neighborhood is fetched once,
    /// like the paper's own §5.2 root cache but for every node), and it
    /// eliminates the heavy-tailed `1/p̂` noise of sampled estimates —
    /// which is fatal when the search API yields only a handful of seeds.
    Exact,
    /// The paper's Algorithm 2: one random descent per draw, `draws`
    /// independent draws averaged per node (optionally accumulated in a
    /// per-node cache across instances).
    Sampled {
        /// Draws averaged per node.
        draws: usize,
        /// Accumulate draws across instances in a per-node cache.
        cache: bool,
    },
}

/// Configuration of MA-TARW.
#[derive(Clone, Copy, Debug)]
pub struct TarwConfig {
    /// Level interval `T`; `None` selects one with pilot walks (§4.2.3).
    pub interval: Option<Duration>,
    /// Pilot-walk transitions per candidate interval when auto-selecting.
    pub pilot_steps: usize,
    /// Visit-probability estimation mode.
    pub p_mode: PMode,
    /// Hard cap on walk instances (the budget is the usual stopper; the
    /// cap guards unlimited-budget runs once every response is cached).
    pub max_instances: usize,
}

impl Default for TarwConfig {
    fn default() -> Self {
        TarwConfig {
            interval: None,
            pilot_steps: 12,
            p_mode: PMode::Exact,
            max_instances: 800,
        }
    }
}

/// Per-instance Hansen–Hurwitz sums.
#[derive(Clone, Copy, Debug, Default)]
struct InstanceSums {
    /// Σ f(u)/p(u) — the SUM-metric numerator.
    num: f64,
    /// Σ den(u)/p(u) — match indicators (AVG) or denominator metric.
    den: f64,
    /// Σ match(u)/p(u) — the COUNT estimate.
    count: f64,
    /// Nodes with a usable (positive) probability estimate.
    used: usize,
}

impl InstanceSums {
    fn snapshot(&self) -> InstanceState {
        InstanceState {
            num_bits: self.num.to_bits(),
            den_bits: self.den.to_bits(),
            count_bits: self.count.to_bits(),
            used: self.used as u64,
        }
    }

    fn restore(state: &InstanceState) -> Self {
        InstanceSums {
            num: f64::from_bits(state.num_bits),
            den: f64::from_bits(state.den_bits),
            count: f64::from_bits(state.count_bits),
            used: state.used as usize,
        }
    }
}

/// Runs MA-TARW until the budget is exhausted (or `max_instances`).
pub fn estimate<R: CheckpointRng>(
    client: &mut CachingClient<'_>,
    query: &AggregateQuery,
    config: &TarwConfig,
    rng: &mut R,
) -> Result<Estimate, EstimateError> {
    estimate_recoverable(
        client,
        query,
        config,
        rng,
        &mut CheckpointCtl::disabled(),
        None,
    )
}

/// [`estimate`] with checkpointing: emits [`SamplerState::Pilot`]
/// checkpoints during interval selection and [`SamplerState::Tarw`]
/// checkpoints between walk instances, and resumes bit-identically from
/// either (client memo and RNG restored by the caller).
pub fn estimate_recoverable<R: CheckpointRng>(
    client: &mut CachingClient<'_>,
    query: &AggregateQuery,
    config: &TarwConfig,
    rng: &mut R,
    ctl: &mut CheckpointCtl<'_>,
    resume: Option<&SamplerState>,
) -> Result<Estimate, EstimateError> {
    let tracer = client.tracer().clone();
    let seeds = fetch_seeds(client, query)?;
    let (interval, tarw_resume) = match resume {
        Some(SamplerState::Tarw(state)) => {
            // Interval selection (if any) already happened before the
            // checkpoint; its RNG draws are baked into the restored RNG.
            (Duration(state.interval_secs), Some(state))
        }
        Some(SamplerState::Pilot(pilot)) => {
            let interval = select_interval_recoverable(
                client,
                query,
                &seeds,
                config.pilot_steps,
                rng,
                ctl,
                Some(pilot),
            )?
            .interval;
            (interval, None)
        }
        Some(_) => {
            return Err(EstimateError::Unsupported(
                "checkpoint does not belong to MA-TARW",
            ))
        }
        None => {
            let interval = match config.interval {
                Some(t) => t,
                None => {
                    select_interval_recoverable(
                        client,
                        query,
                        &seeds,
                        config.pilot_steps,
                        rng,
                        ctl,
                        None,
                    )?
                    .interval
                }
            };
            (interval, None)
        }
    };
    let mut graph = QueryGraph::new(client, query, ViewKind::level(interval));
    let cache = matches!(config.p_mode, PMode::Sampled { cache: true, .. });
    let mut walker = TarwWalker {
        graph: &mut graph,
        prob: ProbabilityEstimator::new(&seeds, cache),
        seeds: &seeds,
        p_mode: config.p_mode,
        query,
        tracer: tracer.clone(),
        up_path: Vec::new(),
        down_path: Vec::new(),
    };

    let mut instances: Vec<InstanceSums> = Vec::new();
    let mut start = 0usize;
    if let Some(state) = tarw_resume {
        instances = state.instances.iter().map(InstanceSums::restore).collect();
        start = state.next_instance as usize;
        // Exact-mode memos are *not* checkpointed: they recompute free
        // from the restored client memo and consume no randomness. The
        // sampled-mode draw caches do consume RNG, so they round-trip.
        walker
            .prob
            .restore_caches(&state.up_cache, &state.down_cache);
    }
    for i in start..config.max_instances {
        // Safe point between instances.
        ctl.tick(|| {
            walker.graph.client_mut().drain_prefetch();
            Some((
                i as u64,
                rng.rng_state()?,
                walker.graph.client().checkpoint_state(),
                SamplerState::Tarw(TarwState {
                    interval_secs: interval.0,
                    next_instance: i as u64,
                    instances: instances.iter().map(InstanceSums::snapshot).collect(),
                    up_cache: walker.prob.up_cache_state(),
                    down_cache: walker.prob.down_cache_state(),
                }),
            ))
        });
        let span = tracer.span_start(
            Category::Walk,
            "tarw_instance",
            &[("instance", FieldValue::from(i))],
        );
        let outcome = walker.run_instance(rng);
        if tracer.is_enabled() {
            let label = match &outcome {
                Ok(Some(_)) => "ok",
                Ok(None) => "degenerate",
                Err(_) => "error",
            };
            tracer.span_end(
                Category::Walk,
                "tarw_instance",
                span,
                &[("outcome", FieldValue::from(label))],
            );
        }
        match outcome {
            Ok(Some(sums)) => instances.push(sums),
            Ok(None) => {} // degenerate instance (seed not a member)
            Err(e) if e.ends_walk() => break,
            Err(e) => return Err(e.into()),
        }
    }
    finalize(query, &instances, walker.graph.cost())
}

fn finalize(
    query: &AggregateQuery,
    instances: &[InstanceSums],
    cost: u64,
) -> Result<Estimate, EstimateError> {
    let usable: Vec<&InstanceSums> = instances.iter().filter(|i| i.used > 0).collect();
    if usable.is_empty() {
        return Err(EstimateError::NoSamples);
    }
    let r = usable.len() as f64;
    let mean_num: f64 = usable.iter().map(|i| i.num).sum::<f64>() / r;
    let mean_den: f64 = usable.iter().map(|i| i.den).sum::<f64>() / r;
    let mean_count: f64 = usable.iter().map(|i| i.count).sum::<f64>() / r;

    let mut per_instance = RunningStats::new();
    let value = match query.aggregate {
        Aggregate::Count => {
            for i in &usable {
                per_instance.push(i.count);
            }
            mean_count
        }
        Aggregate::Sum(_) => {
            for i in &usable {
                per_instance.push(i.num);
            }
            mean_num
        }
        Aggregate::Avg(_) | Aggregate::RatioOfSums { .. } => {
            if mean_den <= 0.0 {
                return Err(EstimateError::NoSamples);
            }
            for i in &usable {
                if i.den > 0.0 {
                    per_instance.push(i.num / i.den);
                }
            }
            mean_num / mean_den
        }
    };
    Ok(Estimate {
        value,
        std_err: per_instance.std_err(),
        cost,
        samples: usable.iter().map(|i| i.used).sum(),
        instances: usable.len(),
    })
}

/// A running average of `ESTIMATE-p` draws for one node.
#[derive(Clone, Copy, Debug, Default)]
struct PAverage {
    sum: f64,
    n: u32,
}

impl PAverage {
    fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }
}

/// The `ESTIMATE-p` machinery of Algorithm 2, public so that validation
/// experiments can compare its draws against exactly computed visit
/// probabilities (see the `estimate_p_check` experiment binary).
///
/// With `cache = true` the estimator keeps a *running average of draws per
/// node* and serves the mean once enough draws have accumulated. This
/// extends the paper's §5.2 root-probability cache to every node; it is
/// essential in the realistic regime where the search API returns only a
/// few seeds, because a single Algorithm-2 draw is then zero unless its
/// random descent happens to end at a seed — averaged draws converge to
/// the true `p̄(u)` instead.
pub struct ProbabilityEstimator {
    seeds: Vec<UserId>,
    seed_set: HashSet<UserId>,
    up_cache: Option<HashMap<UserId, PAverage>>,
    down_cache: Option<HashMap<UserId, PAverage>>,
    exact_up: HashMap<UserId, f64>,
    exact_down: HashMap<UserId, f64>,
    /// Draws to accumulate per cached node before the mean is considered
    /// settled.
    target_draws: u32,
}

impl ProbabilityEstimator {
    /// Builds the estimator over the given seed set; `cache` enables the
    /// per-node draw-averaging cache (the generalization of §5.2's root
    /// cache).
    pub fn new(seeds: &[UserId], cache: bool) -> Self {
        ProbabilityEstimator {
            seeds: seeds.to_vec(),
            seed_set: seeds.iter().copied().collect(),
            up_cache: cache.then(HashMap::new),
            down_cache: cache.then(HashMap::new),
            exact_up: HashMap::new(),
            exact_down: HashMap::new(),
            target_draws: 12,
        }
    }

    /// Serializes the up-phase draw cache for a checkpoint (sorted by
    /// node; `None` when draw caching is off).
    pub(crate) fn up_cache_state(&self) -> Option<Vec<(UserId, u64, u32)>> {
        Self::cache_state(&self.up_cache)
    }

    /// Serializes the down-phase draw cache for a checkpoint.
    pub(crate) fn down_cache_state(&self) -> Option<Vec<(UserId, u64, u32)>> {
        Self::cache_state(&self.down_cache)
    }

    fn cache_state(cache: &Option<HashMap<UserId, PAverage>>) -> Option<Vec<(UserId, u64, u32)>> {
        cache.as_ref().map(|c| {
            let mut entries: Vec<(UserId, u64, u32)> = c
                .iter()
                .map(|(&u, avg)| (u, avg.sum.to_bits(), avg.n))
                .collect();
            entries.sort_unstable_by_key(|e| e.0 .0);
            entries
        })
    }

    /// Restores both draw caches from checkpointed state (the cached
    /// draws consumed RNG, so dropping them would desynchronize resume).
    pub(crate) fn restore_caches(
        &mut self,
        up: &Option<Vec<(UserId, u64, u32)>>,
        down: &Option<Vec<(UserId, u64, u32)>>,
    ) {
        if let Some(entries) = up {
            self.up_cache = Some(Self::cache_from(entries));
        }
        if let Some(entries) = down {
            self.down_cache = Some(Self::cache_from(entries));
        }
    }

    fn cache_from(entries: &[(UserId, u64, u32)]) -> HashMap<UserId, PAverage> {
        entries
            .iter()
            .map(|&(u, sum_bits, n)| {
                (
                    u,
                    PAverage {
                        sum: f64::from_bits(sum_bits),
                        n,
                    },
                )
            })
            .collect()
    }

    /// Exact up-phase visit probability `p̄(u)` via the memoized Eq. (6)
    /// recursion. Recursion depth is bounded by the number of levels
    /// (levels strictly increase downward).
    pub fn exact_p_up(
        &mut self,
        graph: &mut QueryGraph<'_, '_>,
        u: UserId,
    ) -> Result<f64, ApiError> {
        if let Some(&p) = self.exact_up.get(&u) {
            return Ok(p);
        }
        let s = self.seeds.len() as f64;
        let mut p = if self.seed_set.contains(&u) {
            1.0 / s
        } else {
            0.0
        };
        let split = graph.level_split(u)?;
        for &v in &split.1 {
            let pv = self.exact_p_up(graph, v)?;
            if pv > 0.0 {
                let v_above_len = graph.level_split(v)?.0.len();
                p += pv / v_above_len.max(1) as f64;
            }
        }
        self.exact_up.insert(u, p);
        Ok(p)
    }

    /// Exact down-phase visit probability `p̂(u)` (memoized).
    pub fn exact_p_down(
        &mut self,
        graph: &mut QueryGraph<'_, '_>,
        u: UserId,
    ) -> Result<f64, ApiError> {
        if let Some(&p) = self.exact_down.get(&u) {
            return Ok(p);
        }
        let split = graph.level_split(u)?;
        let p = if split.0.is_empty() {
            self.exact_p_up(graph, u)?
        } else {
            let mut p = 0.0;
            for &v in &split.0 {
                let pv = self.exact_p_down(graph, v)?;
                if pv > 0.0 {
                    let v_below_len = graph.level_split(v)?.1.len();
                    p += pv / v_below_len.max(1) as f64;
                }
            }
            p
        };
        self.exact_down.insert(u, p);
        Ok(p)
    }

    /// Cache-averaged up-phase probability estimate: keeps drawing until
    /// `target_draws` samples accumulate for `u`, then serves the mean.
    pub fn p_up<R: Rng>(
        &mut self,
        graph: &mut QueryGraph<'_, '_>,
        rng: &mut R,
        u: UserId,
    ) -> Result<f64, ApiError> {
        if self.up_cache.is_none() {
            return self.draw_up(graph, rng, u);
        }
        // Accumulate the full draw budget up front (draws are CPU-cheap —
        // every API response involved is already cached by the walk).
        loop {
            let pending = match self.up_cache.as_ref().and_then(|c| c.get(&u)) {
                Some(e) if e.n >= self.target_draws => return Ok(e.mean()),
                _ => true,
            };
            debug_assert!(pending);
            let draw = self.draw_up(graph, rng, u)?;
            let entry = self
                .up_cache
                .as_mut()
                .expect("cache enabled") // ma-lint: allow(panic-safety) reason="guarded by the is_none early return above"
                .entry(u)
                .or_default();
            entry.sum += draw;
            entry.n += 1;
        }
    }

    /// Cache-averaged down-phase probability estimate.
    pub fn p_down<R: Rng>(
        &mut self,
        graph: &mut QueryGraph<'_, '_>,
        rng: &mut R,
        u: UserId,
    ) -> Result<f64, ApiError> {
        if self.down_cache.is_none() {
            return self.draw_down(graph, rng, u);
        }
        loop {
            let pending = match self.down_cache.as_ref().and_then(|c| c.get(&u)) {
                Some(e) if e.n >= self.target_draws => return Ok(e.mean()),
                _ => true,
            };
            debug_assert!(pending);
            let draw = self.draw_down(graph, rng, u)?;
            let entry = self
                .down_cache
                .as_mut()
                .expect("cache enabled") // ma-lint: allow(panic-safety) reason="guarded by the is_none early return above"
                .entry(u)
                .or_default();
            entry.sum += draw;
            entry.n += 1;
        }
    }

    /// One unbiased draw of the up-phase visit probability `p̄(u)`
    /// (Algorithm 2): recurse through a random below-neighbor down to the
    /// graph bottom, adding the seed mass `[w ∈ seeds]/s` at every node on
    /// the way (the generalized base case for seeds that are not sinks).
    pub fn draw_up<R: Rng>(
        &mut self,
        graph: &mut QueryGraph<'_, '_>,
        rng: &mut R,
        u: UserId,
    ) -> Result<f64, ApiError> {
        let s = self.seeds.len() as f64;
        let seed_mass = if self.seed_set.contains(&u) {
            1.0 / s
        } else {
            0.0
        };
        let split = graph.level_split(u)?;
        let below = &split.1;
        if below.is_empty() {
            return Ok(seed_mass);
        }
        let v = below[rng.gen_range(0..below.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
        let below_len = below.len();
        let v_above_len = graph.level_split(v)?.0.len();
        debug_assert!(v_above_len > 0, "v has u above it");
        let pv = self.draw_up(graph, rng, v)?;
        Ok(seed_mass + below_len as f64 * pv / v_above_len.max(1) as f64)
    }

    /// One unbiased draw of the down-phase visit probability `p̂(u)`
    /// (mirrored Algorithm 2); at roots it delegates to the up-phase
    /// estimate, optionally cached across calls (§5.2).
    pub fn draw_down<R: Rng>(
        &mut self,
        graph: &mut QueryGraph<'_, '_>,
        rng: &mut R,
        u: UserId,
    ) -> Result<f64, ApiError> {
        let split = graph.level_split(u)?;
        let above = &split.0;
        if above.is_empty() {
            // Root: p̂ = p̄ (averaged when the cache is on — the paper's
            // §5.2 root cache as a special case).
            return self.p_up(graph, rng, u);
        }
        let v = above[rng.gen_range(0..above.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
        let above_len = above.len();
        let v_below_len = graph.level_split(v)?.1.len();
        debug_assert!(v_below_len > 0, "v has u below it");
        let pv = self.draw_down(graph, rng, v)?;
        Ok(above_len as f64 * pv / v_below_len.max(1) as f64)
    }
}

/// The walk machinery, borrowing the query graph.
struct TarwWalker<'g, 'c, 'p> {
    graph: &'g mut QueryGraph<'c, 'p>,
    prob: ProbabilityEstimator,
    seeds: &'g [UserId],
    p_mode: PMode,
    query: &'g AggregateQuery,
    tracer: Tracer,
    /// Path buffers reused across instances, so a bottom-top-bottom pass
    /// allocates nothing once the walker has warmed up.
    up_path: Vec<UserId>,
    down_path: Vec<UserId>,
}

impl TarwWalker<'_, '_, '_> {
    /// One bottom-top-bottom instance; `Ok(None)` when the chosen seed is
    /// not a subgraph member (e.g. its qualifying post is cap-hidden).
    fn run_instance<R: Rng>(&mut self, rng: &mut R) -> Result<Option<InstanceSums>, ApiError> {
        let start = self.seeds[rng.gen_range(0..self.seeds.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
        let start_level = match self.graph.member_level(start)? {
            Some(l) => l,
            None => return Ok(None),
        };
        self.tracer.set_phase(WalkPhase::Up);
        self.tracer.set_level(Some(start_level));
        // Up phase: strictly earlier levels until a root. The path buffers
        // are taken out of `self` (and handed back at the end) so the walk
        // below can borrow `self` freely while reusing their allocations
        // across instances.
        let mut up_path = std::mem::take(&mut self.up_path);
        up_path.clear();
        up_path.push(start);
        let mut current = start;
        loop {
            let split = self.graph.level_split(current)?;
            let above = &split.0;
            if above.is_empty() {
                break;
            }
            let next = above[rng.gen_range(0..above.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
            self.trace_level_move("level_up", current, next)?;
            current = next;
            up_path.push(current);
        }
        let root = current;
        self.tracer.set_phase(WalkPhase::Down);
        // Down phase: strictly later levels until a sink. The root belongs
        // to both phases (p̂(root) = p̄(root)).
        let mut down_path = std::mem::take(&mut self.down_path);
        down_path.clear();
        down_path.push(root);
        loop {
            let split = self.graph.level_split(current)?;
            let below = &split.1;
            if below.is_empty() {
                break;
            }
            let next = below[rng.gen_range(0..below.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
            self.trace_level_move("level_down", current, next)?;
            current = next;
            down_path.push(current);
        }
        self.tracer.set_phase(WalkPhase::Probability);
        self.tracer.set_level(None);

        let now = self.graph.client_mut().now();
        let mut sums = InstanceSums::default();
        // Combined-phase Hansen–Hurwitz: every visit of `u` (in either
        // phase) contributes `f(u) / (p̄(u) + p̂(u))`. The expected number
        // of visits of `u` across the two phases is exactly `p̄ + p̂`, so
        // the instance sum is unbiased for the total over every node with
        // `p̄ + p̂ > 0` — the *union* of the two phases' coverage, which
        // beats the paper's equal-phase average when the down phase sees
        // more of the graph than the up phase (the typical case with
        // bottom-heavy seeds).
        for &u in up_path.iter().chain(&down_path) {
            let p_up = self.averaged_p(rng, u, Phase::Up)?;
            let p_down = self.averaged_p(rng, u, Phase::Down)?;
            self.accumulate(&mut sums, u, p_up + p_down, now)?;
        }
        self.up_path = up_path;
        self.down_path = down_path;
        Ok(Some(sums))
    }

    fn accumulate(
        &mut self,
        sums: &mut InstanceSums,
        u: UserId,
        p: f64,
        now: microblog_platform::Timestamp,
    ) -> Result<(), ApiError> {
        if p <= 0.0 {
            return Ok(());
        }
        let view = self.graph.view(u)?;
        let (matches, num, den) = self.query.sample_values(&view, now);
        sums.num += num / p;
        sums.den += den / p;
        sums.count += matches as u8 as f64 / p;
        sums.used += 1;
        self.tracer.emit(
            Category::Walk,
            "sample",
            &[
                ("node", FieldValue::from(u.0)),
                ("p", FieldValue::F64(p)),
                ("matches", FieldValue::U64(u64::from(matches))),
            ],
        );
        Ok(())
    }

    /// Publishes the destination's level as ambient context and records
    /// the transition. The level is already memoized by the `level_split`
    /// that produced the candidate set, so this costs no API calls.
    fn trace_level_move(
        &mut self,
        name: &'static str,
        from: UserId,
        to: UserId,
    ) -> Result<(), ApiError> {
        if !self.tracer.is_enabled() {
            return Ok(());
        }
        let level = self.graph.member_level(to)?;
        self.tracer.set_level(level);
        self.tracer.emit(
            Category::Walk,
            name,
            &[
                ("from", FieldValue::from(from.0)),
                ("to", FieldValue::from(to.0)),
            ],
        );
        Ok(())
    }

    /// Probability estimate for one node, per the configured [`PMode`].
    fn averaged_p<R: Rng>(
        &mut self,
        rng: &mut R,
        u: UserId,
        phase: Phase,
    ) -> Result<f64, ApiError> {
        match self.p_mode {
            PMode::Exact => match phase {
                Phase::Up => self.prob.exact_p_up(self.graph, u),
                Phase::Down => self.prob.exact_p_down(self.graph, u),
            },
            PMode::Sampled { draws, .. } => {
                let draws = draws.max(1);
                let mut total = 0.0;
                for _ in 0..draws {
                    total += match phase {
                        Phase::Up => self.prob.p_up(self.graph, rng, u)?,
                        Phase::Down => self.prob.p_down(self.graph, rng, u)?,
                    };
                }
                Ok(total / draws as f64)
            }
        }
    }
}

#[derive(Clone, Copy)]
enum Phase {
    Up,
    Down,
}

#[cfg(test)]
mod tests {
    use super::*;
    use microblog_api::{ApiProfile, MicroblogClient, QueryBudget};
    use microblog_platform::scenario::{twitter_2013, Scale};
    use microblog_platform::UserMetric;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_tarw(
        scenario_seed: u64,
        rng_seed: u64,
        budget: u64,
        cfg: TarwConfig,
        query_of: impl Fn(&microblog_platform::scenario::Scenario) -> AggregateQuery,
    ) -> (Result<Estimate, EstimateError>, Option<f64>) {
        let s = twitter_2013(Scale::Tiny, scenario_seed);
        let q = query_of(&s);
        let truth = q.ground_truth(&s.platform);
        let mut client = CachingClient::new(MicroblogClient::with_budget(
            &s.platform,
            ApiProfile::twitter(),
            QueryBudget::limited(budget),
        ));
        let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
        (estimate(&mut client, &q, &cfg, &mut rng), truth)
    }

    fn day_config() -> TarwConfig {
        TarwConfig {
            interval: Some(microblog_platform::Duration::DAY),
            ..TarwConfig::default()
        }
    }

    #[test]
    fn avg_followers_converges() {
        let (est, truth) = run_tarw(61, 1, 40_000, day_config(), |s| {
            AggregateQuery::avg(UserMetric::FollowerCount, s.keyword("privacy").unwrap())
                .in_window(s.window)
        });
        let est = est.unwrap();
        let truth = truth.unwrap();
        let rel = (est.value - truth).abs() / truth;
        assert!(rel < 0.5, "rel {rel}: est {} truth {truth}", est.value);
        assert!(est.instances > 3, "instances {}", est.instances);
        assert!(est.std_err.is_some());
    }

    #[test]
    fn count_converges_without_collisions() {
        // MA-TARW's COUNT needs no mark-and-recapture at all. ("new york"
        // is the keyword whose level subgraph stays walk-connected even on
        // Tiny worlds.)
        let (est, truth) = run_tarw(62, 2, 60_000, day_config(), |s| {
            AggregateQuery::count(s.keyword("new york").unwrap()).in_window(s.window)
        });
        let est = est.unwrap();
        let truth = truth.unwrap();
        let rel = (est.value - truth).abs() / truth;
        assert!(rel < 0.6, "rel {rel}: est {} truth {truth}", est.value);
    }

    #[test]
    fn interval_autoselection_works() {
        let cfg = TarwConfig {
            interval: None,
            ..TarwConfig::default()
        };
        let (est, truth) = run_tarw(63, 3, 50_000, cfg, |s| {
            AggregateQuery::avg(UserMetric::DisplayNameLength, s.keyword("privacy").unwrap())
                .in_window(s.window)
        });
        let est = est.unwrap();
        let truth = truth.unwrap();
        let rel = (est.value - truth).abs() / truth;
        assert!(rel < 0.4, "rel {rel}: est {} truth {truth}", est.value);
    }

    #[test]
    fn exact_mode_beats_uncached_sampling() {
        let mk = |p_mode| TarwConfig {
            p_mode,
            max_instances: 40,
            ..day_config()
        };
        let q_of = |s: &microblog_platform::scenario::Scenario| {
            AggregateQuery::count(s.keyword("new york").unwrap()).in_window(s.window)
        };
        let (exact, truth) = run_tarw(64, 4, 1_000_000, mk(PMode::Exact), q_of);
        let (sampled, _) = run_tarw(
            64,
            4,
            1_000_000,
            mk(PMode::Sampled {
                draws: 2,
                cache: false,
            }),
            q_of,
        );
        let truth = truth.unwrap();
        let exact_err = exact.unwrap().relative_error(truth);
        match sampled {
            Ok(e) => {
                let sampled_err = e.relative_error(truth);
                assert!(
                    exact_err <= sampled_err * 1.5 + 0.05,
                    "exact {exact_err:.3} vs sampled {sampled_err:.3}"
                );
            }
            Err(EstimateError::NoSamples) => {}
            Err(e) => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn budget_exhaustion_finalizes_partial_run() {
        let (est, _) = run_tarw(65, 5, 3_000, day_config(), |s| {
            AggregateQuery::avg(UserMetric::FollowerCount, s.keyword("new york").unwrap())
                .in_window(s.window)
        });
        match est {
            Ok(e) => assert!(e.cost <= 3_000),
            Err(EstimateError::NoSamples) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
