//! Metropolis–Hastings random walk baseline.
//!
//! The paper bases MA-SRW on the simple random walk because Gjoka et
//! al. [13] report SRW converging 1.5–8× faster than MHRW ("which was our
//! observation as well", §7). This module provides the MHRW estimator so
//! that comparison is reproducible: the walk targets the *uniform*
//! distribution (accept a proposed neighbor `v` with probability
//! `min(1, d(u)/d(v))`), so samples need no degree reweighting — but every
//! proposal costs a neighbor fetch of `v` whether accepted or not, and
//! rejected proposals stall the chain.

use crate::checkpoint::{CheckpointCtl, CheckpointRng, MhrwState, SamplerState};
use crate::error::EstimateError;
use crate::estimate::{Estimate, RunningStats};
use crate::query::{Aggregate, AggregateQuery};
use crate::seeds::fetch_seeds;
use crate::view::{QueryGraph, ViewKind};
use microblog_api::CachingClient;
use microblog_graph::sizing::CollisionCounter;
use microblog_obs::{Category, FieldValue, WalkPhase};
use microblog_platform::UserId;

/// Configuration of the MHRW estimator.
#[derive(Clone, Copy, Debug)]
pub struct MhrwConfig {
    /// Graph view to walk.
    pub view: ViewKind,
    /// Transitions discarded before sampling starts (per chain).
    pub burn_in: usize,
    /// Keep every `thinning`-th visit after burn-in.
    pub thinning: usize,
    /// Hard cap on total transitions (see [`super::srw::SrwConfig::max_steps`]).
    pub max_steps: usize,
}

impl MhrwConfig {
    /// Defaults matching the SRW configuration for a fair comparison.
    pub fn new(view: ViewKind) -> Self {
        MhrwConfig {
            view,
            burn_in: 100,
            thinning: 3,
            max_steps: 200_000,
        }
    }
}

/// Runs the MHRW until the budget is exhausted, then finalizes.
///
/// Under the uniform stationary distribution, AVG-type aggregates are the
/// plain sample mean over matching samples; COUNT/SUM still need a
/// population-size estimate, for which the collision counter is fed with
/// degree 1 for every node (uniform sampling is the `d ≡ const` special
/// case of the Katzir estimator).
pub fn estimate<R: CheckpointRng>(
    client: &mut CachingClient<'_>,
    query: &AggregateQuery,
    config: &MhrwConfig,
    rng: &mut R,
) -> Result<Estimate, EstimateError> {
    estimate_recoverable(
        client,
        query,
        config,
        rng,
        &mut CheckpointCtl::disabled(),
        None,
    )
}

/// [`estimate`] with checkpointing: emits [`SamplerState::Mhrw`]
/// checkpoints through `ctl` and resumes bit-identically from `resume`
/// (client memo and RNG restored by the caller).
pub fn estimate_recoverable<R: CheckpointRng>(
    client: &mut CachingClient<'_>,
    query: &AggregateQuery,
    config: &MhrwConfig,
    rng: &mut R,
    ctl: &mut CheckpointCtl<'_>,
    resume: Option<&MhrwState>,
) -> Result<Estimate, EstimateError> {
    let tracer = client.tracer().clone();
    let seeds = fetch_seeds(client, query)?;
    let now = client.now();
    let mut graph = QueryGraph::new(client, query, config.view);

    let mut sum_num;
    let mut sum_den;
    let mut sum_match;
    let mut samples;
    let mut collisions;
    let mut batch;
    let mut batch_vals: Vec<(f64, f64)>; // (num, den-equivalent)
    const BATCH: usize = 64;

    let mut current;
    let mut cur_deg: Option<usize> = None;
    let mut step;
    let mut total_steps;
    match resume {
        Some(state) => {
            sum_num = f64::from_bits(state.sum_num_bits);
            sum_den = f64::from_bits(state.sum_den_bits);
            sum_match = f64::from_bits(state.sum_match_bits);
            samples = state.samples as usize;
            collisions = CollisionCounter::restore(&state.collisions);
            batch = RunningStats::restore(state.batch);
            batch_vals = state
                .batch_vals
                .iter()
                .map(|&(n, d)| (f64::from_bits(n), f64::from_bits(d)))
                .collect();
            current = state.current;
            step = state.step as usize;
            total_steps = state.total_steps as usize;
        }
        None => {
            sum_num = 0.0;
            sum_den = 0.0;
            sum_match = 0.0;
            samples = 0usize;
            collisions = CollisionCounter::new();
            batch = RunningStats::new();
            batch_vals = Vec::new();
            current = seeds[rng.gen_range(0..seeds.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
            step = 0usize;
            total_steps = 0usize;
        }
    }
    let mut phase = if config.burn_in > 0 && step < config.burn_in {
        WalkPhase::BurnIn
    } else {
        WalkPhase::Walk
    };
    tracer.set_phase(phase);
    // Two neighbor buffers (current node + proposal) reused across the
    // whole walk, so each MH transition allocates nothing.
    let mut nbrs: Vec<UserId> = Vec::new();
    let mut prop_nbrs: Vec<UserId> = Vec::new();
    loop {
        // Safe point: the captured tuple fully determines the rest of
        // the walk (`cur_deg` is recomputed every iteration).
        ctl.tick(|| {
            graph.client_mut().drain_prefetch();
            Some((
                total_steps as u64,
                rng.rng_state()?,
                graph.client().checkpoint_state(),
                SamplerState::Mhrw(MhrwState {
                    current,
                    step: step as u64,
                    total_steps: total_steps as u64,
                    sum_num_bits: sum_num.to_bits(),
                    sum_den_bits: sum_den.to_bits(),
                    sum_match_bits: sum_match.to_bits(),
                    samples: samples as u64,
                    collisions: collisions.snapshot(),
                    batch: batch.snapshot(),
                    batch_vals: batch_vals
                        .iter()
                        .map(|&(n, d)| (n.to_bits(), d.to_bits()))
                        .collect(),
                }),
            ))
        });
        if total_steps >= config.max_steps {
            break;
        }
        total_steps += 1;
        match graph.neighbors_into(current, &mut nbrs) {
            Ok(()) => {}
            Err(e) if e.ends_walk() => break,
            Err(e) => return Err(e.into()),
        };
        let d_u = nbrs.len();
        cur_deg = Some(d_u);
        if phase == WalkPhase::BurnIn && step >= config.burn_in {
            tracer.emit(
                Category::Walk,
                "burnin_end",
                &[
                    ("step", FieldValue::from(total_steps)),
                    ("chain_step", FieldValue::from(step)),
                ],
            );
            phase = WalkPhase::Walk;
            tracer.set_phase(phase);
        }
        if step >= config.burn_in && step.is_multiple_of(config.thinning.max(1)) {
            let view = match graph.view(current) {
                Ok(v) => v,
                Err(e) if e.ends_walk() => break,
                Err(e) => return Err(e.into()),
            };
            let (matches, num, den) = query.sample_values(&view, now);
            sum_num += num;
            sum_den += den;
            sum_match += matches as u8 as f64;
            samples += 1;
            collisions.push(current.0, 1);
            tracer.emit(
                Category::Walk,
                "sample",
                &[
                    ("node", FieldValue::from(current.0)),
                    ("degree", FieldValue::from(d_u)),
                    ("matches", FieldValue::U64(u64::from(matches))),
                ],
            );
            batch_vals.push((
                num,
                if matches!(query.aggregate, Aggregate::RatioOfSums { .. }) {
                    den
                } else {
                    matches as u8 as f64
                },
            ));
            if batch_vals.len() >= BATCH {
                let n: f64 = batch_vals.iter().map(|v| v.0).sum();
                let d: f64 = batch_vals.iter().map(|v| v.1).sum();
                if d > 0.0 {
                    batch.push(n / d);
                }
                batch_vals.clear();
            }
        }
        if d_u == 0 {
            tracer.emit(
                Category::Walk,
                "restart",
                &[
                    ("node", FieldValue::from(current.0)),
                    ("step", FieldValue::from(total_steps)),
                ],
            );
            current = seeds[rng.gen_range(0..seeds.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
            step = 0;
            cur_deg = None;
            if config.burn_in > 0 && phase != WalkPhase::BurnIn {
                phase = WalkPhase::BurnIn;
                tracer.set_phase(phase);
            }
            continue;
        }
        // Propose and accept/reject.
        let proposal = nbrs[rng.gen_range(0..nbrs.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
        match graph.neighbors_into(proposal, &mut prop_nbrs) {
            Ok(()) => {}
            Err(e) if e.ends_walk() => break,
            Err(e) => return Err(e.into()),
        };
        let d_v = prop_nbrs.len();
        let accept = d_v > 0 && rng.gen::<f64>() < (d_u as f64 / d_v as f64).min(1.0);
        tracer.emit(
            Category::Walk,
            if accept { "mh_accept" } else { "mh_reject" },
            &[
                ("from", FieldValue::from(current.0)),
                ("proposal", FieldValue::from(proposal.0)),
                ("d_u", FieldValue::from(d_u)),
                ("d_v", FieldValue::from(d_v)),
            ],
        );
        if accept {
            current = proposal;
            cur_deg = Some(d_v);
        }
        step += 1;
    }
    let _ = cur_deg;

    if samples == 0 {
        return Err(EstimateError::NoSamples);
    }
    let value = match query.aggregate {
        Aggregate::Count => {
            let n_hat = collisions.estimate().ok_or(EstimateError::NoSamples)?;
            n_hat * sum_match / samples as f64
        }
        Aggregate::Sum(_) => {
            let n_hat = collisions.estimate().ok_or(EstimateError::NoSamples)?;
            n_hat * sum_num / samples as f64
        }
        Aggregate::Avg(_) => {
            if sum_match == 0.0 {
                return Err(EstimateError::NoSamples);
            }
            sum_num / sum_match
        }
        Aggregate::RatioOfSums { .. } => {
            if sum_den == 0.0 {
                return Err(EstimateError::NoSamples);
            }
            sum_num / sum_den
        }
    };
    Ok(Estimate {
        value,
        std_err: if batch.count() >= 2 {
            batch.std_err()
        } else {
            None
        },
        cost: graph.cost(),
        samples,
        instances: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use microblog_api::{ApiProfile, MicroblogClient, QueryBudget};
    use microblog_platform::scenario::{twitter_2013, Scale};
    use microblog_platform::{Duration, UserMetric};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn mhrw_avg_converges_on_level_view() {
        let s = twitter_2013(Scale::Tiny, 91);
        let kw = s.keyword("new york").unwrap();
        let q = AggregateQuery::avg(UserMetric::DisplayNameLength, kw).in_window(s.window);
        let truth = q.ground_truth(&s.platform).unwrap();
        let mut client = CachingClient::new(MicroblogClient::with_budget(
            &s.platform,
            ApiProfile::twitter(),
            QueryBudget::limited(40_000),
        ));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut cfg = MhrwConfig::new(ViewKind::level(Duration::DAY));
        cfg.burn_in = 50;
        let est = estimate(&mut client, &q, &cfg, &mut rng).unwrap();
        let rel = (est.value - truth).abs() / truth;
        assert!(rel < 0.25, "rel {rel}: est {} truth {truth}", est.value);
    }

    #[test]
    fn mhrw_count_needs_collisions() {
        let s = twitter_2013(Scale::Tiny, 92);
        let kw = s.keyword("privacy").unwrap();
        let q = AggregateQuery::count(kw).in_window(s.window);
        let mut client = CachingClient::new(MicroblogClient::with_budget(
            &s.platform,
            ApiProfile::twitter(),
            QueryBudget::limited(600),
        ));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let cfg = MhrwConfig::new(ViewKind::level(Duration::DAY));
        // With a tiny budget there are no collisions yet.
        match estimate(&mut client, &q, &cfg, &mut rng) {
            Err(EstimateError::NoSamples) => {}
            Ok(e) => assert!(e.value.is_finite()),
            Err(e) => panic!("unexpected {e}"),
        }
    }
}
