//! MA-SRW and the oblivious random-walk baselines (§4, Algorithm 1).
//!
//! A simple random walk over the chosen graph view, seeded from the search
//! API. After a burn-in prefix the (thinned) visits feed the
//! [`super::SampleAccumulator`]: AVG comes from the degree-corrected ratio
//! estimator, COUNT/SUM additionally need the Katzir collision size
//! estimate of the walked graph. Run over [`ViewKind::level`] this is the
//! paper's **MA-SRW**; over [`ViewKind::TermInduced`] /
//! [`ViewKind::FullGraph`] it is the respective baseline of Figures 2–3.

use crate::checkpoint::{CheckpointCtl, CheckpointRng, SamplerState, SrwState};
use crate::error::EstimateError;
use crate::estimate::{Estimate, RunningStats};
use crate::query::AggregateQuery;
use crate::seeds::fetch_seeds;
use crate::view::{QueryGraph, ViewKind};
use microblog_api::CachingClient;
use microblog_graph::diagnostics::geweke_z_default;
use microblog_obs::{Category, FieldValue, WalkPhase};
use microblog_platform::UserId;

/// Emit a running Geweke z-score every this many kept samples (tracing
/// only; the chain history is not accumulated otherwise).
const GEWEKE_EVERY: usize = 32;

/// Configuration of the simple-random-walk estimator.
#[derive(Clone, Copy, Debug)]
pub struct SrwConfig {
    /// Graph view to walk.
    pub view: ViewKind,
    /// Transitions discarded before sampling starts (per chain).
    pub burn_in: usize,
    /// Keep every `thinning`-th visit after burn-in.
    pub thinning: usize,
    /// Extra spacing factor applied to samples feeding the collision
    /// counter (collision estimation needs closer-to-independent samples).
    pub collision_spacing: usize,
    /// Hard cap on total transitions. The budget is the usual stopper;
    /// the cap guards runs where every needed response is already cached
    /// (cache hits are free, so the budget alone would never exhaust).
    pub max_steps: usize,
}

impl SrwConfig {
    /// MA-SRW defaults over the given view.
    pub fn new(view: ViewKind) -> Self {
        SrwConfig {
            view,
            burn_in: 100,
            thinning: 3,
            collision_spacing: 2,
            max_steps: 200_000,
        }
    }
}

/// Runs the walk until the client's budget is exhausted, then finalizes.
///
/// Dangling nodes (no neighbors under the view) restart the chain from a
/// fresh random seed, paying that chain's burn-in again.
pub fn estimate<R: CheckpointRng>(
    client: &mut CachingClient<'_>,
    query: &AggregateQuery,
    config: &SrwConfig,
    rng: &mut R,
) -> Result<Estimate, EstimateError> {
    estimate_recoverable(
        client,
        query,
        config,
        rng,
        &mut CheckpointCtl::disabled(),
        None,
    )
}

/// [`estimate`] with checkpointing: emits a [`SamplerState::Srw`]
/// checkpoint through `ctl` at its cadence, and resumes bit-identically
/// from `resume` (the caller must have restored the client memo and RNG
/// from the same checkpoint first).
pub fn estimate_recoverable<R: CheckpointRng>(
    client: &mut CachingClient<'_>,
    query: &AggregateQuery,
    config: &SrwConfig,
    rng: &mut R,
    ctl: &mut CheckpointCtl<'_>,
    resume: Option<&SrwState>,
) -> Result<Estimate, EstimateError> {
    let tracer = client.tracer().clone();
    let seeds = fetch_seeds(client, query)?;
    let now = client.now();
    let mut graph = QueryGraph::new(client, query, config.view);
    let mut accum;
    // Batch means for a standard error on AVG-style outputs.
    let mut batch;
    let mut batch_accum;
    const BATCH: usize = 64;

    let mut current;
    let mut step_in_chain;
    let mut total_steps;
    let mut kept;
    match resume {
        Some(state) => {
            accum = super::SampleAccumulator::restore(&state.accum);
            batch = RunningStats::restore(state.batch);
            batch_accum = super::SampleAccumulator::restore(&state.batch_accum);
            current = state.current;
            step_in_chain = state.step_in_chain as usize;
            total_steps = state.total_steps as usize;
            kept = state.kept as usize;
        }
        None => {
            accum = super::SampleAccumulator::new();
            batch = RunningStats::new();
            batch_accum = super::SampleAccumulator::new();
            current = seeds[rng.gen_range(0..seeds.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
            step_in_chain = 0usize;
            total_steps = 0usize;
            kept = 0usize;
        }
    }
    let mut phase = if config.burn_in > 0 && step_in_chain < config.burn_in {
        WalkPhase::BurnIn
    } else {
        WalkPhase::Walk
    };
    tracer.set_phase(phase);
    // Per-sample numerators for the running Geweke convergence check
    // (only accumulated while tracing).
    let mut chain: Vec<f64> = Vec::new();
    // One neighbor buffer for the whole walk — the step loop allocates
    // nothing once the buffer has grown to the view's maximum degree.
    let mut nbrs: Vec<UserId> = Vec::new();
    loop {
        // The top of the loop is the safe point: the captured tuple fully
        // determines the remainder of the walk. Draining first guarantees
        // the capture cannot race an announced-but-unfinished prefetch.
        ctl.tick(|| {
            graph.client_mut().drain_prefetch();
            Some((
                total_steps as u64,
                rng.rng_state()?,
                graph.client().checkpoint_state(),
                SamplerState::Srw(SrwState {
                    current,
                    step_in_chain: step_in_chain as u64,
                    total_steps: total_steps as u64,
                    kept: kept as u64,
                    accum: accum.snapshot(),
                    batch: batch.snapshot(),
                    batch_accum: batch_accum.snapshot(),
                }),
            ))
        });
        if total_steps >= config.max_steps {
            break;
        }
        total_steps += 1;
        match graph.neighbors_into(current, &mut nbrs) {
            Ok(()) => {}
            Err(e) if e.ends_walk() => break,
            Err(e) => return Err(e.into()),
        };
        if phase == WalkPhase::BurnIn && step_in_chain >= config.burn_in {
            tracer.emit(
                Category::Walk,
                "burnin_end",
                &[
                    ("step", FieldValue::from(total_steps)),
                    ("chain_step", FieldValue::from(step_in_chain)),
                ],
            );
            phase = WalkPhase::Walk;
            tracer.set_phase(phase);
        }
        if step_in_chain >= config.burn_in && step_in_chain.is_multiple_of(config.thinning.max(1)) {
            let view = match graph.view(current) {
                Ok(v) => v,
                Err(e) if e.ends_walk() => break,
                Err(e) => return Err(e.into()),
            };
            let (matches, num, den) = query.sample_values(&view, now);
            let collide =
                query.needs_size_estimate() && kept.is_multiple_of(config.collision_spacing.max(1));
            accum.push(current.0, nbrs.len(), matches, num, den, collide);
            batch_accum.push(current.0, nbrs.len(), matches, num, den, false);
            kept += 1;
            tracer.emit(
                Category::Walk,
                "sample",
                &[
                    ("node", FieldValue::from(current.0)),
                    ("degree", FieldValue::from(nbrs.len())),
                    ("matches", FieldValue::U64(u64::from(matches))),
                    ("collide", FieldValue::U64(u64::from(collide))),
                ],
            );
            if tracer.is_enabled() {
                chain.push(num);
                if chain.len().is_multiple_of(GEWEKE_EVERY) {
                    if let Some(z) = geweke_z_default(&chain) {
                        tracer.emit(
                            Category::Diag,
                            "geweke",
                            &[
                                ("z", FieldValue::F64(z)),
                                ("kept", FieldValue::from(chain.len())),
                            ],
                        );
                    }
                }
            }
            if batch_accum.samples() >= BATCH {
                if let Some(v) = batch_accum.finalize(query) {
                    batch.push(v);
                }
                batch_accum = super::SampleAccumulator::new();
            }
        }
        if nbrs.is_empty() {
            // Dangling under this view: restart a fresh chain.
            tracer.emit(
                Category::Walk,
                "restart",
                &[
                    ("node", FieldValue::from(current.0)),
                    ("step", FieldValue::from(total_steps)),
                ],
            );
            current = seeds[rng.gen_range(0..seeds.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
            step_in_chain = 0;
            if config.burn_in > 0 && phase != WalkPhase::BurnIn {
                phase = WalkPhase::BurnIn;
                tracer.set_phase(phase);
            }
            continue;
        }
        let next = nbrs[rng.gen_range(0..nbrs.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
        tracer.emit(
            Category::Walk,
            "step",
            &[
                ("from", FieldValue::from(current.0)),
                ("to", FieldValue::from(next.0)),
                ("degree", FieldValue::from(nbrs.len())),
            ],
        );
        current = next;
        step_in_chain += 1;
    }

    let value = accum.finalize(query).ok_or(EstimateError::NoSamples)?;
    Ok(Estimate {
        value,
        std_err: if batch.count() >= 2 {
            batch.std_err()
        } else {
            None
        },
        cost: graph.cost(),
        samples: accum.samples(),
        instances: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use microblog_api::{ApiError, ApiProfile, MicroblogClient, QueryBudget};
    use microblog_platform::scenario::{twitter_2013, Scale};
    use microblog_platform::{Duration, UserMetric};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run(
        scenario_seed: u64,
        rng_seed: u64,
        budget: u64,
        view: ViewKind,
        query_of: impl Fn(&microblog_platform::scenario::Scenario) -> AggregateQuery,
    ) -> (Result<Estimate, EstimateError>, Option<f64>) {
        let s = twitter_2013(Scale::Tiny, scenario_seed);
        let q = query_of(&s);
        let truth = q.ground_truth(&s.platform);
        let mut client = CachingClient::new(MicroblogClient::with_budget(
            &s.platform,
            ApiProfile::twitter(),
            QueryBudget::limited(budget),
        ));
        let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
        let mut cfg = SrwConfig::new(view);
        cfg.burn_in = 30;
        let est = estimate(&mut client, &q, &cfg, &mut rng);
        (est, truth)
    }

    #[test]
    fn avg_on_level_view_converges() {
        let (est, truth) = run(51, 1, 40_000, ViewKind::level(Duration::DAY), |s| {
            AggregateQuery::avg(UserMetric::FollowerCount, s.keyword("privacy").unwrap())
                .in_window(s.window)
        });
        let est = est.unwrap();
        let truth = truth.unwrap();
        let rel = (est.value - truth).abs() / truth;
        assert!(rel < 0.5, "rel err {rel}: est {} truth {truth}", est.value);
        assert!(est.cost <= 40_000);
        assert!(est.samples > 50, "samples {}", est.samples);
    }

    #[test]
    fn count_on_level_view_is_in_range() {
        let (est, truth) = run(52, 2, 60_000, ViewKind::level(Duration::DAY), |s| {
            AggregateQuery::count(s.keyword("new york").unwrap()).in_window(s.window)
        });
        let est = est.unwrap();
        let truth = truth.unwrap();
        let rel = (est.value - truth).abs() / truth;
        assert!(rel < 0.6, "rel err {rel}: est {} truth {truth}", est.value);
    }

    #[test]
    fn tiny_budget_yields_no_samples() {
        let (est, _) = run(53, 3, 40, ViewKind::TermInduced, |s| {
            AggregateQuery::count(s.keyword("privacy").unwrap()).in_window(s.window)
        });
        match est {
            Err(EstimateError::NoSamples) => {}
            Err(EstimateError::Api(ApiError::BudgetExhausted { .. })) => {
                panic!("budget exhaustion must be handled, not surfaced")
            }
            Err(EstimateError::NoSeeds) => {}
            other => panic!("expected NoSamples, got {other:?}"),
        }
    }

    #[test]
    fn respects_budget_exactly() {
        let budget = 5_000;
        let (est, _) = run(54, 4, budget, ViewKind::level(Duration::DAY), |s| {
            AggregateQuery::avg(UserMetric::DisplayNameLength, s.keyword("boston").unwrap())
                .in_window(s.window)
        });
        let est = est.unwrap();
        assert!(est.cost <= budget, "cost {} over budget", est.cost);
        // The walk either exhausts the budget or the view's reachable
        // region got fully cached (free steps thereafter).
        assert!(est.cost > 0);
    }
}
