//! The mark-and-recapture (M&R) baseline (§6.1, "Algorithms Evaluated").
//!
//! Adapts the Katzir et al. size estimator to keyword-conditioned COUNT:
//! a simple random walk over the chosen view, whose *widely spaced*
//! samples feed a collision counter. The wide spacing (the original method
//! requires near-independent samples) is what makes M&R so much more
//! expensive than MA-SRW's reuse of every post-burn-in visit — the
//! separation visible in Figures 10 and 13.

use crate::checkpoint::CheckpointRng;
use crate::error::EstimateError;
use crate::estimate::Estimate;
use crate::query::{Aggregate, AggregateQuery};
use crate::view::ViewKind;
use crate::walker::srw::{estimate as srw_estimate, SrwConfig};
use microblog_api::CachingClient;

/// Configuration of the M&R baseline.
#[derive(Clone, Copy, Debug)]
pub struct MrConfig {
    /// Graph view to walk (the paper runs it on the term-induced subgraph
    /// by default, and on the level-by-level subgraph in Fig. 10).
    pub view: ViewKind,
    /// Burn-in transitions.
    pub burn_in: usize,
    /// Spacing between samples used for collision counting.
    pub spacing: usize,
}

impl MrConfig {
    /// Defaults per the mark-and-recapture literature: long burn-in and
    /// wide sample spacing for independence.
    pub fn new(view: ViewKind) -> Self {
        MrConfig {
            view,
            burn_in: 250,
            spacing: 25,
        }
    }

    /// The underlying SRW configuration M&R runs with.
    fn srw(&self) -> SrwConfig {
        SrwConfig {
            view: self.view,
            burn_in: self.burn_in,
            thinning: self.spacing,
            collision_spacing: 1,
            max_steps: 400_000,
        }
    }
}

/// Runs M&R until the client's budget is exhausted.
///
/// Only COUNT queries are supported — the method estimates population
/// sizes (the paper adapted [15], which "does not directly support"
/// anything else).
pub fn estimate<R: CheckpointRng>(
    client: &mut CachingClient<'_>,
    query: &AggregateQuery,
    config: &MrConfig,
    rng: &mut R,
) -> Result<Estimate, EstimateError> {
    if !matches!(query.aggregate, Aggregate::Count) {
        return Err(EstimateError::Unsupported("M&R only estimates COUNT"));
    }
    srw_estimate(client, query, &config.srw(), rng)
}

/// [`estimate`] with checkpointing — M&R is an SRW configuration, so its
/// checkpoints are [`crate::checkpoint::SamplerState::Srw`] states.
pub fn estimate_recoverable<R: CheckpointRng>(
    client: &mut CachingClient<'_>,
    query: &AggregateQuery,
    config: &MrConfig,
    rng: &mut R,
    ctl: &mut crate::checkpoint::CheckpointCtl<'_>,
    resume: Option<&crate::checkpoint::SrwState>,
) -> Result<Estimate, EstimateError> {
    if !matches!(query.aggregate, Aggregate::Count) {
        return Err(EstimateError::Unsupported("M&R only estimates COUNT"));
    }
    crate::walker::srw::estimate_recoverable(client, query, &config.srw(), rng, ctl, resume)
}

#[cfg(test)]
mod tests {
    use super::*;
    use microblog_api::{ApiProfile, MicroblogClient, QueryBudget};
    use microblog_platform::scenario::{twitter_2013, Scale};
    use microblog_platform::{Duration, UserMetric};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rejects_non_count_queries() {
        let s = twitter_2013(Scale::Tiny, 71);
        let kw = s.keyword("privacy").unwrap();
        let q = AggregateQuery::avg(UserMetric::FollowerCount, kw).in_window(s.window);
        let mut client =
            CachingClient::new(MicroblogClient::new(&s.platform, ApiProfile::twitter()));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let err = estimate(
            &mut client,
            &q,
            &MrConfig::new(ViewKind::TermInduced),
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, EstimateError::Unsupported(_)));
    }

    #[test]
    fn counts_with_enough_budget() {
        let s = twitter_2013(Scale::Tiny, 72);
        let kw = s.keyword("new york").unwrap();
        let q = AggregateQuery::count(kw).in_window(s.window);
        let truth = q.ground_truth(&s.platform).unwrap();
        let mut client = CachingClient::new(MicroblogClient::with_budget(
            &s.platform,
            ApiProfile::twitter(),
            QueryBudget::limited(120_000),
        ));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut cfg = MrConfig::new(ViewKind::level(Duration::DAY));
        cfg.burn_in = 60;
        cfg.spacing = 10;
        let est = estimate(&mut client, &q, &cfg, &mut rng).unwrap();
        let rel = (est.value - truth).abs() / truth;
        assert!(rel < 1.0, "rel {rel}: est {} truth {truth}", est.value);
    }
}
