//! Parallel multi-chain estimation.
//!
//! Gjoka et al. [13] — which the paper builds MA-SRW on — also study
//! "running multiple, parallel random walks". This module runs `k`
//! independent chains of any [`Algorithm`]-shaped estimator over the same
//! platform, each with its own client cache (parallel crawlers do not
//! share caches) and a *shared* query budget, then pools the estimates
//! inverse-variance-free (plain average) with a cross-chain standard
//! error. Chains run on OS threads; the platform is shared read-only.

use crate::analyzer::Algorithm;
use crate::error::EstimateError;
use crate::estimate::{Estimate, RunningStats};
use crate::query::AggregateQuery;
use microblog_api::{ApiProfile, QueryBudget};
use microblog_platform::Platform;

/// Configuration of the parallel runner.
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Number of independent chains.
    pub chains: usize,
    /// Total API-call budget shared across all chains.
    pub total_budget: u64,
}

/// Runs `algorithm` in `config.chains` parallel chains and pools results.
///
/// Returns an error only if *every* chain fails; otherwise the pooled
/// estimate averages the successful chains.
pub fn estimate_parallel(
    platform: &Platform,
    api: &ApiProfile,
    query: &AggregateQuery,
    algorithm: Algorithm,
    config: &ParallelConfig,
    seed: u64,
) -> Result<Estimate, EstimateError> {
    let chains = config.chains.max(1);
    let budget = QueryBudget::limited(config.total_budget);
    let mut results: Vec<Option<Result<Estimate, EstimateError>>> = vec![None; chains];
    std::thread::scope(|scope| {
        for (i, slot) in results.iter_mut().enumerate() {
            let budget = budget.clone();
            let api = api.clone();
            scope.spawn(move || {
                *slot = Some(run_chain(
                    platform,
                    api,
                    query,
                    algorithm,
                    budget,
                    chain_seed(seed, i as u64),
                ));
            });
        }
    });

    let mut stats = RunningStats::new();
    let mut samples = 0usize;
    let mut instances = 0usize;
    let mut last_err = EstimateError::NoSamples;
    for r in results.into_iter().flatten() {
        match r {
            Ok(e) => {
                stats.push(e.value);
                samples += e.samples;
                instances += e.instances;
            }
            Err(e) => last_err = e,
        }
    }
    if stats.count() == 0 {
        return Err(last_err);
    }
    Ok(Estimate {
        value: stats.mean(),
        std_err: stats.std_err(),
        cost: budget.spent(),
        samples,
        instances,
    })
}

use super::chain_seed;

/// One chain: a fresh client cache charging the shared budget.
fn run_chain(
    platform: &Platform,
    api: ApiProfile,
    query: &AggregateQuery,
    algorithm: Algorithm,
    budget: QueryBudget,
    seed: u64,
) -> Result<Estimate, EstimateError> {
    use crate::view::ViewKind;
    use crate::walker::{mhrw, mr, snowball, srw, tarw};
    use microblog_api::{CachingClient, MicroblogClient};
    use rand::SeedableRng;

    let mut client = CachingClient::new(MicroblogClient::with_budget(platform, api, budget));
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    match algorithm {
        Algorithm::SrwFullGraph => srw::estimate(
            &mut client,
            query,
            &srw::SrwConfig::new(ViewKind::FullGraph),
            &mut rng,
        ),
        Algorithm::SrwTermInduced => srw::estimate(
            &mut client,
            query,
            &srw::SrwConfig::new(ViewKind::TermInduced),
            &mut rng,
        ),
        Algorithm::MaSrw { interval } => {
            let t = interval.unwrap_or(microblog_platform::Duration::DAY);
            srw::estimate(
                &mut client,
                query,
                &srw::SrwConfig::new(ViewKind::level(t)),
                &mut rng,
            )
        }
        Algorithm::MaTarw { interval } => {
            let cfg = tarw::TarwConfig {
                interval,
                ..Default::default()
            };
            tarw::estimate(&mut client, query, &cfg, &mut rng)
        }
        Algorithm::MarkRecapture { view } => {
            mr::estimate(&mut client, query, &mr::MrConfig::new(view), &mut rng)
        }
        Algorithm::SrwView { view } => {
            srw::estimate(&mut client, query, &srw::SrwConfig::new(view), &mut rng)
        }
        Algorithm::Mhrw { view } => {
            mhrw::estimate(&mut client, query, &mhrw::MhrwConfig::new(view), &mut rng)
        }
        Algorithm::Snowball { view, order } => {
            let cfg = snowball::SnowballConfig {
                view,
                order,
                max_nodes: usize::MAX,
            };
            snowball::estimate(&mut client, query, &cfg, &mut rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microblog_platform::scenario::{twitter_2013, Scale};
    use microblog_platform::{Duration, UserMetric};

    #[test]
    fn chain_seeds_do_not_alias_across_runs() {
        // The old `run_seed + chain` derivation made these two equal.
        assert_ne!(chain_seed(7, 1), chain_seed(8, 0));
        // And all chains of nearby runs stay pairwise distinct.
        let mut seen = std::collections::HashSet::new();
        for run in 0..32u64 {
            for chain in 0..8u64 {
                assert!(
                    seen.insert(chain_seed(run, chain)),
                    "aliased seed at run {run} chain {chain}"
                );
            }
        }
    }

    #[test]
    fn parallel_chains_share_the_budget_and_pool() {
        let s = twitter_2013(Scale::Tiny, 121);
        let kw = s.keyword("new york").unwrap();
        let q = AggregateQuery::avg(UserMetric::DisplayNameLength, kw).in_window(s.window);
        let truth = q.ground_truth(&s.platform).unwrap();
        let cfg = ParallelConfig {
            chains: 4,
            total_budget: 30_000,
        };
        let est = estimate_parallel(
            &s.platform,
            &ApiProfile::twitter(),
            &q,
            Algorithm::MaSrw {
                interval: Some(Duration::DAY),
            },
            &cfg,
            5,
        )
        .unwrap();
        assert!(est.cost <= 30_000, "budget shared across chains");
        assert!(est.std_err.is_some(), "cross-chain spread available");
        let rel = est.relative_error(truth);
        assert!(rel < 0.2, "rel {rel}: est {} truth {truth}", est.value);
    }

    #[test]
    fn all_chains_failing_propagates_error() {
        let s = twitter_2013(Scale::Tiny, 122);
        let kw = s.keyword("privacy").unwrap();
        let q = AggregateQuery::count(kw).in_window(s.window);
        let cfg = ParallelConfig {
            chains: 3,
            total_budget: 10,
        };
        let err = estimate_parallel(
            &s.platform,
            &ApiProfile::twitter(),
            &q,
            Algorithm::MaTarw {
                interval: Some(Duration::DAY),
            },
            &cfg,
            6,
        )
        .unwrap_err();
        // A 10-call budget fails in seed search (Api) or sampling.
        assert!(matches!(
            err,
            EstimateError::NoSamples | EstimateError::NoSeeds | EstimateError::Api(_)
        ));
    }
}
