//! Burn-in measurement via the Geweke diagnostic (§4.1).
//!
//! The paper quantifies how "sampling-unfriendly" a graph is by the number
//! of transitions a simple random walk needs before the Geweke z-score of
//! its sample chain drops below 0.1 — reporting ≈700 for the full Twitter
//! graph and ≈610 for the `privacy` term-induced subgraph, with the
//! level-by-level subgraph converging much faster. [`measure_burn_in`]
//! reproduces that methodology; [`adaptive_srw_config`] uses a pilot
//! measurement to pick MA-SRW's burn-in instead of a fixed constant.

use crate::error::EstimateError;
use crate::query::AggregateQuery;
use crate::seeds::fetch_seeds;
use crate::view::{QueryGraph, ViewKind};
use crate::walker::srw::SrwConfig;
use microblog_api::CachingClient;
use microblog_graph::diagnostics;
use rand::Rng;

/// The paper's Geweke threshold (`Z <= 0.1`).
pub const PAPER_GEWEKE_THRESHOLD: f64 = 0.1;

/// The outcome of a burn-in measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurnInMeasurement {
    /// Steps the chain actually took (may stop early on budget).
    pub chain_length: usize,
    /// The measured burn-in, `None` if the chain never converged within
    /// its recorded length.
    pub burn_in: Option<usize>,
}

/// Walks `view` for up to `max_steps` transitions recording the query
/// metric `f(u)` at every visited node, then scans Geweke z-scores to find
/// the burn-in (smallest discarded prefix with `|Z| <= threshold`).
///
/// Budget exhaustion mid-walk truncates the chain rather than failing.
pub fn measure_burn_in<R: Rng>(
    client: &mut CachingClient<'_>,
    query: &AggregateQuery,
    view: ViewKind,
    max_steps: usize,
    threshold: f64,
    rng: &mut R,
) -> Result<BurnInMeasurement, EstimateError> {
    let seeds = fetch_seeds(client, query)?;
    let now = client.now();
    let mut graph = QueryGraph::new(client, query, view);
    let mut chain: Vec<f64> = Vec::with_capacity(max_steps);
    let mut current = seeds[rng.gen_range(0..seeds.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
    for _ in 0..max_steps {
        let user_view = match graph.view(current) {
            Ok(v) => v,
            Err(e) if e.ends_walk() => break,
            Err(e) => return Err(e.into()),
        };
        // The diagnostic runs on the chain of f(u) values — the quantity
        // whose mixing actually matters for the aggregate.
        let (_, num, _) = query.sample_values(&user_view, now);
        chain.push(num);
        let nbrs = match graph.neighbors(current) {
            Ok(n) => n,
            Err(e) if e.ends_walk() => break,
            Err(e) => return Err(e.into()),
        };
        if nbrs.is_empty() {
            current = seeds[rng.gen_range(0..seeds.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
            continue;
        }
        current = nbrs[rng.gen_range(0..nbrs.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
    }
    if chain.is_empty() {
        return Err(EstimateError::NoSamples);
    }
    let step = (chain.len() / 50).max(1);
    Ok(BurnInMeasurement {
        chain_length: chain.len(),
        burn_in: diagnostics::burn_in(&chain, threshold, step),
    })
}

/// Builds an [`SrwConfig`] whose burn-in comes from a pilot Geweke
/// measurement of `pilot_steps` transitions (falling back to the default
/// when the pilot never converges).
pub fn adaptive_srw_config<R: Rng>(
    client: &mut CachingClient<'_>,
    query: &AggregateQuery,
    view: ViewKind,
    pilot_steps: usize,
    rng: &mut R,
) -> Result<SrwConfig, EstimateError> {
    let measurement = measure_burn_in(
        client,
        query,
        view,
        pilot_steps,
        PAPER_GEWEKE_THRESHOLD,
        rng,
    )?;
    let mut cfg = SrwConfig::new(view);
    if let Some(b) = measurement.burn_in {
        cfg.burn_in = b.max(10);
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use microblog_api::{ApiProfile, MicroblogClient, QueryBudget};
    use microblog_platform::scenario::{twitter_2013, Scale};
    use microblog_platform::{Duration, UserMetric};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn measures_burn_in_on_level_view() {
        let s = twitter_2013(Scale::Tiny, 95);
        let kw = s.keyword("new york").unwrap();
        let q = AggregateQuery::avg(UserMetric::DisplayNameLength, kw).in_window(s.window);
        let mut client =
            CachingClient::new(MicroblogClient::new(&s.platform, ApiProfile::twitter()));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m = measure_burn_in(
            &mut client,
            &q,
            ViewKind::level(Duration::DAY),
            1_500,
            PAPER_GEWEKE_THRESHOLD,
            &mut rng,
        )
        .unwrap();
        assert_eq!(m.chain_length, 1_500);
        // Display-name lengths mix fast: convergence within the chain.
        let b = m.burn_in.expect("chain should converge");
        assert!(b < 800, "burn-in {b}");
    }

    #[test]
    fn budget_truncates_chain_gracefully() {
        let s = twitter_2013(Scale::Tiny, 96);
        let kw = s.keyword("privacy").unwrap();
        let q = AggregateQuery::avg(UserMetric::FollowerCount, kw).in_window(s.window);
        let mut client = CachingClient::new(MicroblogClient::with_budget(
            &s.platform,
            ApiProfile::twitter(),
            QueryBudget::limited(1_500),
        ));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        // Full-graph view: every step touches fresh users, so the budget
        // genuinely runs out (keyword-scoped views get fully cached on
        // tiny worlds and stop charging).
        let m = measure_burn_in(
            &mut client,
            &q,
            ViewKind::FullGraph,
            100_000,
            PAPER_GEWEKE_THRESHOLD,
            &mut rng,
        )
        .unwrap();
        assert!(m.chain_length < 100_000, "budget should truncate the walk");
        assert!(m.chain_length > 0);
    }

    #[test]
    fn adaptive_config_uses_measured_burn_in() {
        let s = twitter_2013(Scale::Tiny, 97);
        let kw = s.keyword("new york").unwrap();
        let q = AggregateQuery::avg(UserMetric::DisplayNameLength, kw).in_window(s.window);
        let mut client =
            CachingClient::new(MicroblogClient::new(&s.platform, ApiProfile::twitter()));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let view = ViewKind::level(Duration::DAY);
        let cfg = adaptive_srw_config(&mut client, &q, view, 1_200, &mut rng).unwrap();
        assert!(cfg.burn_in >= 10);
        assert_eq!(cfg.view, view);
    }
}
