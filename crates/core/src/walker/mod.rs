//! GRAPH-WALKER: the sampling algorithms (§4–§5).
//!
//! * [`srw`] — MA-SRW and its baselines: a simple random walk over any
//!   [`crate::view::ViewKind`], with degree-reweighted ratio estimation for
//!   AVG and collision (Katzir) size estimation for COUNT/SUM.
//! * [`tarw`] — MA-TARW: the topology-aware bottom-top-bottom walk with
//!   `ESTIMATE-p` selection-probability estimation (Algorithm 2/3).
//! * [`mr`] — the mark-and-recapture baseline of the paper's §6 (Katzir et
//!   al. adapted to keyword-conditioned counting), with the conservative
//!   sample spacing the original requires.

pub mod burnin;
pub mod mhrw;
pub mod mr;
pub mod multi;
pub mod parallel;
pub mod snowball;
pub mod srw;
pub mod tarw;

use crate::query::{Aggregate, AggregateQuery};
use microblog_api::UserView;
use microblog_graph::sizing::CollisionCounter;
use microblog_platform::Timestamp;

/// RNG seed for chain `chain` of a run seeded with `run_seed` — shared by
/// the thread-parallel runner ([`parallel`]) and the interleaved
/// multi-chain executor ([`multi`]), so `k` interleaved chains draw the
/// same trajectories `k` parallel chains would.
///
/// Chains draw from a SplitMix64 stream instead of the naive
/// `run_seed + chain`, which aliased across runs: chain 1 of run 7 was
/// chain 0 of run 8, so adjacent run seeds shared all but one trajectory
/// and "independent" repetitions were anything but.
pub(crate) fn chain_seed(run_seed: u64, chain: u64) -> u64 {
    const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
    crate::view::splitmix64(run_seed.wrapping_add(GAMMA.wrapping_mul(chain)))
}

impl AggregateQuery {
    /// Per-sample values for estimation: `(matches, numerator,
    /// denominator)` where the meaning depends on the aggregate:
    ///
    /// * `Count` — numerator is the match indicator;
    /// * `Sum(m)` — numerator is `f(u)` (0 for non-matching users);
    /// * `Avg(m)` — numerator `f(u)`, denominator the match indicator;
    /// * `RatioOfSums` — both metrics.
    pub(crate) fn sample_values(&self, view: &UserView, now: Timestamp) -> (bool, f64, f64) {
        let matches = self.matches(view, now);
        match self.aggregate {
            Aggregate::Count => (matches, matches as u8 as f64, 0.0),
            Aggregate::Sum(m) => (matches, self.metric_value(m, view, now), 0.0),
            Aggregate::Avg(m) => (
                matches,
                self.metric_value(m, view, now),
                matches as u8 as f64,
            ),
            Aggregate::RatioOfSums {
                numerator,
                denominator,
            } => (
                matches,
                self.metric_value(numerator, view, now),
                self.metric_value(denominator, view, now),
            ),
        }
    }

    /// Whether this aggregate needs a population-size estimate (COUNT/SUM
    /// do; AVG-style ratios do not — the size cancels).
    pub(crate) fn needs_size_estimate(&self) -> bool {
        matches!(self.aggregate, Aggregate::Count | Aggregate::Sum(_))
    }
}

/// Accumulates degree-weighted walk samples and produces the final
/// estimate for any aggregate kind.
///
/// Under a simple random walk the stationary probability of `u` is
/// proportional to its degree, so uniform-population quantities are
/// estimated with importance weights `1/d(u)`:
/// `E_uniform[g] ≈ (Σ g(u)/d(u)) / (Σ 1/d(u))`.
#[derive(Clone, Debug, Default)]
pub(crate) struct SampleAccumulator {
    /// Σ 1/d.
    s0: f64,
    /// Σ match/d.
    s_match: f64,
    /// Σ num/d.
    s_num: f64,
    /// Σ den/d.
    s_den: f64,
    /// Collision counter for population-size estimation.
    collisions: CollisionCounter,
    /// Whether a sample should also feed the collision counter.
    samples: usize,
}

impl SampleAccumulator {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Adds a sample with the given view degree. `count_collision` guards
    /// the size estimator (M&R requires wider sample spacing than ratio
    /// estimation, so the two sample streams can differ).
    pub(crate) fn push(
        &mut self,
        node: u32,
        degree: usize,
        matches: bool,
        num: f64,
        den: f64,
        count_collision: bool,
    ) {
        if degree == 0 {
            return;
        }
        let w = 1.0 / degree as f64;
        self.s0 += w;
        if matches {
            self.s_match += w;
        }
        self.s_num += num * w;
        self.s_den += den * w;
        self.samples += 1;
        if count_collision {
            self.collisions.push(node, degree);
        }
    }

    pub(crate) fn samples(&self) -> usize {
        self.samples
    }

    /// Serializes the accumulator for a walker checkpoint (floats as
    /// raw bits so resume is bit-identical).
    pub(crate) fn snapshot(&self) -> crate::checkpoint::AccumState {
        crate::checkpoint::AccumState {
            s0_bits: self.s0.to_bits(),
            s_match_bits: self.s_match.to_bits(),
            s_num_bits: self.s_num.to_bits(),
            s_den_bits: self.s_den.to_bits(),
            collisions: self.collisions.snapshot(),
            samples: self.samples as u64,
        }
    }

    /// Rebuilds an accumulator from checkpointed state.
    pub(crate) fn restore(state: &crate::checkpoint::AccumState) -> Self {
        SampleAccumulator {
            s0: f64::from_bits(state.s0_bits),
            s_match: f64::from_bits(state.s_match_bits),
            s_num: f64::from_bits(state.s_num_bits),
            s_den: f64::from_bits(state.s_den_bits),
            collisions: CollisionCounter::restore(&state.collisions),
            samples: state.samples as usize,
        }
    }

    /// The Katzir population-size estimate of the *walked graph*.
    pub(crate) fn size_estimate(&self) -> Option<f64> {
        self.collisions.estimate()
    }

    /// Final estimate for `query`'s aggregate; `None` when the necessary
    /// pieces (samples, collisions, non-zero denominators) are missing.
    pub(crate) fn finalize(&self, query: &AggregateQuery) -> Option<f64> {
        if self.samples == 0 || self.s0 <= 0.0 {
            return None;
        }
        match query.aggregate {
            Aggregate::Count => self.size_estimate().map(|n| n * self.s_match / self.s0),
            Aggregate::Sum(_) => self.size_estimate().map(|n| n * self.s_num / self.s0),
            Aggregate::Avg(_) => {
                if self.s_match > 0.0 {
                    Some(self.s_num / self.s_match)
                } else {
                    None
                }
            }
            Aggregate::RatioOfSums { .. } => {
                if self.s_den > 0.0 {
                    Some(self.s_num / self.s_den)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microblog_platform::{KeywordId, UserMetric};

    fn accum_with(samples: &[(u32, usize, bool, f64, f64)], collide: bool) -> SampleAccumulator {
        let mut a = SampleAccumulator::new();
        for &(u, d, m, num, den) in samples {
            a.push(u, d, m, num, den, collide);
        }
        a
    }

    #[test]
    fn avg_is_degree_corrected_ratio() {
        let q = AggregateQuery::avg(UserMetric::FollowerCount, KeywordId(0));
        // Two matching users: f=10 with degree 1, f=30 with degree 3.
        // Degree-corrected mean = (10/1 + 30/3) / (1/1 + 1/3) = 20/(4/3) = 15.
        let a = accum_with(&[(1, 1, true, 10.0, 1.0), (2, 3, true, 30.0, 1.0)], false);
        assert!((a.finalize(&q).unwrap() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn count_needs_collisions() {
        let q = AggregateQuery::count(KeywordId(0));
        let a = accum_with(&[(1, 2, true, 1.0, 0.0), (2, 2, true, 1.0, 0.0)], true);
        assert_eq!(a.finalize(&q), None, "no collision yet");
        let b = accum_with(
            &[
                (1, 2, true, 1.0, 0.0),
                (1, 2, true, 1.0, 0.0),
                (2, 2, false, 0.0, 0.0),
            ],
            true,
        );
        // n̂ = (Σd)(Σ1/d)/(2Ψ) = (6)(1.5)/2 = 4.5; count = n̂ · (1/2+1/2)/(3/2) = 3.
        let est = b.finalize(&q).unwrap();
        assert!((est - 3.0).abs() < 1e-9, "est {est}");
    }

    #[test]
    fn zero_degree_samples_are_dropped() {
        let q = AggregateQuery::avg(UserMetric::FollowerCount, KeywordId(0));
        let a = accum_with(&[(1, 0, true, 5.0, 1.0)], false);
        assert_eq!(a.samples(), 0);
        assert_eq!(a.finalize(&q), None);
    }

    #[test]
    fn avg_without_matches_is_none() {
        let q = AggregateQuery::avg(UserMetric::FollowerCount, KeywordId(0));
        let a = accum_with(&[(1, 2, false, 0.0, 0.0)], false);
        assert_eq!(a.finalize(&q), None);
    }

    #[test]
    fn needs_size_estimate_flags() {
        assert!(AggregateQuery::count(KeywordId(0)).needs_size_estimate());
        assert!(AggregateQuery::sum(UserMetric::One, KeywordId(0)).needs_size_estimate());
        assert!(!AggregateQuery::avg(UserMetric::One, KeywordId(0)).needs_size_estimate());
        assert!(!AggregateQuery::post_avg(
            UserMetric::KeywordPostLikes,
            UserMetric::KeywordPostCount,
            KeywordId(0)
        )
        .needs_size_estimate());
    }
}
