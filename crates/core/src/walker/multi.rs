//! Interleaved multi-chain SRW: N chains, one client, zero idle RTT.
//!
//! [`super::parallel`] runs chains on OS threads with separate client
//! caches — independent crawlers. This module instead runs N logical
//! chains *interleaved on one thread over one shared client*, advancing
//! them in rounds: each round first **plans** every live chain's next
//! step (announcing the fetches the step will need through the client's
//! prefetch sink), then runs a **warm sweep**
//! ([`QueryGraph::prefetch_step`]) that consumes each chain's planned
//! connections fetch and announces the candidate probe wave one level
//! deeper, then **executes** the steps in the same order — announcing
//! each chain's *next*-round fetches as soon as its step lands, so the
//! tail of one round overlaps the head of the next. With a fetch
//! scheduler attached, chain 1's step overlaps the RTT of chains 2..N's
//! fetches — the walk computes while the network works. Without a sink
//! the announces are no-ops and the rounds degenerate to plain
//! sequential execution — which is exactly the point:
//!
//! # Determinism
//!
//! * Chain trajectories use per-chain RNG streams seeded by
//!   [`super::chain_seed`], never shared state, so a chain's path depends
//!   only on `(run_seed, chain_index)`.
//! * The round order is a fixed permutation derived from the run seed
//!   ([`round_order`]) — a deterministic function of the seed, not of
//!   thread timing.
//! * Estimates, charged totals, per-chain sample sequences and
//!   checkpoints are **bit-identical** with and without a scheduler:
//!   announcing changes when backend calls happen, never whether, and
//!   consumption (and therefore charging) order is fixed by the round
//!   structure.
//! * Checkpoint safe points sit at round boundaries only, after a
//!   [`microblog_api::CachingClient::drain_prefetch`], so a captured
//!   state never races an in-flight fetch and resume needs no scheduler
//!   state.
//! * The first `BudgetExhausted` walk-ending error freezes the run:
//!   every chain is marked done at the next round boundary *before* the
//!   safe point runs, so the checkpoint captures the killed state and a
//!   resume cannot step past the horizon a sequential run stopped at.

use crate::checkpoint::{
    CheckpointCtl, CheckpointRng, MultiChainState, MultiSrwState, SamplerState, SrwState,
};
use crate::error::EstimateError;
use crate::estimate::{Estimate, RunningStats};
use crate::query::AggregateQuery;
use crate::seeds::fetch_seeds;
use crate::view::{QueryGraph, ViewKind};
use crate::walker::srw::SrwConfig;
use microblog_api::CachingClient;
use microblog_obs::{Category, FieldValue, Tracer, WalkPhase};
use microblog_platform::UserId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Batch size for the per-chain batch-mean standard error (matches the
/// solo SRW estimator).
const BATCH: usize = 64;

/// Configuration of the interleaved multi-chain SRW executor.
#[derive(Clone, Copy, Debug)]
pub struct MultiSrwConfig {
    /// The per-chain walk configuration ([`SrwConfig::max_steps`] caps
    /// each chain individually).
    pub srw: SrwConfig,
    /// Number of interleaved chains (≥ 1).
    pub chains: usize,
}

/// The fixed chain-scheduling permutation for a run: a Fisher–Yates
/// shuffle driven by a SplitMix64 stream of the run seed, so the order
/// chains plan and execute in is a pure function of the seed.
fn round_order(seed: u64, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut x = seed ^ 0xC0DE_5EED_0B57_AC1E;
    for i in (1..n).rev() {
        x = crate::view::splitmix64(x);
        let j = (x % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// One logical chain's live state — the in-memory form of
/// [`MultiChainState`].
struct Chain {
    rng: ChaCha8Rng,
    current: UserId,
    step_in_chain: usize,
    total_steps: usize,
    kept: usize,
    accum: super::SampleAccumulator,
    batch: RunningStats,
    batch_accum: super::SampleAccumulator,
    done: bool,
}

impl Chain {
    fn fresh(run_seed: u64, index: usize, seeds: &[UserId]) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(super::chain_seed(run_seed, index as u64));
        let current = seeds[rand::Rng::gen_range(&mut rng, 0..seeds.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
        Chain {
            rng,
            current,
            step_in_chain: 0,
            total_steps: 0,
            kept: 0,
            accum: super::SampleAccumulator::new(),
            batch: RunningStats::new(),
            batch_accum: super::SampleAccumulator::new(),
            done: false,
        }
    }

    fn restore(state: &MultiChainState) -> Result<Self, EstimateError> {
        let rng = state.rng.to_chacha8().ok_or(EstimateError::Unsupported(
            "checkpoint carries a malformed chain RNG state",
        ))?;
        let walk = &state.walk;
        Ok(Chain {
            rng,
            current: walk.current,
            step_in_chain: walk.step_in_chain as usize,
            total_steps: walk.total_steps as usize,
            kept: walk.kept as usize,
            accum: super::SampleAccumulator::restore(&walk.accum),
            batch: RunningStats::restore(walk.batch),
            batch_accum: super::SampleAccumulator::restore(&walk.batch_accum),
            done: state.done,
        })
    }

    fn capture(&self) -> Option<MultiChainState> {
        Some(MultiChainState {
            rng: self.rng.rng_state()?,
            walk: SrwState {
                current: self.current,
                step_in_chain: self.step_in_chain as u64,
                total_steps: self.total_steps as u64,
                kept: self.kept as u64,
                accum: self.accum.snapshot(),
                batch: self.batch.snapshot(),
                batch_accum: self.batch_accum.snapshot(),
            },
            done: self.done,
        })
    }

    fn phase(&self, config: &SrwConfig) -> WalkPhase {
        if config.burn_in > 0 && self.step_in_chain < config.burn_in {
            WalkPhase::BurnIn
        } else {
            WalkPhase::Walk
        }
    }

    /// Whether the *next* step will hit the sampling branch — used by the
    /// planner to decide if the chain's own timeline must be announced.
    fn will_sample(&self, config: &SrwConfig) -> bool {
        self.step_in_chain >= config.burn_in
            && self.step_in_chain.is_multiple_of(config.thinning.max(1))
    }

    /// Advances the chain by one transition — the loop body of
    /// [`super::srw::estimate_recoverable`], operating on this chain's
    /// state. Walk-ending conditions mark the chain done; only
    /// non-recoverable errors propagate.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        index: usize,
        graph: &mut QueryGraph<'_, '_>,
        query: &AggregateQuery,
        config: &SrwConfig,
        seeds: &[UserId],
        now: microblog_platform::Timestamp,
        tracer: &Tracer,
        nbrs: &mut Vec<UserId>,
        budget_dead: &mut bool,
    ) -> Result<(), EstimateError> {
        if self.total_steps >= config.max_steps {
            self.done = true;
            return Ok(());
        }
        self.total_steps += 1;
        match graph.neighbors_into(self.current, nbrs) {
            Ok(()) => {}
            Err(e) if e.ends_walk() => {
                if matches!(e, microblog_api::ApiError::BudgetExhausted { .. }) {
                    *budget_dead = true;
                }
                self.done = true;
                return Ok(());
            }
            Err(e) => return Err(e.into()),
        }
        // `step_in_chain` moves by single increments (restarts reset it
        // below burn-in), so the crossing iteration is exactly `== burn_in`
        // — the stateless form of the solo walker's sticky phase flag.
        if config.burn_in > 0 && self.step_in_chain == config.burn_in {
            tracer.emit(
                Category::Walk,
                "burnin_end",
                &[
                    ("chain", FieldValue::from(index)),
                    ("step", FieldValue::from(self.total_steps)),
                    ("chain_step", FieldValue::from(self.step_in_chain)),
                ],
            );
        }
        if self.step_in_chain >= config.burn_in
            && self.step_in_chain.is_multiple_of(config.thinning.max(1))
        {
            let view = match graph.view(self.current) {
                Ok(v) => v,
                Err(e) if e.ends_walk() => {
                    if matches!(e, microblog_api::ApiError::BudgetExhausted { .. }) {
                        *budget_dead = true;
                    }
                    self.done = true;
                    return Ok(());
                }
                Err(e) => return Err(e.into()),
            };
            let (matches, num, den) = query.sample_values(&view, now);
            let collide = query.needs_size_estimate()
                && self.kept.is_multiple_of(config.collision_spacing.max(1));
            self.accum
                .push(self.current.0, nbrs.len(), matches, num, den, collide);
            self.batch_accum
                .push(self.current.0, nbrs.len(), matches, num, den, false);
            self.kept += 1;
            tracer.emit(
                Category::Walk,
                "sample",
                &[
                    ("chain", FieldValue::from(index)),
                    ("node", FieldValue::from(self.current.0)),
                    ("degree", FieldValue::from(nbrs.len())),
                    ("matches", FieldValue::U64(u64::from(matches))),
                    ("collide", FieldValue::U64(u64::from(collide))),
                ],
            );
            if self.batch_accum.samples() >= BATCH {
                if let Some(v) = self.batch_accum.finalize(query) {
                    self.batch.push(v);
                }
                self.batch_accum = super::SampleAccumulator::new();
            }
        }
        if nbrs.is_empty() {
            // Dangling under this view: restart the chain from a seed.
            tracer.emit(
                Category::Walk,
                "restart",
                &[
                    ("chain", FieldValue::from(index)),
                    ("node", FieldValue::from(self.current.0)),
                    ("step", FieldValue::from(self.total_steps)),
                ],
            );
            self.current = seeds[rand::Rng::gen_range(&mut self.rng, 0..seeds.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
            self.step_in_chain = 0;
            return Ok(());
        }
        let next = nbrs[rand::Rng::gen_range(&mut self.rng, 0..nbrs.len())]; // ma-lint: allow(panic-safety) reason="index sampled from gen_range(0..len), in range by construction"
        tracer.emit(
            Category::Walk,
            "step",
            &[
                ("chain", FieldValue::from(index)),
                ("from", FieldValue::from(self.current.0)),
                ("to", FieldValue::from(next.0)),
                ("degree", FieldValue::from(nbrs.len())),
            ],
        );
        self.current = next;
        self.step_in_chain += 1;
        Ok(())
    }
}

/// Runs `config.chains` interleaved chains until each exhausts the shared
/// budget (or its step cap), then pools the per-chain estimates like
/// [`super::parallel::estimate_parallel`] — plain average with a
/// cross-chain standard error.
pub fn estimate<R: CheckpointRng>(
    client: &mut CachingClient<'_>,
    query: &AggregateQuery,
    config: &MultiSrwConfig,
    seed: u64,
    rng: &mut R,
) -> Result<Estimate, EstimateError> {
    estimate_recoverable(
        client,
        query,
        config,
        seed,
        rng,
        &mut CheckpointCtl::disabled(),
        None,
    )
}

/// [`estimate`] with checkpointing: emits [`SamplerState::MultiSrw`]
/// checkpoints at round boundaries through `ctl`, and resumes
/// bit-identically from `resume`.
///
/// `rng` is the job's outer RNG; the chains never draw from it (each has
/// its own seeded stream) — it is captured into checkpoints so the
/// generic resume path can restore it.
pub fn estimate_recoverable<R: CheckpointRng>(
    client: &mut CachingClient<'_>,
    query: &AggregateQuery,
    config: &MultiSrwConfig,
    seed: u64,
    rng: &mut R,
    ctl: &mut CheckpointCtl<'_>,
    resume: Option<&MultiSrwState>,
) -> Result<Estimate, EstimateError> {
    let n = config.chains.max(1);
    let tracer = client.tracer().clone();
    let seeds = fetch_seeds(client, query)?;
    let now = client.now();
    let mut graph = QueryGraph::new(client, query, config.srw.view);
    let mut chains: Vec<Chain> = match resume {
        Some(state) => {
            if state.chains.len() != n {
                return Err(EstimateError::Unsupported(
                    "checkpoint chain count does not match the configuration",
                ));
            }
            state
                .chains
                .iter()
                .map(Chain::restore)
                .collect::<Result<_, _>>()?
        }
        None => (0..n).map(|i| Chain::fresh(seed, i, &seeds)).collect(),
    };
    // Chain scheduling order: a deterministic function of the seed.
    let order = round_order(seed, n);
    let mut nbrs: Vec<UserId> = Vec::new();
    let mut announce_conns: Vec<UserId> = Vec::new();
    let mut announce_tls: Vec<UserId> = Vec::new();
    let needs_level = matches!(config.srw.view, ViewKind::LevelByLevel { .. });
    // Set when any chain's fetch fails with budget exhaustion. The shared
    // budget is the walk's driver: once it is spent, no unvisited node can
    // be fetched, so the reachable horizon is frozen and further rounds
    // would only resample memoized nodes (up to `max_steps` of free-
    // spinning, pure CPU). The whole walk ends at the next round boundary
    // instead — deterministically, and *before* the checkpoint capture, so
    // a resume from that checkpoint sees every chain already done.
    let mut budget_dead = false;
    loop {
        if budget_dead {
            for c in chains.iter_mut() {
                c.done = true;
            }
        }
        // Round boundary = the safe point: drain in-flight prefetches so
        // the capture races nothing, then snapshot every chain.
        ctl.tick(|| {
            graph.client_mut().drain_prefetch();
            let total: u64 = chains.iter().map(|c| c.total_steps as u64).sum();
            let captured: Option<Vec<MultiChainState>> =
                chains.iter().map(Chain::capture).collect();
            Some((
                total,
                rng.rng_state()?,
                graph.client().checkpoint_state(),
                SamplerState::MultiSrw(MultiSrwState { chains: captured? }),
            ))
        });
        if chains.iter().all(|c| c.done) {
            break;
        }
        // Plan: announce what each live chain's next step will fetch.
        // `neighbors_into` always fetches connections first; the chain's
        // own timeline is only fetched on level views (membership of the
        // node itself) or when the step will sample it.
        announce_conns.clear();
        announce_tls.clear();
        for &i in &order {
            let c = &chains[i]; // ma-lint: allow(panic-safety) reason="order is a permutation of 0..chains.len()"
            if c.done || c.total_steps >= config.srw.max_steps {
                continue;
            }
            announce_conns.push(c.current);
            if needs_level || c.will_sample(&config.srw) {
                announce_tls.push(c.current);
            }
        }
        graph.client_mut().announce_connections(&announce_conns);
        graph.client_mut().announce_timelines(&announce_tls);
        // Warm sweep: resolve every planned connections fetch now
        // (consuming the prefetches announced above) and announce each
        // chain's candidate membership probes, so the per-chain timeline
        // batches — the bulk of a round's traffic — are all in flight
        // before any chain steps. Without this, each chain's batch is
        // only announced inside its own step and the N batches resolve
        // as N serial RTT walls. The fetches here are memoized, so the
        // steps below consume them without re-issuing; with no sink the
        // sweep issues the identical call sequence serially, keeping
        // pipelined and sequential charging aligned.
        for &i in &order {
            let c = &chains[i]; // ma-lint: allow(panic-safety) reason="order is a permutation of 0..chains.len()"
            if c.done || c.total_steps >= config.srw.max_steps {
                continue;
            }
            graph.prefetch_step(c.current);
        }
        // Execute the planned steps in the same deterministic order.
        for &i in &order {
            let chain = &mut chains[i]; // ma-lint: allow(panic-safety) reason="order is a permutation of 0..chains.len()"
            if chain.done {
                continue;
            }
            tracer.set_phase(chain.phase(&config.srw));
            chain.step(
                i,
                &mut graph,
                query,
                &config.srw,
                &seeds,
                now,
                &tracer,
                &mut nbrs,
                &mut budget_dead,
            )?;
            // Early plan: the transition just chosen fixes what the next
            // round fetches for this chain, so announce it immediately —
            // the fetch then overlaps the remainder of *this* round
            // instead of stalling the next round's warm sweep on a cold
            // connections call. The start-of-round announce still runs
            // (announces dedup), covering resumes and restarts.
            if !chain.done {
                let u = chain.current;
                graph
                    .client_mut()
                    .announce_connections(std::slice::from_ref(&u));
                if needs_level || chain.will_sample(&config.srw) {
                    graph
                        .client_mut()
                        .announce_timelines(std::slice::from_ref(&u));
                }
            }
        }
    }

    // Pool per-chain estimates exactly like the parallel runner: plain
    // average, cross-chain spread as the standard error.
    let mut pooled = RunningStats::new();
    let mut samples = 0usize;
    for chain in &chains {
        if let Some(v) = chain.accum.finalize(query) {
            pooled.push(v);
            samples += chain.accum.samples();
        }
    }
    if pooled.count() == 0 {
        return Err(EstimateError::NoSamples);
    }
    Ok(Estimate {
        value: pooled.mean(),
        std_err: pooled.std_err(),
        cost: graph.cost(),
        samples,
        instances: pooled.count() as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use microblog_api::{ApiProfile, MicroblogClient, QueryBudget};
    use microblog_platform::scenario::{twitter_2013, Scale};
    use microblog_platform::{Duration, UserMetric};

    fn client_for(platform: &microblog_platform::Platform, budget: u64) -> CachingClient<'_> {
        CachingClient::new(MicroblogClient::with_budget(
            platform,
            ApiProfile::twitter(),
            QueryBudget::limited(budget),
        ))
    }

    fn cfg(chains: usize) -> MultiSrwConfig {
        let mut srw = SrwConfig::new(ViewKind::level(Duration::DAY));
        srw.burn_in = 30;
        MultiSrwConfig { srw, chains }
    }

    #[test]
    fn round_order_is_a_seeded_permutation() {
        let a = round_order(7, 8);
        let b = round_order(7, 8);
        assert_eq!(a, b, "same seed, same order");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "a permutation");
        // Some nearby seed reorders the chains (not a fixed identity).
        assert!((0..20).any(|s| round_order(s, 8) != a));
    }

    #[test]
    fn multi_chain_converges_and_reports_spread() {
        let s = twitter_2013(Scale::Tiny, 51);
        let q = crate::query::AggregateQuery::avg(
            UserMetric::FollowerCount,
            s.keyword("privacy").unwrap(),
        )
        .in_window(s.window);
        let truth = q.ground_truth(&s.platform).unwrap();
        let mut client = client_for(&s.platform, 40_000);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let est = estimate(&mut client, &q, &cfg(4), 1, &mut rng).unwrap();
        let rel = (est.value - truth).abs() / truth;
        assert!(rel < 0.5, "rel err {rel}: est {} truth {truth}", est.value);
        assert!(est.cost <= 40_000);
        assert!(est.std_err.is_some(), "cross-chain spread available");
        assert_eq!(est.instances, 4, "all chains contribute");
    }

    #[test]
    fn single_chain_is_supported() {
        let s = twitter_2013(Scale::Tiny, 52);
        let q = crate::query::AggregateQuery::avg(
            UserMetric::DisplayNameLength,
            s.keyword("boston").unwrap(),
        )
        .in_window(s.window);
        let mut client = client_for(&s.platform, 10_000);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let est = estimate(&mut client, &q, &cfg(1), 2, &mut rng).unwrap();
        assert!(est.value.is_finite());
        assert_eq!(est.instances, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = twitter_2013(Scale::Tiny, 53);
        let q = crate::query::AggregateQuery::avg(
            UserMetric::FollowerCount,
            s.keyword("new york").unwrap(),
        )
        .in_window(s.window);
        let run = |seed: u64| {
            let mut client = client_for(&s.platform, 15_000);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            estimate(&mut client, &q, &cfg(3), seed, &mut rng).unwrap()
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a.value, b.value);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.samples, b.samples);
        let c = run(10);
        assert_ne!(a.value, c.value, "different seed, different walk");
    }
}
