//! BFS/DFS snowball sampling baselines.
//!
//! The graph-sampling literature the paper builds on (Gjoka et al. [13],
//! Leskovec & Faloutsos [19]) compares random walks against breadth- and
//! depth-first crawls. Snowball samples are *biased* toward the seeds'
//! neighborhoods (BFS additionally toward high-degree nodes) and offer no
//! principled bias correction without knowing the graph — which is exactly
//! why the paper's estimators are walk-based. This module provides them as
//! baselines so that bias is demonstrable.

use crate::checkpoint::{CheckpointCtl, CheckpointRng, SamplerState, SnowballState};
use crate::error::EstimateError;
use crate::estimate::Estimate;
use crate::query::{Aggregate, AggregateQuery};
use crate::seeds::fetch_seeds;
use crate::view::{QueryGraph, ViewKind};
use microblog_api::CachingClient;
use microblog_platform::UserId;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};

/// Crawl order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrawlOrder {
    /// Breadth-first (queue).
    Bfs,
    /// Depth-first (stack).
    Dfs,
}

/// Configuration of the snowball baseline.
#[derive(Clone, Copy, Debug)]
pub struct SnowballConfig {
    /// Graph view to crawl.
    pub view: ViewKind,
    /// Crawl order.
    pub order: CrawlOrder,
    /// Stop after this many distinct sampled users (the budget may stop
    /// the crawl earlier).
    pub max_nodes: usize,
}

impl SnowballConfig {
    /// BFS snowball over the given view.
    pub fn bfs(view: ViewKind) -> Self {
        SnowballConfig {
            view,
            order: CrawlOrder::Bfs,
            max_nodes: 100_000,
        }
    }

    /// DFS snowball over the given view.
    pub fn dfs(view: ViewKind) -> Self {
        SnowballConfig {
            view,
            order: CrawlOrder::Dfs,
            max_nodes: 100_000,
        }
    }
}

/// Crawls from the search seeds and estimates the aggregate from the raw
/// (uncorrected) sample — the biased baseline.
///
/// COUNT is estimated as the number of *distinct matching users crawled*,
/// a lower bound that only becomes exact when the crawl exhausts the
/// subgraph. AVG/ratio aggregates are plain sample means.
pub fn estimate<R: CheckpointRng>(
    client: &mut CachingClient<'_>,
    query: &AggregateQuery,
    config: &SnowballConfig,
    rng: &mut R,
) -> Result<Estimate, EstimateError> {
    estimate_recoverable(
        client,
        query,
        config,
        rng,
        &mut CheckpointCtl::disabled(),
        None,
    )
}

/// [`estimate`] with checkpointing: emits [`SamplerState::Snowball`]
/// checkpoints through `ctl` and resumes bit-identically from `resume`
/// (client memo and RNG restored by the caller).
pub fn estimate_recoverable<R: CheckpointRng>(
    client: &mut CachingClient<'_>,
    query: &AggregateQuery,
    config: &SnowballConfig,
    rng: &mut R,
    ctl: &mut CheckpointCtl<'_>,
    resume: Option<&SnowballState>,
) -> Result<Estimate, EstimateError> {
    let seeds = fetch_seeds(client, query)?;
    let now = client.now();
    let mut graph = QueryGraph::new(client, query, config.view);

    let mut frontier: VecDeque<UserId> = VecDeque::new();
    let mut visited: HashSet<UserId>;
    let mut sum_num;
    let mut sum_den;
    let mut matches_count;
    let mut samples;
    match resume {
        Some(state) => {
            frontier.extend(state.frontier.iter().copied());
            // ma-lint: allow(determinism) reason="state.visited is the checkpoint's sorted Vec, not the hash set; Vec iteration is ordered"
            visited = state.visited.iter().copied().collect();
            sum_num = f64::from_bits(state.sum_num_bits);
            sum_den = f64::from_bits(state.sum_den_bits);
            matches_count = state.matches_count as usize;
            samples = state.samples as usize;
        }
        None => {
            let mut shuffled = seeds.clone();
            shuffled.shuffle(rng);
            frontier.extend(shuffled);
            visited = HashSet::new();
            sum_num = 0.0;
            sum_den = 0.0;
            matches_count = 0usize;
            samples = 0usize;
        }
    }
    // One neighbor buffer for the whole crawl.
    let mut nbrs: Vec<UserId> = Vec::new();
    // Upcoming crawl targets announced to an attached fetch pipeline.
    let mut lookahead: Vec<UserId> = Vec::new();
    // How many distinct upcoming targets to announce per iteration, and
    // how deep into the frontier to scan for them.
    const LOOKAHEAD: usize = 8;
    const SCAN: usize = 64;

    loop {
        // Safe point, before the next frontier pop.
        ctl.tick(|| {
            graph.client_mut().drain_prefetch();
            // ma-lint: allow(determinism) reason="collected then sorted on the next line; hash order cannot reach the checkpoint bytes"
            let mut sorted: Vec<UserId> = visited.iter().copied().collect();
            sorted.sort_unstable_by_key(|u| u.0);
            Some((
                samples as u64,
                rng.rng_state()?,
                graph.client().checkpoint_state(),
                SamplerState::Snowball(SnowballState {
                    frontier: frontier.iter().copied().collect(),
                    visited: sorted,
                    sum_num_bits: sum_num.to_bits(),
                    sum_den_bits: sum_den.to_bits(),
                    matches_count: matches_count as u64,
                    samples: samples as u64,
                }),
            ))
        });
        // Announce the next few crawl targets so an attached pipeline
        // overlaps their RTTs. Scanning in pop order and keeping only the
        // first unvisited occurrence of each node announces exactly nodes
        // that *will* be crawled, barring a crawl-ending error: `visited`
        // only grows by popping, so a first occurrence cannot be skipped.
        lookahead.clear();
        {
            let mut scan = |u: UserId| {
                if lookahead.len() < LOOKAHEAD && !visited.contains(&u) && !lookahead.contains(&u) {
                    lookahead.push(u);
                }
            };
            match config.order {
                CrawlOrder::Bfs => frontier.iter().take(SCAN).for_each(|&u| scan(u)),
                CrawlOrder::Dfs => frontier.iter().rev().take(SCAN).for_each(|&u| scan(u)),
            }
        }
        graph.client_mut().announce_connections(&lookahead);
        graph.client_mut().announce_timelines(&lookahead);
        let Some(u) = (match config.order {
            CrawlOrder::Bfs => frontier.pop_front(),
            CrawlOrder::Dfs => frontier.pop_back(),
        }) else {
            break;
        };
        if !visited.insert(u) {
            continue;
        }
        let view = match graph.view(u) {
            Ok(v) => v,
            Err(e) if e.ends_walk() => break,
            Err(e) => return Err(e.into()),
        };
        let (matched, num, den) = query.sample_values(&view, now);
        sum_num += num;
        sum_den += den;
        matches_count += matched as usize;
        samples += 1;
        if samples >= config.max_nodes {
            break;
        }
        match graph.neighbors_into(u, &mut nbrs) {
            Ok(()) => {}
            Err(e) if e.ends_walk() => break,
            Err(e) => return Err(e.into()),
        };
        nbrs.shuffle(rng);
        for &v in &nbrs {
            if !visited.contains(&v) {
                frontier.push_back(v);
            }
        }
    }

    if samples == 0 {
        return Err(EstimateError::NoSamples);
    }
    let value = match query.aggregate {
        Aggregate::Count => matches_count as f64,
        Aggregate::Sum(_) => sum_num,
        Aggregate::Avg(_) => {
            if matches_count == 0 {
                return Err(EstimateError::NoSamples);
            }
            sum_num / matches_count as f64
        }
        Aggregate::RatioOfSums { .. } => {
            if sum_den == 0.0 {
                return Err(EstimateError::NoSamples);
            }
            sum_num / sum_den
        }
    };
    Ok(Estimate {
        value,
        std_err: None,
        cost: graph.cost(),
        samples,
        instances: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use microblog_api::{ApiProfile, MicroblogClient, QueryBudget};
    use microblog_platform::scenario::{twitter_2013, Scale};
    use microblog_platform::{Duration, UserMetric};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run(
        order: CrawlOrder,
        budget: u64,
        max_nodes: usize,
    ) -> (Result<Estimate, EstimateError>, f64) {
        let s = twitter_2013(Scale::Tiny, 111);
        let kw = s.keyword("new york").unwrap();
        let q = AggregateQuery::count(kw).in_window(s.window);
        let truth = q.ground_truth(&s.platform).unwrap();
        let mut client = CachingClient::new(MicroblogClient::with_budget(
            &s.platform,
            ApiProfile::twitter(),
            QueryBudget::limited(budget),
        ));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let cfg = SnowballConfig {
            view: ViewKind::TermInduced,
            order,
            max_nodes,
        };
        (estimate(&mut client, &q, &cfg, &mut rng), truth)
    }

    #[test]
    fn exhaustive_bfs_count_is_component_size() {
        // With enough budget, BFS over the term-induced view crawls the
        // seeds' whole component: COUNT == crawled matching users, a lower
        // bound on the truth that is usually close (high recall).
        let (est, truth) = run(CrawlOrder::Bfs, 2_000_000, usize::MAX);
        let est = est.unwrap();
        assert!(est.value <= truth);
        assert!(
            est.value > 0.4 * truth,
            "crawl found only {} of {truth}",
            est.value
        );
    }

    #[test]
    fn truncated_crawl_undercounts() {
        let (est, truth) = run(CrawlOrder::Bfs, 2_000_000, 10);
        let est = est.unwrap();
        assert!(est.value <= 10.0);
        assert!(est.value < truth, "truncated crawl cannot reach the truth");
        assert_eq!(est.samples, 10);
    }

    #[test]
    fn dfs_behaves_and_respects_budget() {
        let (est, _) = run(CrawlOrder::Dfs, 1_500, usize::MAX);
        match est {
            Ok(e) => assert!(e.cost <= 1_500),
            Err(EstimateError::NoSamples) => {}
            Err(e) => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn avg_is_plain_sample_mean() {
        let s = twitter_2013(Scale::Tiny, 112);
        let kw = s.keyword("new york").unwrap();
        let q = AggregateQuery::avg(UserMetric::DisplayNameLength, kw).in_window(s.window);
        let truth = q.ground_truth(&s.platform).unwrap();
        let mut client =
            CachingClient::new(MicroblogClient::new(&s.platform, ApiProfile::twitter()));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let cfg = SnowballConfig::bfs(ViewKind::level(Duration::DAY));
        let est = estimate(&mut client, &q, &cfg, &mut rng).unwrap();
        // Name lengths are homogeneous, so even a biased sample is close.
        assert!(
            (est.value - truth).abs() / truth < 0.2,
            "est {} truth {truth}",
            est.value
        );
    }
}
