//! The aggregate-query model (§2 of the paper).
//!
//! Queries have the shape `SELECT AGGR(f(u)) FROM U WHERE CONDITION`: an
//! aggregate function over a per-user metric, a mandatory keyword
//! predicate, an optional time window, and optional profile predicates.

pub mod parse;

use microblog_api::UserView;
use microblog_platform::metric::{evaluate_metric, ProfilePredicate};
use microblog_platform::truth::Condition;
use microblog_platform::{KeywordId, Platform, TimeWindow, UserMetric};
use serde::{Deserialize, Serialize};

/// The aggregate function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregate {
    /// Number of users satisfying the condition.
    Count,
    /// Sum of the metric over satisfying users.
    Sum(UserMetric),
    /// Average of the metric over satisfying users (SUM/COUNT).
    Avg(UserMetric),
    /// Average of per-post likes/etc. expressed as a ratio of two SUMs —
    /// used for "AVG(likes) over posts containing the keyword" (Fig. 14):
    /// `SUM(numerator) / SUM(denominator)`.
    RatioOfSums {
        /// The numerator metric (e.g. [`UserMetric::KeywordPostLikes`]).
        numerator: UserMetric,
        /// The denominator metric (e.g. [`UserMetric::KeywordPostCount`]).
        denominator: UserMetric,
    },
}

/// A complete aggregate query.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AggregateQuery {
    /// What to aggregate.
    pub aggregate: Aggregate,
    /// The keyword predicate (mandatory; see §2).
    pub keyword: KeywordId,
    /// Optional time window on qualifying posts.
    pub window: Option<TimeWindow>,
    /// Optional profile predicates (ANDed).
    pub predicates: Vec<ProfilePredicate>,
}

impl AggregateQuery {
    /// `COUNT(*) WHERE keyword`.
    pub fn count(keyword: KeywordId) -> Self {
        AggregateQuery {
            aggregate: Aggregate::Count,
            keyword,
            window: None,
            predicates: vec![],
        }
    }

    /// `SUM(metric) WHERE keyword`.
    pub fn sum(metric: UserMetric, keyword: KeywordId) -> Self {
        AggregateQuery {
            aggregate: Aggregate::Sum(metric),
            keyword,
            window: None,
            predicates: vec![],
        }
    }

    /// `AVG(metric) WHERE keyword`.
    pub fn avg(metric: UserMetric, keyword: KeywordId) -> Self {
        AggregateQuery {
            aggregate: Aggregate::Avg(metric),
            keyword,
            window: None,
            predicates: vec![],
        }
    }

    /// Per-post average of `likes`-style metrics (Fig. 14):
    /// `SUM(numerator)/SUM(denominator)`.
    pub fn post_avg(numerator: UserMetric, denominator: UserMetric, keyword: KeywordId) -> Self {
        AggregateQuery {
            aggregate: Aggregate::RatioOfSums {
                numerator,
                denominator,
            },
            keyword,
            window: None,
            predicates: vec![],
        }
    }

    /// Restricts qualifying posts to a time window.
    pub fn in_window(mut self, w: TimeWindow) -> Self {
        self.window = Some(w);
        self
    }

    /// Adds a profile predicate.
    pub fn with_predicate(mut self, p: ProfilePredicate) -> Self {
        self.predicates.push(p);
        self
    }

    /// The ground-truth condition equivalent of this query's WHERE clause.
    pub fn condition(&self) -> Condition {
        Condition {
            keyword: self.keyword,
            window: self.window,
            predicates: self.predicates.clone(),
        }
    }

    /// Whether `view`'s user satisfies the full condition (keyword mention
    /// in window + profile predicates), judged from API-visible data only.
    pub fn matches(&self, view: &UserView, now: microblog_platform::Timestamp) -> bool {
        let window = self.effective_window(now);
        if view.first_mention(self.keyword, window).is_none() {
            return false;
        }
        self.predicates
            .iter()
            .all(|p| p.matches(&view.profile, view.follower_count))
    }

    /// The window used for matching: the explicit one, or all-time-to-now.
    pub fn effective_window(&self, now: microblog_platform::Timestamp) -> TimeWindow {
        self.window
            .unwrap_or_else(|| TimeWindow::new(microblog_platform::Timestamp(i64::MIN / 2), now))
    }

    /// Evaluates a metric for the user behind `view` under this query's
    /// keyword/window scope (returns 0.0 when the condition fails, which
    /// is exactly what Hansen–Hurwitz estimation needs).
    pub fn metric_value(
        &self,
        metric: UserMetric,
        view: &UserView,
        now: microblog_platform::Timestamp,
    ) -> f64 {
        if !self.matches(view, now) {
            return 0.0;
        }
        evaluate_metric(
            metric,
            &view.metric_inputs(),
            Some(self.keyword),
            Some(self.effective_window(now)),
        )
    }

    /// Exact ground truth of this query over the full platform state.
    ///
    /// Returns `None` when no user satisfies the condition (AVG undefined).
    pub fn ground_truth(&self, platform: &Platform) -> Option<f64> {
        use microblog_platform::truth;
        let cond = self.condition();
        match self.aggregate {
            Aggregate::Count => Some(truth::exact_count(platform, &cond)),
            Aggregate::Sum(m) => Some(truth::exact_sum(platform, &cond, m)),
            Aggregate::Avg(m) => truth::exact_avg(platform, &cond, m),
            Aggregate::RatioOfSums {
                numerator,
                denominator,
            } => {
                let den = truth::exact_sum(platform, &cond, denominator);
                if den == 0.0 {
                    None
                } else {
                    Some(truth::exact_sum(platform, &cond, numerator) / den)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microblog_platform::scenario::{twitter_2013, Scale};
    use microblog_platform::{Gender, UserMetric};

    #[test]
    fn builders_compose() {
        let kw = KeywordId(0);
        let w = TimeWindow::new(
            microblog_platform::Timestamp(0),
            microblog_platform::Timestamp(10),
        );
        let q = AggregateQuery::avg(UserMetric::FollowerCount, kw)
            .in_window(w)
            .with_predicate(ProfilePredicate::GenderIs(Gender::Male));
        assert_eq!(q.aggregate, Aggregate::Avg(UserMetric::FollowerCount));
        assert_eq!(q.window, Some(w));
        assert_eq!(q.predicates.len(), 1);
        let c = q.condition();
        assert_eq!(c.keyword, kw);
        assert_eq!(c.window, Some(w));
    }

    #[test]
    fn ground_truth_matches_truth_module() {
        let s = twitter_2013(Scale::Tiny, 11);
        let kw = s.keyword("privacy").unwrap();
        let q = AggregateQuery::count(kw).in_window(s.window);
        let direct = microblog_platform::truth::exact_count(&s.platform, &q.condition());
        assert_eq!(q.ground_truth(&s.platform), Some(direct));
        assert!(direct > 0.0);
        // AVG == SUM / COUNT.
        let avg = AggregateQuery::avg(UserMetric::FollowerCount, kw)
            .in_window(s.window)
            .ground_truth(&s.platform)
            .unwrap();
        let sum = AggregateQuery::sum(UserMetric::FollowerCount, kw)
            .in_window(s.window)
            .ground_truth(&s.platform)
            .unwrap();
        assert!((avg - sum / direct).abs() < 1e-9);
    }

    #[test]
    fn post_avg_is_ratio() {
        let s = twitter_2013(Scale::Tiny, 12);
        let kw = s.keyword("boston").unwrap();
        let q = AggregateQuery::post_avg(
            UserMetric::KeywordPostLikes,
            UserMetric::KeywordPostCount,
            kw,
        )
        .in_window(s.window);
        let likes = AggregateQuery::sum(UserMetric::KeywordPostLikes, kw)
            .in_window(s.window)
            .ground_truth(&s.platform)
            .unwrap();
        let posts = AggregateQuery::sum(UserMetric::KeywordPostCount, kw)
            .in_window(s.window)
            .ground_truth(&s.platform)
            .unwrap();
        assert!((q.ground_truth(&s.platform).unwrap() - likes / posts).abs() < 1e-9);
    }
}
