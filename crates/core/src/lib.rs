//! # microblog-analyzer
//!
//! A from-scratch reproduction of **MICROBLOG-ANALYZER** from *"Aggregate
//! Estimation Over a Microblog Platform"* (Thirumuruganathan, Zhang,
//! Hristidis, Das — SIGMOD 2014): estimating `COUNT` / `SUM` / `AVG`
//! aggregates with keyword (and time/profile) predicates over a microblog
//! platform that can only be observed through a rate-limited API.
//!
//! ## Architecture (paper §3)
//!
//! ```text
//!  aggregate query + query budget
//!        │
//!        ▼
//!  ┌───────────────────  MICROBLOG-ANALYZER  ──────────────────┐
//!  │  GRAPH-BUILDER ([`view`], [`level`], [`interval`])        │
//!  │    full graph / term-induced / level-by-level subgraph,   │
//!  │    materialized lazily, edge by edge, from API responses  │
//!  │  GRAPH-WALKER ([`walker`])                                 │
//!  │    MA-SRW  — simple random walk over the subgraph (§4)    │
//!  │    MA-TARW — topology-aware bottom-top-bottom walk (§5)   │
//!  │    M&R     — mark-and-recapture baseline (Katzir)         │
//!  └────────────────────────────────────────────────────────────┘
//!        │ SEARCH / USER CONNECTIONS / USER TIMELINE (microblog-api)
//!        ▼
//!     rate-limited platform
//! ```
//!
//! The entry point is [`analyzer::MicroblogAnalyzer`]:
//!
//! ```
//! use microblog_analyzer::prelude::*;
//! use microblog_platform::scenario::{twitter_2013, Scale};
//!
//! let scenario = twitter_2013(Scale::Tiny, 42);
//! let kw = scenario.keyword("privacy").unwrap();
//! let query = AggregateQuery::avg(UserMetric::FollowerCount, kw)
//!     .in_window(scenario.window);
//! let analyzer = MicroblogAnalyzer::new(&scenario.platform, ApiProfile::twitter());
//! let est = analyzer
//!     .estimate(&query, 30_000, Algorithm::MaTarw { interval: None }, 7)
//!     .expect("estimation succeeds");
//! assert!(est.value > 0.0);
//! ```
//!
//! ## Fidelity notes
//!
//! * Algorithm 3's printed `1/|R_i|` normalization cannot be unbiased as
//!   typeset (each of the two phase sums is already an unbiased
//!   Hansen–Hurwitz estimate of the SUM). We implement a
//!   multiplicity-weighted Hansen–Hurwitz sum — every visit of `u`
//!   contributes `f(u)/(p̄(u)+p̂(u))` — which is unbiased over the *union*
//!   of the two phases' coverage, and verify exactness on analytic path
//!   worlds (`tests/tarw_exactness.rs`).
//! * `ESTIMATE-p` sampling (the paper's Algorithm 2) returns an unbiased
//!   estimate of `p(u)`, but `f(u)/p̂(u)` is heavy-tailed when the search
//!   API yields few seeds; the default [`walker::tarw::PMode::Exact`]
//!   therefore solves the Eq. (6) recursion exactly with memoization (the
//!   §5.2 cache generalized to every node). The sampled mode remains
//!   available and validated against exact probabilities.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod checkpoint;
pub mod error;
pub mod estimate;
pub mod interval;
pub mod level;
pub mod query;
pub mod seeds;
pub mod view;
pub mod walker;

/// Convenience re-exports for downstream users.
pub mod prelude {
    pub use crate::analyzer::{Algorithm, MicroblogAnalyzer, RunReport};
    pub use crate::error::EstimateError;
    pub use crate::estimate::Estimate;
    pub use crate::query::{Aggregate, AggregateQuery};
    pub use crate::view::ViewKind;
    pub use microblog_api::ApiProfile;
    pub use microblog_platform::{Gender, TimeWindow, Timestamp, UserMetric};
}

pub use analyzer::{Algorithm, MicroblogAnalyzer, RunReport};
pub use checkpoint::{
    CheckpointCtl, CheckpointRng, CheckpointSink, LatestCheckpoint, RngState, SamplerState,
    WalkerCheckpoint,
};
pub use error::EstimateError;
pub use estimate::Estimate;
pub use query::{Aggregate, AggregateQuery};
pub use view::ViewKind;
