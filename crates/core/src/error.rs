//! Estimation error type.

use microblog_api::ApiError;

/// Failures of the estimation pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EstimateError {
    /// The underlying API failed for a reason other than budget exhaustion
    /// (budget exhaustion is not an error — estimators finalize with the
    /// samples gathered so far).
    Api(ApiError),
    /// The search API returned no usable seed users for the query keyword
    /// — nothing can be estimated.
    NoSeeds,
    /// The budget was exhausted before a single usable sample was drawn.
    NoSamples,
    /// The query is not supported by the chosen algorithm (e.g. a COUNT
    /// asked of an AVG-only configuration).
    Unsupported(&'static str),
}

impl From<ApiError> for EstimateError {
    fn from(e: ApiError) -> Self {
        EstimateError::Api(e)
    }
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimateError::Api(e) => write!(f, "api error: {e}"),
            EstimateError::NoSeeds => write!(f, "search returned no usable seed users"),
            EstimateError::NoSamples => {
                write!(f, "budget exhausted before any sample was collected")
            }
            EstimateError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for EstimateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EstimateError::Api(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microblog_platform::UserId;

    #[test]
    fn conversions_and_display() {
        let e: EstimateError = ApiError::UnknownUser(UserId(1)).into();
        assert_eq!(e.to_string(), "api error: unknown user u1");
        assert!(std::error::Error::source(&e).is_some());
        assert_eq!(
            EstimateError::NoSeeds.to_string(),
            "search returned no usable seed users"
        );
        assert!(std::error::Error::source(&EstimateError::NoSamples).is_none());
    }
}
