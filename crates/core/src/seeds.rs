//! Seed-user acquisition through the search API (§3.1).
//!
//! "Seed users" are users who recently posted the query keyword — exactly
//! what the (window-limited) search API returns. Their recent qualifying
//! post also certifies graph membership for free, provided it falls inside
//! the query window.

use crate::error::EstimateError;
use crate::query::AggregateQuery;
use microblog_api::CachingClient;
use microblog_obs::{Category, FieldValue, WalkPhase};
use microblog_platform::UserId;

/// Fetches the deduplicated seed-user set for `query`.
///
/// Only authors whose matching recent post falls inside the query's
/// effective window are kept (a historical window that ended in the past
/// cannot be seeded by today's search results).
pub fn fetch_seeds(
    client: &mut CachingClient<'_>,
    query: &AggregateQuery,
) -> Result<Vec<UserId>, EstimateError> {
    let tracer = client.tracer().clone();
    tracer.set_phase(WalkPhase::Seed);
    let window = query.effective_window(client.now());
    let hits = client.search(query.keyword)?;
    let mut seeds: Vec<UserId> = hits
        .iter()
        .filter(|h| window.contains(h.time))
        .map(|h| h.author)
        .collect();
    seeds.sort_unstable();
    seeds.dedup();
    tracer.emit(
        Category::Walk,
        "seeds",
        &[
            ("hits", FieldValue::from(hits.len())),
            ("seeds", FieldValue::from(seeds.len())),
        ],
    );
    if seeds.is_empty() {
        return Err(EstimateError::NoSeeds);
    }
    Ok(seeds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use microblog_api::{ApiProfile, MicroblogClient};
    use microblog_platform::scenario::{twitter_2013, Scale};
    use microblog_platform::{TimeWindow, Timestamp, UserMetric};

    #[test]
    fn seeds_are_unique_matching_authors() {
        let s = twitter_2013(Scale::Tiny, 31);
        let kw = s.keyword("new york").unwrap();
        let mut client =
            CachingClient::new(MicroblogClient::new(&s.platform, ApiProfile::twitter()));
        let q = crate::query::AggregateQuery::count(kw).in_window(s.window);
        let seeds = fetch_seeds(&mut client, &q).unwrap();
        assert!(!seeds.is_empty());
        let mut sorted = seeds.clone();
        sorted.dedup();
        assert_eq!(sorted, seeds, "seeds must be deduplicated");
        // Each seed has a recent qualifying post.
        for &u in seeds.iter().take(10) {
            let view = client.user_timeline(u).unwrap();
            assert!(view.first_mention(kw, s.window).is_some());
        }
    }

    #[test]
    fn historical_window_rejects_recent_only_seeds() {
        let s = twitter_2013(Scale::Tiny, 32);
        let kw = s.keyword("privacy").unwrap();
        let mut client =
            CachingClient::new(MicroblogClient::new(&s.platform, ApiProfile::twitter()));
        // A window that ended months before "now": search (last week) can
        // never certify membership.
        let q = crate::query::AggregateQuery::avg(UserMetric::FollowerCount, kw)
            .in_window(TimeWindow::new(Timestamp::EPOCH, Timestamp::at_day(30)));
        assert_eq!(
            fetch_seeds(&mut client, &q).unwrap_err(),
            EstimateError::NoSeeds
        );
    }
}
