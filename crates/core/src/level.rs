//! Level assignment (§4.2.1).
//!
//! The level-by-level subgraph organizes the users matching the keyword
//! predicate into *levels* by the time they **first** qualified — i.e. the
//! time of their first visible post mentioning the keyword inside the query
//! window — bucketed by a time interval `T`. Level 0 is the earliest
//! bucket (the "top" of Figure 6); walks start at the *bottom* (most
//! recent levels, reachable through the search API) and climb up.

use microblog_api::{ApiError, CachingClient};
use microblog_platform::{Duration, KeywordId, TimeWindow, Timestamp, UserId};

/// Assigns levels to users from API-visible data only.
#[derive(Clone, Copy, Debug)]
pub struct LevelAssigner {
    /// The query keyword.
    pub keyword: KeywordId,
    /// The matching window.
    pub window: TimeWindow,
    /// Bucket origin (the window start).
    pub origin: Timestamp,
    /// Bucket width `T`.
    pub interval: Duration,
}

impl LevelAssigner {
    /// Builds an assigner for `keyword` over `window` with bucket width
    /// `interval`.
    ///
    /// # Panics
    /// Panics if `interval` is non-positive.
    pub fn new(keyword: KeywordId, window: TimeWindow, interval: Duration) -> Self {
        assert!(interval.0 > 0, "level interval must be positive");
        LevelAssigner {
            keyword,
            window,
            origin: window.start,
            interval,
        }
    }

    /// The level of a first-mention time.
    pub fn level_of_time(&self, t: Timestamp) -> i64 {
        (t.0 - self.origin.0).div_euclid(self.interval.0)
    }

    /// The level of user `u`: `None` when the user has no qualifying post
    /// (not a member of the term-induced subgraph).
    ///
    /// Costs one (cached) USER TIMELINE query.
    pub fn level(
        &self,
        client: &mut CachingClient<'_>,
        u: UserId,
    ) -> Result<Option<i64>, ApiError> {
        let view = client.user_timeline(u)?;
        Ok(view
            .first_mention(self.keyword, self.window)
            .map(|t| self.level_of_time(t)))
    }

    /// Total number of levels the window spans.
    pub fn level_count(&self) -> i64 {
        let span = self.window.length().0;
        (span + self.interval.0 - 1) / self.interval.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assigner(interval: Duration) -> LevelAssigner {
        LevelAssigner::new(
            KeywordId(0),
            TimeWindow::new(Timestamp::at_day(0), Timestamp::at_day(303)),
            interval,
        )
    }

    #[test]
    fn day_buckets() {
        let a = assigner(Duration::DAY);
        assert_eq!(a.level_of_time(Timestamp(0)), 0);
        assert_eq!(a.level_of_time(Timestamp(86_399)), 0);
        assert_eq!(a.level_of_time(Timestamp(86_400)), 1);
        assert_eq!(a.level_of_time(Timestamp::at_day(302)), 302);
        assert_eq!(a.level_count(), 303);
    }

    #[test]
    fn coarse_buckets_round_up_level_count() {
        let a = assigner(Duration::MONTH);
        assert_eq!(a.level_count(), 11); // ceil(303/30)
        assert_eq!(a.level_of_time(Timestamp::at_day(29)), 0);
        assert_eq!(a.level_of_time(Timestamp::at_day(30)), 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_interval() {
        let _ = assigner(Duration(0));
    }
}
