//! Walker checkpoints: serializable mid-walk state for crash recovery.
//!
//! Every sampler can snapshot its complete resumable state — RNG stream
//! position, walk position/path buffers, accumulated samples, and
//! charged-call accounting — into a [`WalkerCheckpoint`] every N safe
//! points, emitted through a [`CheckpointSink`]. A run resumed from any
//! checkpoint produces **bit-identical** estimates and charged totals to
//! an uninterrupted run: the RNG restores to the exact stream position,
//! the client memo restores from the pristine platform (responses are
//! deterministic, so only the *keys* are stored), and every floating
//! accumulator round-trips as raw IEEE-754 bits.
//!
//! What is deliberately *not* checkpointed:
//!
//! * memoized API responses — recomputed from the platform at restore,
//!   at zero charge (see [`restore_client`]);
//! * MA-TARW's exact probability memos — pure functions of the restored
//!   memo, recomputed free with no RNG use;
//! * diagnostics (the Geweke chain) and resilience counters — they feed
//!   traces and health reporting, not estimates.

use crate::error::EstimateError;
use microblog_api::{ApiProfile, CachingClient, ClientState, MicroblogClient};
use microblog_graph::sizing::CollisionState;
use microblog_platform::{Platform, UserId};
use rand::Rng;
use rand_chacha::{ChaCha12Rng, ChaCha20Rng, ChaCha8Rng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Serializable ChaCha generator state: the buffered keystream is a pure
/// function of `(key, stream, counter)`, so only the position is stored.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngState {
    /// The 8-word ChaCha key.
    pub key: Vec<u32>,
    /// Stream (nonce) id.
    pub stream: u64,
    /// Block counter of the next buffer refill.
    pub counter: u64,
    /// Next unconsumed word in the 64-word buffer (64 = empty).
    pub index: u64,
}

impl RngState {
    /// Rebuilds a [`ChaCha8Rng`] positioned exactly where the snapshot
    /// was taken; `None` if the snapshot is malformed.
    pub fn to_chacha8(&self) -> Option<ChaCha8Rng> {
        let key: [u32; 8] = self.key.as_slice().try_into().ok()?;
        Some(ChaCha8Rng::from_state((
            key,
            self.stream,
            self.counter,
            self.index as usize,
        )))
    }
}

/// RNGs whose stream position can be captured into a checkpoint.
///
/// Samplers take `R: CheckpointRng` so one generic walk loop serves both
/// plain and recoverable runs; generators without snapshot support can
/// still drive walks, they just cannot emit checkpoints.
pub trait CheckpointRng: Rng {
    /// The serializable generator state, if supported.
    fn rng_state(&self) -> Option<RngState>;
}

macro_rules! checkpoint_chacha {
    ($($ty:ty),*) => {$(
        impl CheckpointRng for $ty {
            fn rng_state(&self) -> Option<RngState> {
                let (key, stream, counter, index) = self.state();
                Some(RngState {
                    key: key.to_vec(),
                    stream,
                    counter,
                    index: index as u64,
                })
            }
        }
    )*}
}
checkpoint_chacha!(ChaCha8Rng, ChaCha12Rng, ChaCha20Rng);

/// Serialized [`SampleAccumulator`](crate::walker) state; floats as raw
/// IEEE-754 bits.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccumState {
    /// `Σ 1/d`.
    pub s0_bits: u64,
    /// `Σ match/d`.
    pub s_match_bits: u64,
    /// `Σ num/d`.
    pub s_num_bits: u64,
    /// `Σ den/d`.
    pub s_den_bits: u64,
    /// Collision-counter state.
    pub collisions: CollisionState,
    /// Samples accepted.
    pub samples: u64,
}

/// Mid-walk state of the SRW estimator, captured at the top of its step
/// loop.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SrwState {
    /// Current walk position.
    pub current: UserId,
    /// Steps taken in the current chain (resets on restart).
    pub step_in_chain: u64,
    /// Total transitions taken.
    pub total_steps: u64,
    /// Samples kept so far.
    pub kept: u64,
    /// The main sample accumulator.
    pub accum: AccumState,
    /// Batch-mean statistics `(count, mean_bits, m2_bits)`.
    pub batch: (u64, u64, u64),
    /// The in-progress batch accumulator.
    pub batch_accum: AccumState,
}

/// One interleaved chain of a multi-chain SRW run: its own RNG stream
/// position plus the same mid-walk state a solo run captures.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MultiChainState {
    /// The chain's RNG stream position.
    pub rng: RngState,
    /// The chain's walk state.
    pub walk: SrwState,
    /// Whether the chain has finished walking.
    pub done: bool,
}

/// Mid-run state of the interleaved multi-chain SRW executor, captured
/// only at round boundaries — where every announced prefetch has been
/// consumed and nothing is in flight — so no scheduler state needs to be
/// (or is) serialized.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MultiSrwState {
    /// Per-chain states, in chain-index order.
    pub chains: Vec<MultiChainState>,
}

/// Mid-walk state of the MHRW estimator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MhrwState {
    /// Current walk position.
    pub current: UserId,
    /// Steps taken in the current chain (resets on restart).
    pub step: u64,
    /// Total transitions taken.
    pub total_steps: u64,
    /// `Σ num` over kept samples, as bits.
    pub sum_num_bits: u64,
    /// `Σ den` over kept samples, as bits.
    pub sum_den_bits: u64,
    /// `Σ match` over kept samples, as bits.
    pub sum_match_bits: u64,
    /// Samples kept.
    pub samples: u64,
    /// Collision-counter state (fed with degree 1 under MHRW).
    pub collisions: CollisionState,
    /// Batch-mean statistics `(count, mean_bits, m2_bits)`.
    pub batch: (u64, u64, u64),
    /// The in-progress batch values `(num_bits, den_bits)`.
    pub batch_vals: Vec<(u64, u64)>,
}

/// Mid-crawl state of the snowball baseline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SnowballState {
    /// The crawl frontier, front to back.
    pub frontier: Vec<UserId>,
    /// Visited set, sorted.
    pub visited: Vec<UserId>,
    /// `Σ num`, as bits.
    pub sum_num_bits: u64,
    /// `Σ den`, as bits.
    pub sum_den_bits: u64,
    /// Matching users crawled.
    pub matches_count: u64,
    /// Users sampled.
    pub samples: u64,
}

/// One finished MA-TARW instance's Hansen–Hurwitz sums.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceState {
    /// `Σ f(u)/p(u)`, as bits.
    pub num_bits: u64,
    /// `Σ den(u)/p(u)`, as bits.
    pub den_bits: u64,
    /// `Σ match(u)/p(u)`, as bits.
    pub count_bits: u64,
    /// Nodes with a usable probability estimate.
    pub used: u64,
}

/// Between-instances state of MA-TARW, captured after each finished
/// instance (and after interval selection).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TarwState {
    /// The resolved level interval, in seconds (resume skips selection).
    pub interval_secs: i64,
    /// Index of the next instance to run.
    pub next_instance: u64,
    /// Finished instances' sums.
    pub instances: Vec<InstanceState>,
    /// Sampled-mode up-phase draw cache `(node, sum_bits, draws)`,
    /// sorted; `None` when the mode keeps no cache. Exact-mode memos are
    /// *not* stored — they recompute free from the restored client memo
    /// and consume no randomness.
    pub up_cache: Option<Vec<(UserId, u64, u32)>>,
    /// Sampled-mode down-phase draw cache, like `up_cache`.
    pub down_cache: Option<Vec<(UserId, u64, u32)>>,
}

/// One scored pilot candidate: `(interval_secs, h_bits, d_bits)`.
pub type PilotScore = (i64, u64, u64);

/// Mid-pilot state of MA-TARW interval selection: candidates already
/// scored, in candidate order. Resume skips them (their pilot walks
/// already consumed the RNG draws reflected in the checkpoint's
/// [`RngState`]).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PilotState {
    /// Scores of completed candidates.
    pub done: Vec<PilotScore>,
}

/// Which sampler a checkpoint belongs to, with its mid-walk state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SamplerState {
    /// Simple random walk (MA-SRW and baselines).
    Srw(SrwState),
    /// Interleaved multi-chain simple random walk.
    MultiSrw(MultiSrwState),
    /// Metropolis–Hastings random walk.
    Mhrw(MhrwState),
    /// BFS/DFS snowball crawl.
    Snowball(SnowballState),
    /// MA-TARW between instances.
    Tarw(TarwState),
    /// MA-TARW interval-selection pilot.
    Pilot(PilotState),
}

/// A complete, serializable mid-run snapshot: resuming from it yields
/// bit-identical estimates and charged totals to the uninterrupted run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WalkerCheckpoint {
    /// Algorithm name (informational; the [`SamplerState`] variant is
    /// what resume dispatches on).
    pub algorithm: String,
    /// The run's RNG seed (sanity-checked at resume).
    pub seed: u64,
    /// Safe points passed when the checkpoint was taken (progress
    /// marker for logs and metrics).
    pub steps: u64,
    /// RNG stream position.
    pub rng: RngState,
    /// Client memo keys and charged-call accounting.
    pub client: ClientState,
    /// Sampler-specific mid-walk state.
    pub sampler: SamplerState,
}

/// Where emitted checkpoints go. The service journals them; tests keep
/// the latest in memory.
pub trait CheckpointSink {
    /// Records one checkpoint. Implementations must not assume
    /// checkpoints arrive at any particular cadence.
    fn record(&self, cp: &WalkerCheckpoint);
}

/// Checkpoint cadence control threaded through a recoverable run.
///
/// Samplers call [`CheckpointCtl::tick`] once per safe point; every
/// `every`-th tick builds a checkpoint (lazily — disabled runs never pay
/// for capture) and hands it to the sink.
pub struct CheckpointCtl<'a> {
    every: u64,
    since: u64,
    emitted: u64,
    algorithm: &'static str,
    seed: u64,
    sink: Option<&'a dyn CheckpointSink>,
}

impl<'a> CheckpointCtl<'a> {
    /// A control that never checkpoints — what plain `estimate` wrappers
    /// pass.
    pub fn disabled() -> CheckpointCtl<'static> {
        CheckpointCtl {
            every: 0,
            since: 0,
            emitted: 0,
            algorithm: "",
            seed: 0,
            sink: None,
        }
    }

    /// Checkpoints every `every` safe points into `sink` (`0` disables).
    pub fn new(every: u64, sink: &'a dyn CheckpointSink) -> CheckpointCtl<'a> {
        CheckpointCtl {
            every,
            since: 0,
            emitted: 0,
            algorithm: "",
            seed: 0,
            sink: (every > 0).then_some(sink),
        }
    }

    /// Stamps the job identity onto emitted checkpoints.
    pub fn set_job(&mut self, algorithm: &'static str, seed: u64) {
        self.algorithm = algorithm;
        self.seed = seed;
    }

    /// Whether ticks can ever emit.
    pub fn is_enabled(&self) -> bool {
        self.every > 0 && self.sink.is_some()
    }

    /// Checkpoints emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Counts one safe point; on every `every`-th, builds and records a
    /// checkpoint. The builder returns `(steps, rng, client, sampler)`,
    /// or `None` when the RNG cannot snapshot.
    pub fn tick<F>(&mut self, build: F)
    where
        F: FnOnce() -> Option<(u64, RngState, ClientState, SamplerState)>,
    {
        let Some(sink) = self.sink else { return };
        self.since += 1;
        if self.since < self.every {
            return;
        }
        self.since = 0;
        if let Some((steps, rng, client, sampler)) = build() {
            sink.record(&WalkerCheckpoint {
                algorithm: self.algorithm.to_string(),
                seed: self.seed,
                steps,
                rng,
                client,
                sampler,
            });
            self.emitted += 1;
        }
    }
}

/// Rebuilds a client memo from checkpointed `state`: every key is
/// re-fetched from the pristine platform through an unmetered scratch
/// client (responses are deterministic, so the restored memo is
/// identical to the lost one), then the accounting is overwritten so the
/// restored client reports exactly the checkpointed stats and meter.
///
/// The caller separately pre-charges the real budget with
/// `state.charged` so budget-exhaustion behaviour replays identically.
pub fn restore_client(
    client: &mut CachingClient<'_>,
    state: &ClientState,
    store: &Platform,
    profile: &ApiProfile,
) -> Result<(), EstimateError> {
    let mut scratch = MicroblogClient::new(store, profile.clone());
    for &kw in &state.searches {
        let hits = scratch.search(kw)?;
        client.install_search(kw, Arc::new(hits));
    }
    for &u in &state.timelines {
        let view = scratch.user_timeline(u)?;
        client.install_timeline(u, Arc::new(view));
    }
    for &u in &state.connections {
        let merged = scratch.connections(u)?;
        client.install_connections(u, Arc::new(merged));
    }
    client.restore_accounting(state.stats, state.meter);
    Ok(())
}

/// In-memory sink keeping only the most recent checkpoint — the shape
/// recovery needs (each checkpoint supersedes its predecessors).
#[derive(Default)]
pub struct LatestCheckpoint {
    latest: std::sync::Mutex<Option<WalkerCheckpoint>>,
    count: std::sync::atomic::AtomicU64,
}

impl LatestCheckpoint {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The most recent checkpoint, if any was recorded.
    pub fn take(&self) -> Option<WalkerCheckpoint> {
        self.latest
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Checkpoints recorded.
    pub fn count(&self) -> u64 {
        self.count.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl CheckpointSink for LatestCheckpoint {
    fn record(&self, cp: &WalkerCheckpoint) {
        *self.latest.lock().unwrap_or_else(|e| e.into_inner()) = Some(cp.clone());
        self.count
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// `f64` → checkpoint bits.
#[inline]
pub fn bits(x: f64) -> u64 {
    x.to_bits()
}

/// Checkpoint bits → `f64`.
#[inline]
pub fn unbits(b: u64) -> f64 {
    f64::from_bits(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn rng_state_round_trips_through_serde() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..37 {
            rng.next_u32();
        }
        let state = rng.rng_state().unwrap();
        let json = serde_json::to_string(&state).unwrap();
        let back: RngState = serde_json::from_str(&json).unwrap();
        let mut restored = back.to_chacha8().unwrap();
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn malformed_rng_state_is_rejected() {
        let state = RngState {
            key: vec![1, 2, 3],
            stream: 0,
            counter: 0,
            index: 64,
        };
        assert!(state.to_chacha8().is_none());
    }

    #[test]
    fn disabled_ctl_never_builds() {
        let mut ctl = CheckpointCtl::disabled();
        for _ in 0..1000 {
            ctl.tick(|| panic!("disabled ctl must not call the builder"));
        }
        assert_eq!(ctl.emitted(), 0);
    }

    #[test]
    fn ctl_emits_on_cadence() {
        let sink = LatestCheckpoint::new();
        let mut ctl = CheckpointCtl::new(10, &sink);
        ctl.set_job("srw", 7);
        for step in 0..35u64 {
            ctl.tick(|| {
                Some((
                    step,
                    RngState::default(),
                    ClientState::default(),
                    SamplerState::Pilot(PilotState::default()),
                ))
            });
        }
        assert_eq!(ctl.emitted(), 3);
        assert_eq!(sink.count(), 3);
        let cp = sink.take().unwrap();
        assert_eq!(cp.algorithm, "srw");
        assert_eq!(cp.seed, 7);
        assert_eq!(cp.steps, 29); // ticks 10, 20, 30 → steps 9, 19, 29
    }

    #[test]
    fn checkpoint_serde_round_trips_bit_exactly() {
        let cp = WalkerCheckpoint {
            algorithm: "ma-tarw".into(),
            seed: 42,
            steps: 1234,
            rng: ChaCha8Rng::seed_from_u64(42).rng_state().unwrap(),
            client: ClientState::default(),
            sampler: SamplerState::Tarw(TarwState {
                interval_secs: 86_400,
                next_instance: 3,
                instances: vec![InstanceState {
                    num_bits: bits(1.5),
                    den_bits: bits(0.1 + 0.2), // a value with a long mantissa
                    count_bits: bits(-0.0),
                    used: 4,
                }],
                up_cache: Some(vec![(UserId(9), bits(0.25), 12)]),
                down_cache: None,
            }),
        };
        let json = serde_json::to_string(&cp).unwrap();
        let back: WalkerCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cp);
    }
}
