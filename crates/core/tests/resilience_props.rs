//! Resilience-invisibility properties (the ISSUE 2 proptest satellite).
//!
//! The contract of the resilient client stack: for any seeded
//! [`FaultPlan`] whose faults are all retryable and whose consecutive-run
//! cap fits inside the retry budget, the estimate is **bit-identical** to
//! the fault-free run with the same walk seed. Retries consume their own
//! jitter RNG and charge a separate waste meter, so fault luck can never
//! leak into the estimator.

use microblog_analyzer::prelude::*;
use microblog_api::RetryPolicy;
use microblog_platform::{Duration, FaultPlan, FaultyPlatform};
use proptest::prelude::*;
use std::sync::Arc;

fn run_pair(
    fault_seed: u64,
    rate: f64,
    walk_seed: u64,
    algo: Algorithm,
) -> (microblog_analyzer::RunReport, microblog_analyzer::RunReport) {
    let s =
        microblog_platform::scenario::twitter_2013(microblog_platform::scenario::Scale::Tiny, 77);
    let kw = s.keyword("privacy").unwrap();
    let query = AggregateQuery::count(kw).in_window(s.window);
    const BUDGET: u64 = 4_000;

    let clean = MicroblogAnalyzer::new(&s.platform, ApiProfile::twitter());
    let base = clean.run(&query, BUDGET, algo, walk_seed, None, &RetryPolicy::none());

    // All modes retryable; runs of faults capped at 2 < patient's 64
    // attempts, so every logical call eventually succeeds.
    let plan = FaultPlan::mixed(fault_seed, rate).with_max_consecutive(2);
    let faulty = FaultyPlatform::new(Arc::new(s.platform.clone()), plan);
    let hostile = MicroblogAnalyzer::with_backend(&faulty, ApiProfile::twitter());
    let run = hostile.run(
        &query,
        BUDGET,
        algo,
        walk_seed,
        None,
        &RetryPolicy::patient(),
    );
    (base, run)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    #[test]
    fn resilient_estimates_are_bit_identical_to_fault_free(
        fault_seed in any::<u64>(),
        rate in 0.05f64..0.45,
        walk_seed in 0u64..1_000,
    ) {
        let algo = Algorithm::MaSrw { interval: None };
        let (base, run) = run_pair(fault_seed, rate, walk_seed, algo);

        prop_assert_eq!(run.resilience.fatal_errors, 0,
            "capped retryable faults must never turn fatal");
        prop_assert!(!run.degraded);
        match (&base.outcome, &run.outcome) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.value.to_bits(), b.value.to_bits(),
                    "estimate diverged: {} vs {}", a.value, b.value);
                prop_assert_eq!(a.cost, b.cost);
                prop_assert_eq!(a.samples, b.samples);
                prop_assert_eq!(
                    a.std_err.map(f64::to_bits),
                    b.std_err.map(f64::to_bits)
                );
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "outcomes diverged: {a:?} vs {b:?}"),
        }
        prop_assert_eq!(base.charged, run.charged,
            "failed attempts must not charge the logical budget");
        prop_assert_eq!(base.cache.actual_calls + run.resilience.wasted_calls() > 0, true);
    }
}

#[test]
fn tarw_is_also_fault_invisible() {
    // One deterministic spot-check on the paper's headline algorithm.
    let algo = Algorithm::MaTarw {
        interval: Some(Duration::DAY),
    };
    let (base, run) = run_pair(2014, 0.3, 9, algo);
    let a = base.outcome.expect("fault-free run succeeds");
    let b = run.outcome.expect("hostile run succeeds");
    assert_eq!(a.value.to_bits(), b.value.to_bits());
    assert_eq!(a.cost, b.cost);
    assert_eq!(a.samples, b.samples);
    assert!(run.resilience.retries > 0, "a 30% plan must force retries");
    assert!(run.resilience.wasted_calls() > 0);
}

#[test]
fn outage_degrades_instead_of_hanging_or_erroring_hard() {
    let s =
        microblog_platform::scenario::twitter_2013(microblog_platform::scenario::Scale::Tiny, 78);
    let kw = s.keyword("privacy").unwrap();
    let query = AggregateQuery::count(kw).in_window(s.window);

    // Timelines and connections fail forever; search stays clean so the
    // walk gets seeds, then dies on its first neighbor fetch.
    let plan = FaultPlan {
        rates: microblog_platform::FaultRates {
            transient: 1.0,
            ..microblog_platform::FaultRates::NONE
        },
        max_consecutive: 0,
        ..FaultPlan::none()
    };
    let faulty = FaultyPlatform::new(Arc::new(s.platform.clone()), plan);
    let hostile = MicroblogAnalyzer::with_backend(&faulty, ApiProfile::twitter());
    let policy = RetryPolicy::resilient().with_max_attempts(3);
    let report = hostile.run(
        &query,
        4_000,
        Algorithm::MaSrw { interval: None },
        5,
        None,
        &policy,
    );
    // The walk ends on the fatal error with nothing sampled; either way
    // the run terminates and the failure is visible in the stats.
    assert!(report.resilience.fatal_errors > 0);
    assert!(!report.resilience.trail.is_empty());
    match report.outcome {
        Ok(_) => assert!(report.degraded),
        Err(e) => assert!(matches!(
            e,
            EstimateError::NoSamples | EstimateError::NoSeeds | EstimateError::Api(_)
        )),
    }
}
