//! Property-based tests of the query model and level machinery.

use microblog_analyzer::level::LevelAssigner;
use microblog_analyzer::prelude::*;
use microblog_api::UserView;
use microblog_platform::metric::ProfilePredicate;
use microblog_platform::post::Post;
use microblog_platform::user::UserProfile;
use microblog_platform::{Duration, KeywordId, PostId, UserId};
use proptest::prelude::*;

fn view_from(posts: Vec<(i64, bool)>, followers: usize, kw: KeywordId) -> UserView {
    // posts: (time, mentions_kw), arbitrary order; timeline stores desc.
    let mut posts: Vec<Post> = posts
        .into_iter()
        .enumerate()
        .map(|(i, (t, hit))| Post {
            id: PostId(i as u32),
            author: UserId(0),
            time: Timestamp(t),
            keywords: if hit { vec![kw] } else { vec![] },
            likes: (t.rem_euclid(10)) as u32,
            chars: 50,
            is_repost: false,
        })
        .collect();
    posts.sort_by_key(|p| std::cmp::Reverse(p.time));
    UserView {
        user: UserId(0),
        profile: UserProfile {
            display_name: "Prop Tester".into(),
            gender: Gender::Female,
            region: 1,
            age: Some(30),
            joined: Timestamp(-100),
        },
        follower_count: followers,
        followee_count: 3,
        posts,
        truncated: false,
    }
}

proptest! {
    #[test]
    fn first_mention_is_minimum_qualifying_time(
        posts in proptest::collection::vec((0i64..1000, any::<bool>()), 0..30),
        w_start in 0i64..500,
        w_len in 1i64..500,
    ) {
        let kw = KeywordId(0);
        let view = view_from(posts.clone(), 5, kw);
        let window = TimeWindow::new(Timestamp(w_start), Timestamp(w_start + w_len));
        let expected = posts
            .iter()
            .filter(|&&(t, hit)| hit && t >= w_start && t < w_start + w_len)
            .map(|&(t, _)| t)
            .min();
        prop_assert_eq!(view.first_mention(kw, window).map(|t| t.0), expected);
    }

    #[test]
    fn query_matching_agrees_with_first_mention(
        posts in proptest::collection::vec((0i64..1000, any::<bool>()), 0..20),
        min_followers in 0usize..10,
        followers in 0usize..10,
    ) {
        let kw = KeywordId(0);
        let view = view_from(posts, followers, kw);
        let now = Timestamp(1000);
        let q = AggregateQuery::count(kw)
            .in_window(TimeWindow::new(Timestamp(0), now))
            .with_predicate(ProfilePredicate::MinFollowers(min_followers));
        let has_mention = view.first_mention(kw, q.effective_window(now)).is_some();
        prop_assert_eq!(q.matches(&view, now), has_mention && followers >= min_followers);
    }

    #[test]
    fn metric_value_zero_iff_condition_fails_for_counts(
        posts in proptest::collection::vec((0i64..1000, any::<bool>()), 1..20),
    ) {
        let kw = KeywordId(0);
        let view = view_from(posts, 5, kw);
        let now = Timestamp(1000);
        let q = AggregateQuery::count(kw).in_window(TimeWindow::new(Timestamp(0), now));
        let v = q.metric_value(UserMetric::KeywordPostCount, &view, now);
        if q.matches(&view, now) {
            prop_assert!(v >= 1.0, "matching user must have >= 1 qualifying post");
        } else {
            prop_assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn level_assignment_is_monotone_and_bucketed(
        t1 in 0i64..10_000_000,
        t2 in 0i64..10_000_000,
        interval_hours in 1i64..1000,
    ) {
        let a = LevelAssigner::new(
            KeywordId(0),
            TimeWindow::new(Timestamp(0), Timestamp(20_000_000)),
            Duration::hours(interval_hours),
        );
        let (l1, l2) = (a.level_of_time(Timestamp(t1)), a.level_of_time(Timestamp(t2)));
        // Monotone in time.
        if t1 <= t2 {
            prop_assert!(l1 <= l2);
        }
        // Bucket width respected.
        prop_assert_eq!(l1, t1.div_euclid(interval_hours * 3600));
        // Same bucket ⇒ within one interval of each other.
        if l1 == l2 {
            prop_assert!((t1 - t2).abs() < interval_hours * 3600);
        }
    }

    #[test]
    fn estimate_relative_error_is_scale_invariant(
        value in 0.1f64..1e6,
        truth in 0.1f64..1e6,
        scale in 0.5f64..100.0,
    ) {
        let e = Estimate { value, std_err: None, cost: 1, samples: 1, instances: 1 };
        let scaled = Estimate { value: value * scale, std_err: None, cost: 1, samples: 1, instances: 1 };
        prop_assert!((e.relative_error(truth) - scaled.relative_error(truth * scale)).abs() < 1e-9);
    }
}
