//! Crash-resume bit-identity: a run resumed from **any** checkpoint must
//! produce the same estimate, charged total and sample counts — to the
//! bit — as the uninterrupted run, for every sampler, with and without
//! injected API faults.
//!
//! The harness runs each algorithm once end-to-end with a
//! capture-everything sink, then re-runs the job from a spread of its
//! checkpoints (after a JSON round trip, so serialization is part of the
//! property) and compares outcomes via `f64::to_bits`. Fault-plan runs
//! rebuild a fresh [`FaultyPlatform`] for the resumed run — crash
//! recovery restarts the process, and fault draws are pure functions of
//! `(seed, endpoint, key, attempt)`, so per-key attempt counters replay
//! identically.

use microblog_analyzer::checkpoint::{CheckpointSink, WalkerCheckpoint};
use microblog_analyzer::prelude::*;
use microblog_analyzer::walker::snowball::CrawlOrder;
use microblog_analyzer::{Algorithm, CheckpointCtl};
use microblog_api::RetryPolicy;
use microblog_obs::Tracer;
use microblog_platform::scenario::{twitter_2013, Scale, Scenario};
use microblog_platform::{ApiBackend, Duration, FaultPlan, FaultyPlatform, UserMetric};
use std::sync::{Arc, Mutex};

/// Sink keeping every emitted checkpoint.
#[derive(Default)]
struct CaptureAll(Mutex<Vec<WalkerCheckpoint>>);

impl CheckpointSink for CaptureAll {
    fn record(&self, cp: &WalkerCheckpoint) {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(cp.clone());
    }
}

fn scenario() -> Scenario {
    twitter_2013(Scale::Tiny, 2014)
}

fn avg_query(s: &Scenario) -> AggregateQuery {
    AggregateQuery::avg(UserMetric::FollowerCount, s.keyword("privacy").unwrap())
        .in_window(s.window)
}

fn count_query(s: &Scenario) -> AggregateQuery {
    AggregateQuery::count(s.keyword("new york").unwrap()).in_window(s.window)
}

/// Picks a spread of checkpoints: earliest, a middle one, and the last.
fn spread(cps: &[WalkerCheckpoint]) -> Vec<&WalkerCheckpoint> {
    match cps.len() {
        0 => Vec::new(),
        1 => vec![&cps[0]],
        2 => vec![&cps[0], &cps[1]],
        n => vec![&cps[0], &cps[n / 2], &cps[n - 1]],
    }
}

/// Runs `algorithm` uninterrupted with checkpointing, then resumes from a
/// spread of checkpoints and asserts bit-identical outcomes.
fn assert_resume_bit_identical(
    backend_of: &dyn Fn() -> Box<dyn ApiBackend>,
    policy: &RetryPolicy,
    query: &AggregateQuery,
    algorithm: Algorithm,
    budget: u64,
    seed: u64,
    every: u64,
) {
    let sink = CaptureAll::default();
    let base_backend = backend_of();
    let analyzer =
        microblog_analyzer::MicroblogAnalyzer::with_backend(&*base_backend, ApiProfile::twitter());
    let mut ctl = CheckpointCtl::new(every, &sink);
    let base = analyzer.run_recoverable(
        query,
        budget,
        algorithm,
        seed,
        None,
        policy,
        Tracer::disabled(),
        &mut ctl,
        None,
    );
    let cps = sink.0.into_inner().unwrap_or_else(|e| e.into_inner());
    assert!(
        !cps.is_empty(),
        "{} emitted no checkpoints (cadence {every})",
        algorithm.name()
    );
    for cp in spread(&cps) {
        // Serialization is part of the property: resume from the JSON
        // round trip of the checkpoint, not the in-memory object.
        let json = serde_json::to_string(cp).expect("checkpoint serializes");
        let restored: WalkerCheckpoint = serde_json::from_str(&json).expect("checkpoint parses");
        assert_eq!(&restored, cp, "checkpoint JSON round trip drifted");

        // A crash restarts the process: fresh backend, fresh client.
        let resumed_backend = backend_of();
        let resumed_analyzer = microblog_analyzer::MicroblogAnalyzer::with_backend(
            &*resumed_backend,
            ApiProfile::twitter(),
        );
        let resumed = resumed_analyzer.run_recoverable(
            query,
            budget,
            algorithm,
            seed,
            None,
            policy,
            Tracer::disabled(),
            &mut CheckpointCtl::disabled(),
            Some(&restored),
        );
        let ctx = format!("{} from checkpoint at steps={}", algorithm.name(), cp.steps);
        assert_eq!(
            base.charged, resumed.charged,
            "{ctx}: charged totals diverged"
        );
        match (&base.outcome, &resumed.outcome) {
            (Ok(a), Ok(b)) => {
                assert_eq!(
                    a.value.to_bits(),
                    b.value.to_bits(),
                    "{ctx}: estimate diverged ({} vs {})",
                    a.value,
                    b.value
                );
                assert_eq!(
                    a.std_err.map(f64::to_bits),
                    b.std_err.map(f64::to_bits),
                    "{ctx}: std_err diverged"
                );
                assert_eq!(a.cost, b.cost, "{ctx}: cost diverged");
                assert_eq!(a.samples, b.samples, "{ctx}: samples diverged");
                assert_eq!(a.instances, b.instances, "{ctx}: instances diverged");
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "{ctx}: errors diverged"),
            (a, b) => panic!("{ctx}: outcomes diverged: {a:?} vs {b:?}"),
        }
    }
}

fn pristine_backend() -> Box<dyn ApiBackend> {
    Box::new(scenario().platform)
}

#[test]
fn srw_resumes_bit_identically() {
    let s = scenario();
    assert_resume_bit_identical(
        &pristine_backend,
        &RetryPolicy::none(),
        &avg_query(&s),
        Algorithm::MaSrw { interval: None },
        8_000,
        7,
        400,
    );
}

#[test]
fn srw_count_resumes_bit_identically() {
    // COUNT exercises the collision counter through the checkpoint.
    let s = scenario();
    assert_resume_bit_identical(
        &pristine_backend,
        &RetryPolicy::none(),
        &count_query(&s),
        Algorithm::MaSrw { interval: None },
        10_000,
        11,
        500,
    );
}

#[test]
fn mhrw_resumes_bit_identically() {
    let s = scenario();
    assert_resume_bit_identical(
        &pristine_backend,
        &RetryPolicy::none(),
        &avg_query(&s),
        Algorithm::Mhrw {
            view: ViewKind::level(Duration::DAY),
        },
        8_000,
        13,
        300,
    );
}

#[test]
fn snowball_resumes_bit_identically() {
    let s = scenario();
    assert_resume_bit_identical(
        &pristine_backend,
        &RetryPolicy::none(),
        &count_query(&s),
        Algorithm::Snowball {
            view: ViewKind::TermInduced,
            order: CrawlOrder::Bfs,
        },
        20_000,
        17,
        25,
    );
}

#[test]
fn tarw_resumes_bit_identically() {
    let s = scenario();
    assert_resume_bit_identical(
        &pristine_backend,
        &RetryPolicy::none(),
        &avg_query(&s),
        Algorithm::MaTarw {
            interval: Some(Duration::DAY),
        },
        20_000,
        19,
        5,
    );
}

#[test]
fn tarw_pilot_resumes_bit_identically() {
    // interval: None exercises the interval-selection pilot: cadence 1
    // checkpoints after every candidate, so the spread includes resuming
    // from mid-pilot states.
    let s = scenario();
    assert_resume_bit_identical(
        &pristine_backend,
        &RetryPolicy::none(),
        &avg_query(&s),
        Algorithm::MaTarw { interval: None },
        20_000,
        23,
        1,
    );
}

#[test]
fn mark_recapture_resumes_bit_identically() {
    let s = scenario();
    assert_resume_bit_identical(
        &pristine_backend,
        &RetryPolicy::none(),
        &count_query(&s),
        Algorithm::MarkRecapture {
            view: ViewKind::level(Duration::DAY),
        },
        12_000,
        29,
        400,
    );
}

fn faulty_backend() -> Box<dyn ApiBackend> {
    // Retryable faults at a rate the retry policy fully absorbs
    // (max_consecutive caps hostile runs below max_attempts).
    let plan = FaultPlan::mixed(99, 0.10).with_max_consecutive(2);
    Box::new(FaultyPlatform::new(Arc::new(scenario().platform), plan))
}

#[test]
fn srw_resumes_bit_identically_under_faults() {
    let s = scenario();
    assert_resume_bit_identical(
        &faulty_backend,
        &RetryPolicy::resilient().without_breaker(),
        &avg_query(&s),
        Algorithm::MaSrw { interval: None },
        8_000,
        31,
        400,
    );
}

#[test]
fn tarw_resumes_bit_identically_under_faults() {
    let s = scenario();
    assert_resume_bit_identical(
        &faulty_backend,
        &RetryPolicy::resilient().without_breaker(),
        &avg_query(&s),
        Algorithm::MaTarw {
            interval: Some(Duration::DAY),
        },
        15_000,
        37,
        5,
    );
}
