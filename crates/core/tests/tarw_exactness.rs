//! Analytic validation of MA-TARW on a hand-built *path world*, where the
//! level-by-level subgraph is a single chain and every quantity is exactly
//! computable.
//!
//! World: users `0..N` in a follower chain (`i` follows `i+1`); user `i`
//! posts the keyword exactly once on day `i`, and user `N−1` posts it once
//! more just before "now" (20 days later), making it the **single seed**
//! the search API can return. With `T` = 1 day the level-by-level graph is
//! the path `0 — 1 — … — N−1` with user `i` on level `i`. Consequences:
//!
//! * the up phase always starts at the unique seed `N−1` and visits the
//!   whole chain, so the true visit probability is `p̄(u) = 1` for every
//!   node — and `ESTIMATE-p`'s recursion is *deterministic* here (every
//!   `|∇| = |∆| = 1`), returning exactly 1;
//! * the down phase from root 0 likewise covers the chain with `p̂(u) = 1`.
//!
//! Both Hansen–Hurwitz phase sums therefore equal the exact population
//! total in every instance: MA-TARW must recover COUNT, SUM and AVG
//! *exactly*, which pins down the estimator arithmetic (any normalization
//! slip — e.g. implementing Algorithm 3's garbled `1/|R_i|` factor
//! literally — fails these tests immediately).

use microblog_analyzer::prelude::*;
use microblog_analyzer::walker::tarw::{estimate as tarw_estimate, TarwConfig};
use microblog_api::{CachingClient, MicroblogClient, QueryBudget};
use microblog_graph::DirectedGraph;
use microblog_platform::user::generate_profile;
use microblog_platform::{Duration, Platform, PlatformBuilder, UserId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const N: usize = 40;

fn now() -> Timestamp {
    Timestamp::at_day(N as i64 + 20)
}

fn query_window() -> TimeWindow {
    TimeWindow::new(Timestamp::EPOCH, now())
}

fn path_world() -> Platform {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let graph = DirectedGraph::from_arcs(N, (0..N as u32 - 1).map(|i| (i, i + 1)));
    let users = (0..N)
        .map(|_| generate_profile(&mut rng, 0.5, Timestamp::EPOCH))
        .collect();
    let mut b = PlatformBuilder::new(graph, users, now());
    let kw = b.intern_keyword("ladder");
    for i in 0..N as u32 {
        // Noon of day i: user i's only in-chain keyword post; likes = i.
        b.add_post_at(
            UserId(i),
            Some(kw),
            Timestamp::at_day(i as i64) + Duration::hours(12),
            i,
        );
    }
    // The lone recent post that seeds the walk (0 likes: keeps sums clean).
    b.add_post_at(
        UserId(N as u32 - 1),
        Some(kw),
        now() - Duration::hours(1),
        0,
    );
    b.build()
}

fn run(query: &AggregateQuery, seed: u64) -> Estimate {
    let platform = path_world();
    let mut client = CachingClient::new(MicroblogClient::with_budget(
        &platform,
        ApiProfile::twitter(),
        QueryBudget::limited(1_000_000),
    ));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let cfg = TarwConfig {
        interval: Some(Duration::DAY),
        max_instances: 10,
        ..Default::default()
    };
    tarw_estimate(&mut client, query, &cfg, &mut rng).expect("estimation succeeds")
}

#[test]
fn world_is_the_expected_chain() {
    let p = path_world();
    let kw = p.keywords().get("ladder").unwrap();
    assert_eq!(p.user_count(), N);
    assert_eq!(p.post_count(), N + 1);
    // Levels: first mention of user i is day i.
    for i in 0..N as u32 {
        let first = p.first_mention(UserId(i), kw, query_window()).unwrap();
        assert_eq!(first.0.div_euclid(Duration::DAY.0), i as i64);
    }
    // Search (trailing week) returns exactly the one seed user.
    let hits = p.search_posts(kw, TimeWindow::trailing(p.now(), Duration::WEEK));
    let authors: Vec<u32> = hits.iter().map(|&pid| p.post(pid).author.0).collect();
    assert_eq!(authors, vec![N as u32 - 1]);
}

#[test]
fn count_is_exact_on_the_path_world() {
    let p = path_world();
    let kw = p.keywords().get("ladder").unwrap();
    let q = AggregateQuery::count(kw).in_window(query_window());
    let est = run(&q, 7);
    assert!(
        (est.value - N as f64).abs() < 1e-6,
        "COUNT should be exact on the path world, got {}",
        est.value
    );
    // Deterministic world: the per-instance spread is zero.
    assert!(est.std_err.unwrap_or(0.0) < 1e-9);
}

#[test]
fn sum_of_likes_is_exact_on_the_path_world() {
    let p = path_world();
    let kw = p.keywords().get("ladder").unwrap();
    // Likes: user i's chain post has i, the seed's extra post 0.
    let q = AggregateQuery::sum(UserMetric::KeywordPostLikes, kw).in_window(query_window());
    let expected = (N * (N - 1) / 2) as f64;
    assert_eq!(q.ground_truth(&p), Some(expected));
    let est = run(&q, 8);
    assert!(
        (est.value - expected).abs() < 1e-6,
        "SUM should be exact, got {} vs {expected}",
        est.value
    );
}

#[test]
fn avg_follower_count_is_exact() {
    let p = path_world();
    let kw = p.keywords().get("ladder").unwrap();
    // Chain: user 0 has 0 followers, users 1..N have exactly 1.
    let q = AggregateQuery::avg(UserMetric::FollowerCount, kw).in_window(query_window());
    let truth = q.ground_truth(&p).unwrap();
    assert!((truth - (N as f64 - 1.0) / N as f64).abs() < 1e-12);
    let est = run(&q, 9);
    assert!(
        (est.value - truth).abs() < 1e-6,
        "AVG should be exact on the path world, got {} vs {truth}",
        est.value
    );
}

#[test]
fn instance_count_cost_and_samples_are_sane() {
    let p = path_world();
    let kw = p.keywords().get("ladder").unwrap();
    let q = AggregateQuery::count(kw).in_window(query_window());
    let est = run(&q, 10);
    assert_eq!(est.instances, 10, "all capped instances should complete");
    // Each instance visits the whole chain in both phases (2N nodes).
    assert_eq!(est.samples, 10 * 2 * N, "samples {}", est.samples);
    // Everything is cached after the first instance: cost stays modest.
    assert!(est.cost < 1_000, "cost {}", est.cost);
}
